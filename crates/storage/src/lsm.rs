//! The LSM tree: a mutable in-memory component (memtable) over a stack of
//! immutable sorted components.
//!
//! Inserts and deletes go to the memtable; when it exceeds its budget it is
//! *sealed* (flushed) into an immutable component. Components are
//! `Arc`-shared, so a compactor can take a snapshot under a short lock,
//! merge the snapshot entirely outside the lock ([`merge_components`] works
//! by reference and clones only the surviving entries, once), and swap the
//! result back in with [`LsmTree::install_merged`] — this is how
//! [`crate::partition::DatasetPartition`] keeps merges off the insert path,
//! mirroring AsterixDB's asynchronous LSM flush/merge. When
//! [`LsmConfig::defer_merge`] is unset the tree instead merges inline once
//! the component count exceeds the threshold (the simplest of AsterixDB's
//! merge policies, the "constant" policy), which keeps a standalone tree
//! self-contained.
//!
//! Reads consult the memtable first, then components newest-to-oldest;
//! deletes are tombstones that shadow older versions until a merge discards
//! them. Values are `Arc`-shared with the caller: an insert through
//! [`LsmTree::put_shared`] stores the caller's `Arc` directly — no deep
//! clone of the record on the hot path.
//!
//! # Compacted component storage
//!
//! Sealing (and merging) additionally builds a **storage image** for the
//! component — the disk-equivalent byte layout. A single-pass schema
//! inferencer ([`asterix_adm::schema`]) runs over the sealed records; if the
//! component's schema churn stays under [`LayoutConfig::churn_threshold`]
//! the image is a schema-headed columnar
//! [`CompactedBlock`](asterix_adm::compact::CompactedBlock) (field names and
//! types written once per component, values in per-field column strides),
//! otherwise the component falls back to the uncompacted
//! [`OpenBlock`](asterix_adm::compact::OpenBlock) layout. The vectorized
//! read path ([`LsmTree::for_each_live_ref`], [`LsmTree::get_field`])
//! serves single-field scans and point lookups from the column strides
//! without materializing whole records; full-record reads keep using the
//! `Arc`-shared entries. Merging re-infers the merged schema but never
//! drops a slot that every input component already agreed on.

use crate::KeyOrd;
use asterix_adm::compact::{CompactedBlock, OpenBlock};
use asterix_adm::schema::SchemaBuilder;
use asterix_adm::AdmValue;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// One version of a key.
#[derive(Debug, Clone, PartialEq)]
pub enum Entry {
    /// A live record, shared with whoever inserted/read it.
    Put(Arc<AdmValue>),
    /// A deletion marker.
    Tombstone,
}

/// A borrowed view of one live record during a vectorized scan.
///
/// Field access on a sealed record decodes one cell of the component's
/// storage image (a column-stride read for compacted components) instead of
/// walking the whole record; [`LiveRef::shared`] is the full-record escape
/// hatch, costing only an `Arc` bump.
#[derive(Debug)]
pub enum LiveRef<'a> {
    /// The record lives in the memtable.
    Mem(&'a Arc<AdmValue>),
    /// The record is sealed: component, storage-image row, shared value.
    Sealed(&'a Component, usize, &'a Arc<AdmValue>),
}

impl LiveRef<'_> {
    /// Lazily materialize one field (`None` = absent).
    pub fn field(&self, name: &str) -> Option<AdmValue> {
        match self {
            LiveRef::Mem(v) => v.field(name).cloned(),
            LiveRef::Sealed(c, row, _) => c.field_at(*row, name),
        }
    }

    /// The whole record, `Arc`-shared.
    pub fn shared(&self) -> &Arc<AdmValue> {
        match self {
            LiveRef::Mem(v) => v,
            LiveRef::Sealed(_, _, v) => v,
        }
    }
}

/// The disk-equivalent byte image of a sealed component.
#[derive(Debug, Clone)]
pub enum ComponentStorage {
    /// Schema-inferred columnar layout (schema header + column strides +
    /// sparse residual).
    Compacted(CompactedBlock),
    /// Uncompacted fallback: self-describing binary records behind an
    /// offset table — used when schema churn defeats inference.
    Open(OpenBlock),
}

impl ComponentStorage {
    /// Byte size of the image.
    pub fn size_bytes(&self) -> usize {
        match self {
            ComponentStorage::Compacted(b) => b.size_bytes(),
            ComponentStorage::Open(b) => b.size_bytes(),
        }
    }

    /// Is this the schema-inferred compacted layout?
    pub fn is_compacted(&self) -> bool {
        matches!(self, ComponentStorage::Compacted(_))
    }

    fn field_at(&self, row: usize, name: &str) -> Option<AdmValue> {
        match self {
            ComponentStorage::Compacted(b) => b.field_value(row, name),
            ComponentStorage::Open(b) => b.field_value(row, name),
        }
    }
}

/// An immutable sorted run.
#[derive(Debug, Default)]
pub struct Component {
    entries: BTreeMap<KeyOrd, Entry>,
    /// Disk-equivalent image; row `i` holds the `i`-th live entry in key
    /// order. `None` only for hand-built components (tests).
    storage: Option<ComponentStorage>,
    /// Keys of live entries in key order — the row index of the image.
    put_keys: Vec<KeyOrd>,
}

impl Component {
    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No entries at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate the component's entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&KeyOrd, &Entry)> {
        self.entries.iter()
    }

    /// The component's storage image, if one was built.
    pub fn storage(&self) -> Option<&ComponentStorage> {
        self.storage.as_ref()
    }

    /// Byte size of the storage image (0 when none was built).
    pub fn storage_size_bytes(&self) -> usize {
        self.storage.as_ref().map_or(0, |s| s.size_bytes())
    }

    /// Number of live (non-tombstone) entries.
    pub fn live_records(&self) -> usize {
        if self.storage.is_some() {
            self.put_keys.len()
        } else {
            self.entries
                .values()
                .filter(|e| matches!(e, Entry::Put(_)))
                .count()
        }
    }

    /// Storage row of `key`, if it holds a live entry.
    fn row_of(&self, key: &KeyOrd) -> Option<usize> {
        self.put_keys.binary_search(key).ok()
    }

    /// Lazily decode one field of the `row`-th live entry from the storage
    /// image (one column stride for compacted components); falls back to
    /// the in-memory entry when no image exists.
    pub fn field_at(&self, row: usize, name: &str) -> Option<AdmValue> {
        match &self.storage {
            Some(s) => s.field_at(row, name),
            None => match self
                .entries
                .values()
                .filter_map(|e| match e {
                    Entry::Put(v) => Some(v),
                    Entry::Tombstone => None,
                })
                .nth(row)
            {
                Some(v) => v.field(name).cloned(),
                None => None,
            },
        }
    }

    /// Lazily decode one field of the live entry under `key`.
    pub fn field_at_key(&self, key: &KeyOrd, name: &str) -> Option<AdmValue> {
        if self.storage.is_some() {
            let row = self.row_of(key)?;
            return self.field_at(row, name);
        }
        match self.entries.get(key) {
            Some(Entry::Put(v)) => v.field(name).cloned(),
            _ => None,
        }
    }
}

/// Build a component from sealed entries: choose and encode the storage
/// image per `layout`. `stable_slots` (from a merge's input components)
/// are slotted even when the re-inferred stats alone would not qualify
/// them — merged components never drop a slot their inputs agreed on.
fn build_component(
    entries: BTreeMap<KeyOrd, Entry>,
    layout: &LayoutConfig,
    stable_slots: Option<&[String]>,
) -> Component {
    let puts: Vec<Arc<AdmValue>> = entries
        .values()
        .filter_map(|e| match e {
            Entry::Put(v) => Some(Arc::clone(v)),
            Entry::Tombstone => None,
        })
        .collect();
    let put_keys: Vec<KeyOrd> = entries
        .iter()
        .filter(|(_, e)| matches!(e, Entry::Put(_)))
        .map(|(k, _)| k.clone())
        .collect();
    let rows: Vec<&AdmValue> = puts.iter().map(|a| a.as_ref()).collect();
    let storage = if layout.compact {
        let mut builder = SchemaBuilder::new();
        for r in &rows {
            builder.observe(r);
        }
        let schema = builder.finish();
        let mut slots = schema.slot_fields(layout.min_slot_presence);
        if let Some(stable) = stable_slots {
            for s in stable {
                if !slots.contains(s) && schema.fields.iter().any(|f| &f.name == s) {
                    slots.push(s.clone());
                }
            }
        }
        if schema.churn(&slots) > layout.churn_threshold {
            ComponentStorage::Open(OpenBlock::encode(&rows))
        } else {
            ComponentStorage::Compacted(CompactedBlock::encode(&rows, &schema, &slots))
        }
    } else {
        ComponentStorage::Open(OpenBlock::encode(&rows))
    };
    Component {
        entries,
        storage: Some(storage),
        put_keys,
    }
}

/// Merge `inputs` (newest first, as [`LsmTree::components_snapshot`] returns
/// them) into a single component, discarding shadowed versions and dropping
/// tombstones. Works entirely by reference over the shared components: the
/// only clones are one key clone and one `Arc` bump per *surviving* entry.
///
/// Dropping tombstones is sound only when `inputs` end at the oldest
/// component of the tree — which a snapshot always does, and which
/// [`LsmTree::install_merged`] re-verifies before swapping the result in.
///
/// `spin_per_entry` busy-spins per surviving entry, modelling merge I/O cost
/// in capacity experiments (0 = free).
pub fn merge_components(inputs: &[Arc<Component>], spin_per_entry: u64) -> Component {
    merge_components_with(inputs, spin_per_entry, &LayoutConfig::default())
}

/// [`merge_components`] with an explicit storage-layout policy: the merged
/// component's schema is *re-inferred* over the surviving entries, but any
/// slot that every compacted input agreed on stays a slot (conforming
/// slots are never rewritten into the residual by a merge).
pub fn merge_components_with(
    inputs: &[Arc<Component>],
    spin_per_entry: u64,
    layout: &LayoutConfig,
) -> Component {
    // newest version of each key wins: walk oldest → newest, later inserts
    // overwrite. Everything here is a borrow; nothing is cloned yet.
    let mut newest: BTreeMap<&KeyOrd, &Entry> = BTreeMap::new();
    for c in inputs.iter().rev() {
        for (k, e) in c.iter() {
            newest.insert(k, e);
        }
    }
    let mut entries = BTreeMap::new();
    for (k, e) in newest {
        if let Entry::Put(v) = e {
            if spin_per_entry > 0 {
                let mut acc = 0u64;
                for i in 0..spin_per_entry {
                    acc = acc.wrapping_add(i).rotate_left(1);
                }
                std::hint::black_box(acc);
            }
            entries.insert(k.clone(), Entry::Put(Arc::clone(v)));
        }
    }
    // Slot stability across the merge: the intersection of the inputs'
    // slot sets (only meaningful when every input carried a compacted
    // image — a fallback input has no slots to preserve).
    let stable: Option<Vec<String>> = inputs
        .iter()
        .map(|c| match c.storage() {
            Some(ComponentStorage::Compacted(b)) => Some(b.slot_names()),
            _ => None,
        })
        .try_fold(None::<Vec<String>>, |acc, names| {
            let names = names?;
            Some(Some(match acc {
                None => names,
                Some(acc) => acc.into_iter().filter(|n| names.contains(n)).collect(),
            }))
        })
        .flatten();
    build_component(entries, layout, stable.as_deref())
}

/// Storage-layout policy for sealed components.
#[derive(Debug, Clone)]
pub struct LayoutConfig {
    /// Attempt the schema-inferred compacted layout at all. When unset,
    /// every component uses the uncompacted open layout.
    pub compact: bool,
    /// Fall back to the open layout when the fraction of field occurrences
    /// landing in the residual section would exceed this.
    pub churn_threshold: f64,
    /// A field earns a column slot only when present in at least this
    /// fraction of the component's records (sparser fields cost more in
    /// offsets than they save, and belong in the residual).
    pub min_slot_presence: f64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            compact: true,
            churn_threshold: 0.35,
            min_slot_presence: 0.5,
        }
    }
}

impl LayoutConfig {
    /// An always-open (uncompacted) layout — the pre-compaction behaviour,
    /// kept for comparisons and as the forced-fallback escape hatch.
    pub fn open() -> Self {
        LayoutConfig {
            compact: false,
            ..LayoutConfig::default()
        }
    }
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable after this many entries.
    pub memtable_budget: usize,
    /// Merge once more than this many components exist.
    pub max_components: usize,
    /// When set, a flush only *seals* the memtable into a component and
    /// never merges inline — an external compactor (the partition's
    /// background worker) is responsible for merging. When unset, exceeding
    /// `max_components` merges inline as part of the flush.
    pub defer_merge: bool,
    /// Storage layout for sealed/merged components.
    pub layout: LayoutConfig,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_budget: 4096,
            max_components: 4,
            defer_merge: false,
            layout: LayoutConfig::default(),
        }
    }
}

/// The LSM tree.
#[derive(Debug)]
pub struct LsmTree {
    config: LsmConfig,
    memtable: BTreeMap<KeyOrd, Entry>,
    /// newest first
    components: Vec<Arc<Component>>,
    flushes: u64,
    merges: u64,
    schema_inferred: u64,
    fallbacks: u64,
}

impl LsmTree {
    /// Empty tree.
    pub fn new(config: LsmConfig) -> Self {
        LsmTree {
            config,
            memtable: BTreeMap::new(),
            components: Vec::new(),
            flushes: 0,
            merges: 0,
            schema_inferred: 0,
            fallbacks: 0,
        }
    }

    /// Insert or replace a record under `key`.
    pub fn put(&mut self, key: AdmValue, value: AdmValue) {
        self.put_shared(key, Arc::new(value));
    }

    /// Insert or replace a record under `key`, sharing the caller's `Arc` —
    /// the hot-path insert: no deep clone of the record.
    pub fn put_shared(&mut self, key: AdmValue, value: Arc<AdmValue>) {
        self.memtable.insert(KeyOrd(key), Entry::Put(value));
        self.maybe_flush();
    }

    /// Delete `key` (tombstone).
    pub fn delete(&mut self, key: AdmValue) {
        self.memtable.insert(KeyOrd(key), Entry::Tombstone);
        self.maybe_flush();
    }

    fn lookup(&self, k: &KeyOrd) -> Option<&Entry> {
        if let Some(e) = self.memtable.get(k) {
            return Some(e);
        }
        for c in &self.components {
            if let Some(e) = c.entries.get(k) {
                return Some(e);
            }
        }
        None
    }

    /// Point lookup, sharing the stored value.
    pub fn get_shared(&self, key: &AdmValue) -> Option<Arc<AdmValue>> {
        match self.lookup(&KeyOrd(key.clone())) {
            Some(Entry::Put(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Point lookup (cloning the value out).
    pub fn get(&self, key: &AdmValue) -> Option<AdmValue> {
        self.get_shared(key).map(|v| (*v).clone())
    }

    /// Does `key` currently have a live record?
    pub fn contains(&self, key: &AdmValue) -> bool {
        matches!(self.lookup(&KeyOrd(key.clone())), Some(Entry::Put(_)))
    }

    /// Visit the newest version of every key in `[lo, hi]` (both optional),
    /// in key order, tombstones excluded — by reference, no cloning.
    pub fn for_each_live_in(
        &self,
        lo: Option<&AdmValue>,
        hi: Option<&AdmValue>,
        mut f: impl FnMut(&AdmValue, &AdmValue),
    ) {
        let lo_b = lo
            .map(|v| Bound::Included(KeyOrd(v.clone())))
            .unwrap_or(Bound::Unbounded);
        let hi_b = hi
            .map(|v| Bound::Included(KeyOrd(v.clone())))
            .unwrap_or(Bound::Unbounded);
        // newest version of each key wins; borrows only
        let mut newest: BTreeMap<&KeyOrd, &Entry> = BTreeMap::new();
        for c in self.components.iter().rev() {
            for (k, e) in c.entries.range((lo_b.clone(), hi_b.clone())) {
                newest.insert(k, e);
            }
        }
        for (k, e) in self.memtable.range((lo_b, hi_b)) {
            newest.insert(k, e);
        }
        for (k, e) in newest {
            if let Entry::Put(v) = e {
                f(&k.0, v);
            }
        }
    }

    /// Visit every live record in key order — by reference, no cloning.
    pub fn for_each_live(&self, f: impl FnMut(&AdmValue, &AdmValue)) {
        self.for_each_live_in(None, None, f)
    }

    /// Visit the newest version of every live key as a [`LiveRef`] — the
    /// vectorized scan entry point. Sealed entries are addressed by their
    /// storage-image row, so per-field reads decode one column cell instead
    /// of touching the whole record.
    pub fn for_each_live_ref(&self, mut f: impl FnMut(&AdmValue, LiveRef<'_>)) {
        enum Src<'a> {
            Mem(&'a Entry),
            Comp(usize, usize, &'a Entry),
        }
        let mut newest: BTreeMap<&KeyOrd, Src> = BTreeMap::new();
        // oldest → newest so later versions overwrite; row counters track
        // each component's live entries in key order (its image row order)
        for (ci, c) in self.components.iter().enumerate().rev() {
            let mut row = 0usize;
            for (k, e) in c.entries.iter() {
                match e {
                    Entry::Put(_) => {
                        newest.insert(k, Src::Comp(ci, row, e));
                        row += 1;
                    }
                    Entry::Tombstone => {
                        newest.insert(k, Src::Comp(ci, 0, e));
                    }
                }
            }
        }
        for (k, e) in self.memtable.iter() {
            newest.insert(k, Src::Mem(e));
        }
        for (k, src) in newest {
            match src {
                Src::Mem(Entry::Put(v)) => f(&k.0, LiveRef::Mem(v)),
                Src::Comp(ci, row, Entry::Put(v)) => {
                    f(&k.0, LiveRef::Sealed(&self.components[ci], row, v))
                }
                _ => {}
            }
        }
    }

    /// Visit one field of every live record — single-field scans touch one
    /// column stride per compacted component. The value is `None` when the
    /// record lacks the field.
    pub fn for_each_live_field(&self, name: &str, mut f: impl FnMut(&AdmValue, Option<AdmValue>)) {
        self.for_each_live_ref(|k, r| f(k, r.field(name)));
    }

    /// Point lookup of a single field: resolves the key's component, then
    /// decodes only the requested field from its storage image.
    pub fn get_field(&self, key: &AdmValue, name: &str) -> Option<AdmValue> {
        let k = KeyOrd(key.clone());
        if let Some(e) = self.memtable.get(&k) {
            return match e {
                Entry::Put(v) => v.field(name).cloned(),
                Entry::Tombstone => None,
            };
        }
        for c in &self.components {
            if let Some(e) = c.entries.get(&k) {
                return match e {
                    Entry::Put(_) => c.field_at_key(&k, name),
                    Entry::Tombstone => None,
                };
            }
        }
        None
    }

    /// Total bytes of the components' storage images — the tree's
    /// disk-equivalent footprint (the memtable is not counted).
    pub fn storage_bytes(&self) -> usize {
        self.components.iter().map(|c| c.storage_size_bytes()).sum()
    }

    /// Live records across sealed components (memtable excluded) — the
    /// denominator for bytes-per-record accounting.
    pub fn component_live_records(&self) -> usize {
        self.components.iter().map(|c| c.live_records()).sum()
    }

    /// Lifetime count of components sealed/merged into the compacted layout.
    pub fn schema_inferred_components(&self) -> u64 {
        self.schema_inferred
    }

    /// Lifetime count of components that fell back to the open layout.
    pub fn fallback_components(&self) -> u64 {
        self.fallbacks
    }

    /// Range scan over live records, `lo..=hi` inclusive on both ends (pass
    /// `None` for open ends). Results are key-ordered; surviving entries are
    /// cloned exactly once.
    pub fn scan_range(
        &self,
        lo: Option<&AdmValue>,
        hi: Option<&AdmValue>,
    ) -> Vec<(AdmValue, AdmValue)> {
        let mut out = Vec::new();
        self.for_each_live_in(lo, hi, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// All live records in key order.
    pub fn scan_all(&self) -> Vec<(AdmValue, AdmValue)> {
        self.scan_range(None, None)
    }

    /// Count of live records (full walk, but nothing is cloned).
    pub fn live_count(&self) -> usize {
        let mut n = 0;
        self.for_each_live(|_, _| n += 1);
        n
    }

    /// Seal the memtable into an immutable component (no merge, ever) —
    /// the only mutation a hot-path insert can trigger in deferred mode.
    /// Sealing runs the single-pass schema inferencer and encodes the
    /// component's storage image (compacted, or open on churn fallback).
    pub fn seal(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.memtable);
        let component = build_component(entries, &self.config.layout, None);
        self.note_component(&component);
        self.components.insert(0, Arc::new(component));
        self.flushes += 1;
    }

    fn note_component(&mut self, c: &Component) {
        match c.storage() {
            Some(ComponentStorage::Compacted(_)) => self.schema_inferred += 1,
            Some(ComponentStorage::Open(_)) => self.fallbacks += 1,
            None => {}
        }
    }

    /// Force a memtable flush. In deferred-merge mode this only seals; in
    /// inline mode it also merges once the component count exceeds the
    /// threshold.
    pub fn flush(&mut self) {
        self.seal();
        if !self.config.defer_merge && self.needs_merge() {
            self.merge_all();
        }
    }

    /// Whether enough components accumulated that a merge is due.
    pub fn needs_merge(&self) -> bool {
        self.components.len() > self.config.max_components
    }

    /// The current component stack (newest first), `Arc`-shared: the input
    /// to an off-lock [`merge_components`] run.
    pub fn components_snapshot(&self) -> Vec<Arc<Component>> {
        self.components.clone()
    }

    /// Swap `merged` in for the `inputs` it was built from. The inputs must
    /// still be the *oldest* suffix of the component stack (pointer
    /// equality); components sealed while the merge ran stay in front.
    /// Returns `false` — leaving the tree untouched — if the stack changed
    /// incompatibly (e.g. another merge won, or recovery rebuilt the tree).
    pub fn install_merged(&mut self, inputs: &[Arc<Component>], merged: Arc<Component>) -> bool {
        if inputs.is_empty() || self.components.len() < inputs.len() {
            return false;
        }
        let tail_start = self.components.len() - inputs.len();
        let tail_matches = self.components[tail_start..]
            .iter()
            .zip(inputs)
            .all(|(a, b)| Arc::ptr_eq(a, b));
        if !tail_matches {
            return false;
        }
        self.note_component(merged.as_ref());
        self.components.truncate(tail_start);
        self.components.push(merged);
        self.merges += 1;
        true
    }

    /// Merge every component into one inline, discarding shadowed versions
    /// and dropping tombstones (all older versions are in the merge input).
    pub fn merge_all(&mut self) {
        let snapshot = self.components_snapshot();
        let merged = merge_components_with(&snapshot, 0, &self.config.layout);
        self.note_component(&merged);
        self.components = vec![Arc::new(merged)];
        self.merges += 1;
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.config.memtable_budget {
            self.flush();
        }
    }

    /// Number of immutable components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of entries currently in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Lifetime flush count.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Lifetime merge count.
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

impl Default for LsmTree {
    fn default() -> Self {
        LsmTree::new(LsmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> LsmTree {
        LsmTree::new(LsmConfig {
            memtable_budget: 4,
            max_components: 2,
            defer_merge: false,
            layout: LayoutConfig::default(),
        })
    }

    fn k(i: i64) -> AdmValue {
        AdmValue::Int(i)
    }

    fn v(s: &str) -> AdmValue {
        AdmValue::string(s)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut t = LsmTree::default();
        t.put(k(1), v("a"));
        t.put(k(2), v("b"));
        assert_eq!(t.get(&k(1)), Some(v("a")));
        assert_eq!(t.get(&k(2)), Some(v("b")));
        assert_eq!(t.get(&k(3)), None);
        assert!(t.contains(&k(1)));
    }

    #[test]
    fn put_shared_stores_the_callers_arc() {
        let mut t = LsmTree::default();
        let value = Arc::new(v("shared"));
        t.put_shared(k(1), Arc::clone(&value));
        let got = t.get_shared(&k(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &value), "no deep clone on the hot path");
    }

    #[test]
    fn replace_takes_latest() {
        let mut t = small_tree();
        t.put(k(1), v("old"));
        // force old version into a component
        t.flush();
        t.put(k(1), v("new"));
        assert_eq!(t.get(&k(1)), Some(v("new")));
    }

    #[test]
    fn delete_shadows_older_components() {
        let mut t = small_tree();
        t.put(k(1), v("a"));
        t.flush();
        t.delete(k(1));
        assert_eq!(t.get(&k(1)), None);
        assert!(!t.contains(&k(1)));
        // even after the tombstone itself is flushed
        t.flush();
        assert_eq!(t.get(&k(1)), None);
    }

    #[test]
    fn automatic_flush_at_budget() {
        let mut t = small_tree();
        for i in 0..4 {
            t.put(k(i), v("x"));
        }
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.flushes(), 1);
        assert_eq!(t.memtable_len(), 0);
    }

    #[test]
    fn merge_reclaims_tombstones() {
        let mut t = small_tree();
        for i in 0..4 {
            t.put(k(i), v("x"));
        }
        t.delete(k(0));
        t.delete(k(1));
        t.flush();
        t.put(k(9), v("y"));
        t.flush(); // exceeds max_components=2 → merge
        assert_eq!(t.component_count(), 1);
        assert!(t.merges() >= 1);
        let live = t.scan_all();
        let keys: Vec<i64> = live.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![2, 3, 9]);
    }

    #[test]
    fn deferred_mode_seals_without_merging() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 2,
            max_components: 1,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        for i in 0..8 {
            t.put(k(i), v("x"));
        }
        // four seals, zero merges: the insert path never compacted
        assert_eq!(t.component_count(), 4);
        assert_eq!(t.merges(), 0);
        assert!(t.needs_merge());
        // an external compactor merges from a snapshot and installs
        let snap = t.components_snapshot();
        let merged = Arc::new(merge_components(&snap, 0));
        assert!(t.install_merged(&snap, merged));
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.live_count(), 8);
    }

    #[test]
    fn install_merged_keeps_components_sealed_during_the_merge() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 2,
            max_components: 1,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        for i in 0..4 {
            t.put(k(i), v("old"));
        }
        let snap = t.components_snapshot();
        assert_eq!(snap.len(), 2);
        let merged = Arc::new(merge_components(&snap, 0));
        // a concurrent seal lands while the merge "runs"
        t.put(k(100), v("new"));
        t.put(k(101), v("new"));
        assert_eq!(t.component_count(), 3);
        assert!(t.install_merged(&snap, merged));
        // the newer component survived in front of the merged result
        assert_eq!(t.component_count(), 2);
        assert_eq!(t.live_count(), 6);
        assert_eq!(t.get(&k(100)), Some(v("new")));
        assert_eq!(t.get(&k(0)), Some(v("old")));
    }

    #[test]
    fn install_merged_refuses_a_stale_snapshot() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 2,
            max_components: 1,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        for i in 0..4 {
            t.put(k(i), v("x"));
        }
        let snap = t.components_snapshot();
        let merged = Arc::new(merge_components(&snap, 0));
        // another merge won the race and replaced the tail
        t.merge_all();
        assert!(!t.install_merged(&snap, merged));
        assert_eq!(t.live_count(), 4);
        // empty input never installs
        assert!(!t.install_merged(&[], Arc::new(Component::default())));
    }

    #[test]
    fn merge_components_drops_shadowed_versions_and_tombstones() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 2,
            max_components: 10,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        t.put(k(1), v("v1"));
        t.put(k(2), v("x"));
        t.delete(k(2));
        t.put(k(1), v("v2"));
        t.seal();
        let snap = t.components_snapshot();
        let merged = merge_components(&snap, 0);
        assert_eq!(merged.len(), 1, "tombstone dropped, one survivor");
        let survivors: Vec<_> = merged.iter().collect();
        assert_eq!(survivors[0].1, &Entry::Put(Arc::new(v("v2"))));
    }

    #[test]
    fn scan_range_is_inclusive_and_ordered() {
        let mut t = small_tree();
        for i in (0..10).rev() {
            t.put(k(i), v("x"));
        }
        let r = t.scan_range(Some(&k(3)), Some(&k(6)));
        let keys: Vec<i64> = r.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
        // open ends
        assert_eq!(t.scan_range(None, Some(&k(1))).len(), 2);
        assert_eq!(t.scan_range(Some(&k(8)), None).len(), 2);
    }

    #[test]
    fn scan_sees_latest_version_across_components() {
        let mut t = small_tree();
        t.put(k(1), v("v1"));
        t.flush();
        t.put(k(1), v("v2"));
        t.flush();
        t.put(k(1), v("v3"));
        let all = t.scan_all();
        assert_eq!(all, vec![(k(1), v("v3"))]);
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn for_each_live_walks_without_cloning() {
        let mut t = small_tree();
        t.put(k(2), v("b"));
        t.flush();
        t.put(k(1), v("a"));
        t.delete(k(2));
        let mut seen = Vec::new();
        t.for_each_live(|key, val| seen.push((key.clone(), val.clone())));
        assert_eq!(seen, vec![(k(1), v("a"))]);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut t = small_tree();
        t.flush();
        assert_eq!(t.component_count(), 0);
        assert_eq!(t.flushes(), 0);
    }

    #[test]
    fn string_keys_work() {
        let mut t = LsmTree::default();
        t.put(v("tweet-1"), v("payload"));
        assert_eq!(t.get(&v("tweet-1")), Some(v("payload")));
    }

    fn rec(i: i64) -> AdmValue {
        AdmValue::record(vec![
            ("id", k(i)),
            ("name", v(&format!("n{i}"))),
            ("score", AdmValue::Double(i as f64)),
        ])
    }

    #[test]
    fn sealing_records_builds_a_compacted_image() {
        let mut t = small_tree();
        for i in 0..4 {
            t.put(k(i), rec(i));
        }
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.schema_inferred_components(), 1);
        assert_eq!(t.fallback_components(), 0);
        assert!(t.storage_bytes() > 0);
        assert_eq!(t.component_live_records(), 4);
        let snap = t.components_snapshot();
        assert!(snap[0].storage().unwrap().is_compacted());
    }

    #[test]
    fn opaque_values_fall_back_to_the_open_layout() {
        let mut t = small_tree();
        for i in 0..4 {
            t.put(k(i), v("just a string"));
        }
        assert_eq!(t.schema_inferred_components(), 0);
        assert_eq!(t.fallback_components(), 1);
        let snap = t.components_snapshot();
        assert!(!snap[0].storage().unwrap().is_compacted());
        // reads still work through the open image
        assert_eq!(t.get(&k(2)), Some(v("just a string")));
    }

    #[test]
    fn compaction_disabled_always_uses_open_layout() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 4,
            max_components: 2,
            defer_merge: false,
            layout: LayoutConfig::open(),
        });
        for i in 0..4 {
            t.put(k(i), rec(i));
        }
        assert_eq!(t.schema_inferred_components(), 0);
        assert_eq!(t.fallback_components(), 1);
    }

    #[test]
    fn get_field_and_live_field_scan_agree_with_full_reads() {
        let mut t = small_tree();
        for i in 0..10 {
            t.put(k(i), rec(i));
        }
        t.delete(k(3));
        t.put(k(4), rec(400)); // newer version shadows sealed one
        for i in 0..10 {
            let want = t.get(&k(i)).and_then(|r| r.field("name").cloned());
            assert_eq!(t.get_field(&k(i), "name"), want, "key {i}");
        }
        assert_eq!(t.get_field(&k(99), "name"), None);
        let mut scanned = Vec::new();
        t.for_each_live_field("name", |key, val| scanned.push((key.clone(), val)));
        let full: Vec<(AdmValue, Option<AdmValue>)> = t
            .scan_all()
            .into_iter()
            .map(|(key, r)| {
                let f = r.field("name").cloned();
                (key, f)
            })
            .collect();
        assert_eq!(scanned, full);
    }

    #[test]
    fn merge_preserves_slots_the_inputs_agreed_on() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 4,
            max_components: 10,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        // two compacted components over the same schema
        for i in 0..8 {
            t.put(k(i), rec(i));
        }
        let snap = t.components_snapshot();
        assert_eq!(snap.len(), 2);
        let input_slots: Vec<Vec<String>> = snap
            .iter()
            .map(|c| match c.storage().unwrap() {
                ComponentStorage::Compacted(b) => b.slot_names(),
                ComponentStorage::Open(_) => panic!("expected compacted inputs"),
            })
            .collect();
        let merged = merge_components_with(&snap, 0, &LayoutConfig::default());
        let merged_slots = match merged.storage().unwrap() {
            ComponentStorage::Compacted(b) => b.slot_names(),
            ComponentStorage::Open(_) => panic!("merge of compacted inputs stayed compacted"),
        };
        for slot in input_slots[0].iter().filter(|s| input_slots[1].contains(s)) {
            assert!(
                merged_slots.contains(slot),
                "slot {slot} dropped by the merge"
            );
        }
        assert_eq!(merged.live_records(), 8);
    }

    #[test]
    fn merged_image_serves_reads_after_install() {
        let mut t = LsmTree::new(LsmConfig {
            memtable_budget: 2,
            max_components: 1,
            defer_merge: true,
            layout: LayoutConfig::default(),
        });
        for i in 0..8 {
            t.put(k(i), rec(i));
        }
        let snap = t.components_snapshot();
        let merged = Arc::new(merge_components_with(&snap, 0, &LayoutConfig::default()));
        assert!(t.install_merged(&snap, merged));
        assert!(t.schema_inferred_components() >= snap.len() as u64);
        for i in 0..8 {
            assert_eq!(
                t.get_field(&k(i), "name"),
                Some(v(&format!("n{i}"))),
                "key {i}"
            );
        }
    }
}
