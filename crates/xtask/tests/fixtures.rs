//! Every lint rule must flag its known-bad fixture and pass the good twin.
//!
//! The fixtures under `crates/xtask/fixtures/` are the rule suite's
//! regression corpus: each `bad.rs` is a distilled version of a bug class
//! the rule exists to stop, each `good.rs` shows the sanctioned pattern
//! (including the escape-hatch annotations). They are plain text to the
//! build — never compiled — so they may freely contain broken code.

use std::path::{Path, PathBuf};
use xtask::{check_crate_root, check_file, parse_source, Violation, RULES};

fn fixture(dir: &str, which: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(dir)
        .join(format!("{which}.rs"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    (path, text)
}

fn run_file_rules(dir: &str, which: &str) -> Vec<Violation> {
    let (path, text) = fixture(dir, which);
    check_file(&parse_source(&path, &text))
}

fn hits(violations: &[Violation], rule: &str) -> usize {
    violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn lock_unwrap_flags_bad_and_passes_good() {
    let bad = run_file_rules("lock_unwrap", "bad");
    // push, len, lookup, reindex, and the split-chain drain: five unwraps.
    assert_eq!(hits(&bad, "lock-unwrap"), 5, "bad: {bad:?}");
    let good = run_file_rules("lock_unwrap", "good");
    assert!(good.is_empty(), "good twin must be clean: {good:?}");
}

#[test]
fn guard_across_blocking_flags_bad_and_passes_good() {
    let bad = run_file_rules("guard_across_blocking", "bad");
    // send, recv, join, sleep: one per function.
    assert_eq!(hits(&bad, "guard-across-blocking"), 4, "bad: {bad:?}");
    let good = run_file_rules("guard_across_blocking", "good");
    assert!(good.is_empty(), "good twin must be clean: {good:?}");
}

#[test]
fn relaxed_ordering_flags_bad_and_passes_good() {
    let bad = run_file_rules("relaxed_ordering", "bad");
    assert_eq!(hits(&bad, "relaxed-ordering"), 3, "bad: {bad:?}");
    let good = run_file_rules("relaxed_ordering", "good");
    assert!(good.is_empty(), "good twin must be clean: {good:?}");
}

#[test]
fn static_atomic_flags_bad_and_passes_good() {
    let bad = run_file_rules("static_atomic", "bad");
    assert_eq!(hits(&bad, "static-atomic"), 2, "bad: {bad:?}");
    let good = run_file_rules("static_atomic", "good");
    assert!(good.is_empty(), "good twin must be clean: {good:?}");
}

#[test]
fn forbid_unsafe_flags_bad_and_passes_good() {
    let (path, text) = fixture("forbid_unsafe", "bad");
    let bad = check_crate_root(&path, &text);
    assert_eq!(hits(&bad, "forbid-unsafe"), 1, "bad: {bad:?}");
    let (path, text) = fixture("forbid_unsafe", "good");
    assert!(check_crate_root(&path, &text).is_empty());
}

#[test]
fn raw_thread_spawn_flags_bad_and_passes_good() {
    let bad = run_file_rules("raw_thread_spawn", "bad");
    // bare spawn, Builder::new, and the split-across-lines spawn: three.
    assert_eq!(hits(&bad, "raw-thread-spawn"), 3, "bad: {bad:?}");
    let good = run_file_rules("raw_thread_spawn", "good");
    assert!(good.is_empty(), "good twin must be clean: {good:?}");
}

#[test]
fn every_rule_has_a_fixture_pair() {
    for rule in RULES {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(rule.name.replace('-', "_"));
        for which in ["bad.rs", "good.rs"] {
            assert!(
                dir.join(which).is_file(),
                "rule `{}` is missing fixtures/{}/{which}",
                rule.name,
                dir.file_name().unwrap().to_string_lossy()
            );
        }
    }
}

/// The real tree must be clean: this is the same check CI's static-analysis
/// job runs via `cargo xtask lint`, wired into `cargo test` so a plain test
/// run catches violations too.
#[test]
fn whole_tree_is_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let report = xtask::lint_tree(repo_root).expect("scan repo tree");
    assert!(
        report.files_scanned > 30,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{} [{}] {}", v.path.display(), v.line, v.rule, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "tree has lint violations:\n{}",
        rendered.join("\n")
    );
}

/// Fixtures live outside `src/` and must never leak into a tree scan.
#[test]
fn tree_scan_skips_fixture_corpus() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let report = xtask::lint_tree(repo_root).expect("scan repo tree");
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.path.components().any(|c| c.as_os_str() == "fixtures")),
        "fixture files must not be linted as part of the tree"
    );
}
