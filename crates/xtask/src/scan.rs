//! Line-oriented source model for the lint rules.
//!
//! The rules in [`crate::rules`] are textual, so before they run we build a
//! per-line view of each file in which
//!
//! * string/char literal *contents* are masked out (a log message that quotes
//!   `".lock().unwrap()"` must not trip a rule),
//! * comments are split away from code but kept, because comments carry the
//!   lint escapes (`// lint-allow: <rule>` and `// relaxed-ok:`),
//! * `#[cfg(test)]` items are tracked by brace depth so in-file test modules
//!   are exempt exactly like `tests/` directories, and
//! * brace depth at the start of every line is recorded for the
//!   guard-lifetime heuristic in the `guard-across-blocking` rule.
//!
//! This is deliberately not a full parser: it only needs to be right about
//! where code stops and comments/strings begin, which a small state machine
//! handles, including nested block comments, raw strings, and the
//! char-literal-vs-lifetime ambiguity of `'`.

use std::path::{Path, PathBuf};

/// One physical source line, split into its analysable parts.
pub struct Line {
    /// The original text, for excerpts in diagnostics.
    pub raw: String,
    /// Code with string/char contents masked and comments removed.
    pub code: String,
    /// Comment text found on this line (line and block comments merged).
    pub comment: String,
    /// True inside a `#[cfg(test)]` item (attribute line through closing brace).
    pub in_test: bool,
    /// Brace depth before any token on this line.
    pub depth_at_start: i32,
    /// Rule names suppressed at this line via annotations.
    suppressed: Vec<String>,
}

impl Line {
    /// Whether `rule` is suppressed here by a `lint-allow`/`relaxed-ok` escape.
    pub fn allows(&self, rule: &str) -> bool {
        self.suppressed.iter().any(|r| r == rule)
    }

    /// The code with all whitespace removed — pattern matching on method
    /// chains is whitespace-insensitive this way.
    pub fn squished(&self) -> String {
        self.code.chars().filter(|c| !c.is_whitespace()).collect()
    }
}

/// A parsed source file ready for rule checks.
pub struct SourceFile {
    pub path: PathBuf,
    pub lines: Vec<Line>,
}

/// Split `text` into per-line `(code, comment)` pairs with literals masked.
fn mask(text: &str) -> Vec<(String, String)> {
    let cs: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut block_depth = 0u32;
    let mut i = 0usize;

    // Consume a quoted string body starting *after* the opening quote,
    // honouring backslash escapes; newlines inside flush lines to `out`.
    fn skip_str(
        cs: &[char],
        mut i: usize,
        out: &mut Vec<(String, String)>,
        code: &mut String,
        comment: &mut String,
    ) -> usize {
        while i < cs.len() {
            match cs[i] {
                '\\' => i += 2,
                '"' => return i + 1,
                '\n' => {
                    out.push((std::mem::take(code), std::mem::take(comment)));
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
            i += 1;
            continue;
        }
        if block_depth > 0 {
            if c == '/' && cs.get(i + 1) == Some(&'*') {
                block_depth += 1;
                comment.push_str("/*");
                i += 2;
            } else if c == '*' && cs.get(i + 1) == Some(&'/') {
                block_depth -= 1;
                comment.push_str("*/");
                i += 2;
            } else {
                comment.push(c);
                i += 1;
            }
            continue;
        }
        match c {
            '/' if cs.get(i + 1) == Some(&'/') => {
                while i < cs.len() && cs[i] != '\n' {
                    comment.push(cs[i]);
                    i += 1;
                }
            }
            '/' if cs.get(i + 1) == Some(&'*') => {
                block_depth = 1;
                comment.push_str("/*");
                i += 2;
            }
            '"' => {
                code.push('"');
                i = skip_str(&cs, i + 1, &mut out, &mut code, &mut comment);
                code.push('"');
            }
            // Raw (and byte/raw-byte) strings: r"..", r#".."#, br".."
            'r' | 'b' if raw_string_hashes(&cs, i).is_some() && !prev_is_ident(&cs, i) => {
                let (hashes, body_start) = raw_string_hashes(&cs, i).unwrap();
                code.push('"');
                i = body_start;
                let closer: Vec<char> = format!("\"{}", "#".repeat(hashes)).chars().collect();
                while i < cs.len() {
                    if cs[i] == '\n' {
                        out.push((std::mem::take(&mut code), std::mem::take(&mut comment)));
                        i += 1;
                    } else if cs[i..].starts_with(&closer[..]) {
                        i += closer.len();
                        break;
                    } else {
                        i += 1;
                    }
                }
                code.push('"');
            }
            // Plain byte string b".."
            'b' if cs.get(i + 1) == Some(&'"') && !prev_is_ident(&cs, i) => {
                code.push('"');
                i = skip_str(&cs, i + 2, &mut out, &mut code, &mut comment);
                code.push('"');
            }
            '\'' => {
                if cs.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: '\n', '\'', '\u{..}'
                    code.push_str("''");
                    i += 2;
                    while i < cs.len() {
                        match cs[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                } else if cs.get(i + 2) == Some(&'\'') && cs.get(i + 1) != Some(&'\'') {
                    // Simple char literal 'x'
                    code.push_str("''");
                    i += 3;
                } else {
                    // Lifetime (or label): leave the tick, take following chars
                    // through the normal path
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    out.push((code, comment));
    out
}

/// If `cs[i]` begins a raw-string opener (`r"`, `r#"`, `br#"`...), return
/// `(hash_count, index_after_opening_quote)`.
fn raw_string_hashes(cs: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if cs.get(j) == Some(&'b') {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while cs.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if cs.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

fn prev_is_ident(cs: &[char], i: usize) -> bool {
    i > 0 && (cs[i - 1].is_alphanumeric() || cs[i - 1] == '_')
}

/// Extract the rule names an annotation comment suppresses.
///
/// `// lint-allow: rule-a, rule-b` suppresses the named rules;
/// `// relaxed-ok: <reason>` is sugar for suppressing `relaxed-ordering`;
/// `// spawn-ok: <reason>` is sugar for suppressing `raw-thread-spawn`.
fn annotation_rules(comment: &str) -> Vec<String> {
    let mut rules = Vec::new();
    if comment.contains("relaxed-ok") {
        rules.push("relaxed-ordering".to_string());
    }
    if comment.contains("spawn-ok") {
        rules.push("raw-thread-spawn".to_string());
    }
    if let Some(pos) = comment.find("lint-allow:") {
        let rest = &comment[pos + "lint-allow:".len()..];
        // Rule names are kebab-case; stop the list at the first token that
        // isn't one (so prose after the list doesn't register).
        for tok in rest.split(',') {
            let name: String = tok
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_lowercase() || *c == '-')
                .collect();
            if name.is_empty() {
                break;
            }
            rules.push(name);
        }
    }
    rules
}

/// Does this attribute line gate an item on `cfg(test)`?
///
/// Matches `#[cfg(test)]` and compound forms like `#[cfg(all(test, ...))]`,
/// but not `#[cfg(not(test))]` (that marks *runtime-only* code).
fn is_cfg_test_attr(code: &str) -> bool {
    code.contains("#[cfg(") && code.contains("test") && !code.contains("not(test")
}

/// Build the full line model for one file.
pub fn parse_source(path: &Path, text: &str) -> SourceFile {
    let masked = mask(text);
    let raw_lines: Vec<&str> = text.split('\n').collect();

    let mut lines = Vec::with_capacity(masked.len());
    let mut depth = 0i32;
    // Depths at which an active `#[cfg(test)]` region ends.
    let mut test_regions: Vec<i32> = Vec::new();
    // A `#[cfg(test)]` attribute has been seen; the next item starts a region.
    let mut pending_cfg_test = false;
    // Suppressions from a comment-only annotation line: apply to the
    // statement that follows (code lines up to the first `;`/`{`/`}`), so a
    // waiver can never silently cover a whole function body.
    let mut pending_suppress: Vec<String> = Vec::new();

    for (idx, (code, comment)) in masked.into_iter().enumerate() {
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        let depth_at_start = depth;
        let code_is_blank = code.trim().is_empty();

        if raw.trim().is_empty() {
            pending_suppress.clear();
        }
        let own = annotation_rules(&comment);
        let mut suppressed = own.clone();
        if code_is_blank {
            pending_suppress.extend(own);
        } else {
            suppressed.extend(pending_suppress.iter().cloned());
            let end = code.trim_end();
            if end.ends_with(';') || end.ends_with('{') || end.ends_with('}') {
                pending_suppress.clear();
            }
        }

        let mut in_test = !test_regions.is_empty();
        let attr_here = is_cfg_test_attr(&code);
        if attr_here {
            pending_cfg_test = true;
            in_test = true;
        }

        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        depth += opens - closes;

        if pending_cfg_test && !code_is_blank && !attr_here {
            in_test = true;
            if code.trim_start().starts_with("#[") {
                // Another attribute stacked on the same item; keep waiting.
            } else if depth > depth_at_start {
                // The gated item opens a block: the region runs until brace
                // depth returns to where the item started.
                test_regions.push(depth_at_start);
                pending_cfg_test = false;
            } else if code.trim_end().ends_with(';') {
                // Braceless gated item (`#[cfg(test)] use ...;`).
                pending_cfg_test = false;
            }
        }

        while test_regions.last().is_some_and(|&d| depth <= d) {
            test_regions.pop();
        }

        lines.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test,
            depth_at_start,
            suppressed,
        });
    }

    SourceFile {
        path: path.to_path_buf(),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(text: &str) -> SourceFile {
        parse_source(Path::new("mem.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_masked_out_of_code() {
        let f = parse("let x = \"Ordering::Relaxed\"; // Ordering::Relaxed\n");
        assert!(!f.lines[0].code.contains("Relaxed"));
        assert!(f.lines[0].comment.contains("Relaxed"));
    }

    #[test]
    fn commented_out_code_is_not_code() {
        let f = parse("// self.m.lock().unwrap();\n/* also .lock().unwrap() */\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = parse("/* outer /* inner */ still comment */ let y = 1;\n");
        assert!(f.lines[0].code.contains("let y = 1;"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let f = parse("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\nlet e = '\\n';\n");
        assert!(f.lines[0].code.contains("fn f<'a>"));
        assert!(
            !f.lines[1].code.contains('x'),
            "char content masked: {}",
            f.lines[1].code
        );
        assert!(f.lines[2].code.contains("let e = ''"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = parse("let p = r#\".lock().unwrap()\"#;\nlet q = 1;\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("let q = 1;"));
    }

    #[test]
    fn cfg_test_mod_is_marked_through_closing_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let f = parse(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags[..6], [false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_all_test_counts_but_cfg_not_test_does_not() {
        let f = parse("#[cfg(all(test, feature = \"x\"))]\nmod m {\n}\n");
        assert!(f.lines[1].in_test);
        let g = parse("#[cfg(not(test))]\nfn runtime_only() {\n}\n");
        assert!(!g.lines[1].in_test);
    }

    #[test]
    fn same_line_annotation_applies_to_that_line() {
        let f = parse("do_it(); // lint-allow: lock-unwrap\nnext();\n");
        assert!(f.lines[0].allows("lock-unwrap"));
        assert!(!f.lines[1].allows("lock-unwrap"));
    }

    #[test]
    fn comment_only_annotation_covers_exactly_the_next_statement() {
        let src =
            "// relaxed-ok: counter published by a later Release write\na.b(\n    c,\n);\nd();\n";
        let f = parse(src);
        assert!(f.lines[1].allows("relaxed-ordering"));
        assert!(f.lines[2].allows("relaxed-ordering"));
        assert!(f.lines[3].allows("relaxed-ordering"));
        assert!(
            !f.lines[4].allows("relaxed-ordering"),
            "waiver must not outlive the statement"
        );
    }

    #[test]
    fn annotation_does_not_leak_past_a_blank_line() {
        let src = "// lint-allow: static-atomic\n\nstatic_item();\n";
        let f = parse(src);
        assert!(!f.lines[2].allows("static-atomic"));
    }

    #[test]
    fn lint_allow_parses_a_rule_list() {
        let f = parse("x(); // lint-allow: static-atomic, relaxed-ordering\n");
        assert!(f.lines[0].allows("static-atomic"));
        assert!(f.lines[0].allows("relaxed-ordering"));
        assert!(!f.lines[0].allows("lock-unwrap"));
    }

    #[test]
    fn depth_tracking_sees_only_code_braces() {
        let f = parse("fn f() {\n    let s = \"}}}\"; // }}\n    g();\n}\n");
        assert_eq!(f.lines[2].depth_at_start, 1);
        assert_eq!(f.lines[3].depth_at_start, 1);
    }
}
