//! Repo-local static analysis for the concurrency invariants.
//!
//! `cargo xtask lint` walks the `src/` tree of every first-party crate (the
//! umbrella crate plus everything under `crates/`; the vendored `shims/` are
//! exempt) and enforces:
//!
//! * `lock-unwrap` — no `.unwrap()`/`.expect()` on lock results in runtime
//!   code; poison must be recovered via `asterix_common::sync`.
//! * `guard-across-blocking` — no lock guard live across a channel
//!   send/recv, thread join, or sleep.
//! * `relaxed-ordering` — `Ordering::Relaxed` only at sites annotated with a
//!   `// relaxed-ok: <reason>` comment recording the ordering argument.
//! * `static-atomic` — no ad-hoc `static` atomics bypassing the typed
//!   `MetricsRegistry`.
//! * `forbid-unsafe` — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Test code is exempt: `tests/`, `benches/`, and `examples/` directories are
//! never scanned, and in-file `#[cfg(test)]` items are skipped by the
//! scanner. Deliberate exceptions are annotated in place with
//! `// lint-allow: <rule>` so the waiver is visible in review next to the
//! code it covers.

#![forbid(unsafe_code)]

pub mod rules;
pub mod scan;

pub use rules::{check_crate_root, check_file, RuleInfo, Violation, RULES};
pub use scan::{parse_source, SourceFile};

use std::io;
use std::path::{Path, PathBuf};

/// Collect `.rs` files under `dir`, recursively, in deterministic order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The `src/` directories of every first-party crate in the repo.
///
/// Returns `(crate_name, src_dir)` pairs: the umbrella crate at the repo
/// root plus each member under `crates/`. Vendored `shims/` are third-party
/// API stand-ins and are deliberately not policed.
pub fn crate_src_dirs(repo_root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut dirs = Vec::new();
    let root_src = repo_root.join("src");
    if root_src.is_dir() {
        dirs.push(("asterixdb-ingestion".to_string(), root_src));
    }
    let crates = repo_root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let src = entry.path().join("src");
        if src.is_dir() {
            dirs.push((entry.file_name().to_string_lossy().into_owned(), src));
        }
    }
    Ok(dirs)
}

/// Outcome of a full-tree lint run.
pub struct LintReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

/// Run every rule over every first-party crate under `repo_root`.
pub fn lint_tree(repo_root: &Path) -> io::Result<LintReport> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    for (_name, src_dir) in crate_src_dirs(repo_root)? {
        // Crate roots: lib.rs, main.rs, and any bin targets.
        let mut roots = vec![src_dir.join("lib.rs"), src_dir.join("main.rs")];
        let bin_dir = src_dir.join("bin");
        if bin_dir.is_dir() {
            rs_files(&bin_dir, &mut roots)?;
        }
        for root in roots {
            if root.is_file() {
                let text = std::fs::read_to_string(&root)?;
                violations.extend(check_crate_root(&root, &text));
            }
        }

        let mut files = Vec::new();
        rs_files(&src_dir, &mut files)?;
        for path in files {
            let text = std::fs::read_to_string(&path)?;
            let parsed = parse_source(&path, &text);
            violations.extend(check_file(&parsed));
            files_scanned += 1;
        }
    }
    Ok(LintReport {
        files_scanned,
        violations,
    })
}

/// Repo root resolution: `$CARGO_MANIFEST_DIR/../..` when run through cargo
/// (the xtask manifest lives at `crates/xtask`), else the current directory.
pub fn repo_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}
