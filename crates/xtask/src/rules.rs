//! The lint rules.
//!
//! Every rule guards a concurrency invariant that the type system cannot
//! express. Rules run on the [`crate::scan::SourceFile`] line model, skip
//! test code (`tests/` directories are never scanned; in-file `#[cfg(test)]`
//! items are marked by the scanner), and honour the escapes
//! `// lint-allow: <rule>` and `// relaxed-ok: <reason>`. An escape on its
//! own line covers the single statement that follows it; an escape at the
//! end of a code line covers that line.

use crate::scan::{Line, SourceFile};
use std::path::{Path, PathBuf};

/// Static description of one rule, for `--list-rules` and docs.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "lock-unwrap",
        summary: "runtime code must not .unwrap()/.expect() a Mutex/RwLock guard; \
                  use asterix_common::sync::lock_or_recover or the sync facade types",
    },
    RuleInfo {
        name: "guard-across-blocking",
        summary: "a lock guard must not stay live across a channel send/recv, \
                  thread join, or sleep — drop it or scope it first",
    },
    RuleInfo {
        name: "relaxed-ordering",
        summary: "Ordering::Relaxed needs a `// relaxed-ok:` comment stating why \
                  the weak ordering cannot be observed",
    },
    RuleInfo {
        name: "static-atomic",
        summary: "no ad-hoc `static` atomics: route process-wide counters through \
                  the typed MetricsRegistry",
    },
    RuleInfo {
        name: "forbid-unsafe",
        summary: "every crate root must carry #![forbid(unsafe_code)]",
    },
    RuleInfo {
        name: "raw-thread-spawn",
        summary: "runtime code must not call std::thread::spawn/Builder directly; \
                  use asterix_common::sync::thread::spawn_named (or a scheduler task) \
                  so threads are named and counted, or add `// spawn-ok: <reason>`",
    },
];

/// One rule hit at one source line.
#[derive(Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub path: PathBuf,
    pub line: usize, // 1-based
    pub message: String,
    pub excerpt: String,
}

fn push(out: &mut Vec<Violation>, rule: &'static str, file: &SourceFile, idx: usize, msg: String) {
    out.push(Violation {
        rule,
        path: file.path.clone(),
        line: idx + 1,
        message: msg,
        excerpt: file.lines[idx].raw.trim().to_string(),
    });
}

/// Lines a rule should look at: runtime code only, not suppressed.
fn active<'a>(file: &'a SourceFile, rule: &str) -> impl Iterator<Item = (usize, &'a Line)> {
    let rule = rule.to_string();
    file.lines
        .iter()
        .enumerate()
        .filter(move |(_, l)| !l.in_test && !l.allows(&rule))
}

// ---------------------------------------------------------------------------
// Rule: lock-unwrap
// ---------------------------------------------------------------------------

const LOCK_CALLS: &[&str] = &[
    ".lock()",
    ".try_lock()",
    ".read()",
    ".try_read()",
    ".write()",
    ".try_write()",
];

fn check_lock_unwrap(file: &SourceFile, out: &mut Vec<Violation>) {
    let squished: Vec<String> = file.lines.iter().map(|l| l.squished()).collect();
    for (idx, _line) in active(file, "lock-unwrap") {
        let sq = &squished[idx];
        for call in LOCK_CALLS {
            // Same-line chain: `m.lock().unwrap()` / `.expect(`
            let mut from = 0;
            while let Some(pos) = sq[from..].find(call) {
                let after = &sq[from + pos + call.len()..];
                if after.starts_with(".unwrap()") || after.starts_with(".expect(") {
                    push(
                        out,
                        "lock-unwrap",
                        file,
                        idx,
                        format!(
                            "`{call}` result unwrapped; a poisoned lock would panic forever — \
                             use asterix_common::sync::lock_or_recover (or the sync facade types)"
                        ),
                    );
                }
                from += pos + call.len();
            }
            // Split chain: line ends `.lock()` and the next code line starts
            // `.unwrap()` / `.expect(`
            if sq.ends_with(call) {
                if let Some(next) = squished[idx + 1..].iter().find(|s| !s.is_empty()) {
                    if next.starts_with(".unwrap()") || next.starts_with(".expect(") {
                        push(
                            out,
                            "lock-unwrap",
                            file,
                            idx,
                            format!(
                                "`{call}` result unwrapped on the following line — \
                                 use asterix_common::sync::lock_or_recover"
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: guard-across-blocking
// ---------------------------------------------------------------------------

const BLOCKING_CALLS: &[&str] = &[
    ".send(",
    ".send_timeout(",
    ".recv(",
    ".recv_timeout(",
    ".join()",
    "thread::sleep(",
];

struct LiveGuard {
    name: String,
    depth: i32,
    bound_at: usize, // 0-based line index
}

/// Try to read `let [mut] NAME [: ty] = <expr>.lock();` out of a line.
///
/// Only bindings whose right-hand side *ends* with the lock call produce a
/// guard: `let n = *m.lock();` or `let v = m.lock().pop();` copy data out and
/// drop the guard inside the statement.
fn guard_binding(line: &Line, sq: &str) -> Option<String> {
    let t = line.code.trim_start();
    if !t.starts_with("let ") {
        return None;
    }
    if !sq.ends_with(".lock();") && !sq.ends_with(".read();") && !sq.ends_with(".write();") {
        return None;
    }
    // A deref on the RHS (`= *m.lock()`) copies the value; no guard survives.
    if sq.find('=').is_some_and(|p| sq[p + 1..].starts_with('*')) {
        return None;
    }
    let rest = t["let ".len()..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    // `let _ = m.lock();` drops the guard immediately; destructuring (`let (a,`)
    // yields no name and is not a guard binding pattern we track.
    if name.is_empty() || name == "_" {
        return None;
    }
    Some(name)
}

fn check_guard_across_blocking(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        // Scope exit kills guards bound deeper than the current depth.
        guards.retain(|g| line.depth_at_start >= g.depth);
        if line.in_test {
            continue;
        }
        let sq = line.squished();
        // `drop(guard)` / `std::mem::drop(guard)` ends the borrow early.
        guards.retain(|g| !sq.contains(&format!("drop({})", g.name)));

        if !guards.is_empty() && !line.allows("guard-across-blocking") {
            for call in BLOCKING_CALLS {
                if sq.contains(call) {
                    let g = guards.last().unwrap();
                    push(
                        out,
                        "guard-across-blocking",
                        file,
                        idx,
                        format!(
                            "blocking call `{call}..` while lock guard `{}` (bound on line {}) \
                             is live — drop the guard or move the call out of its scope",
                            g.name,
                            g.bound_at + 1
                        ),
                    );
                }
            }
        }

        if !line.allows("guard-across-blocking") {
            if let Some(name) = guard_binding(line, &sq) {
                guards.push(LiveGuard {
                    name,
                    depth: line.depth_at_start,
                    bound_at: idx,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: relaxed-ordering
// ---------------------------------------------------------------------------

fn check_relaxed_ordering(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in active(file, "relaxed-ordering") {
        if line.code.contains("Ordering::Relaxed") {
            push(
                out,
                "relaxed-ordering",
                file,
                idx,
                "Ordering::Relaxed without a `// relaxed-ok:` comment — state why the \
                 weak ordering cannot be observed, or use Acquire/Release"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: static-atomic
// ---------------------------------------------------------------------------

fn check_static_atomic(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in active(file, "static-atomic") {
        let t = line.code.trim_start();
        let after_vis = t
            .strip_prefix("pub(crate) ")
            .or_else(|| t.strip_prefix("pub(super) "))
            .or_else(|| t.strip_prefix("pub "))
            .unwrap_or(t);
        if after_vis.starts_with("static ") && line.squished().contains(":Atomic") {
            push(
                out,
                "static-atomic",
                file,
                idx,
                "ad-hoc static atomic bypasses the MetricsRegistry — register a typed \
                 Counter/Gauge instead (snapshots, labels, and export come for free)"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: raw-thread-spawn
// ---------------------------------------------------------------------------

fn check_raw_thread_spawn(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in active(file, "raw-thread-spawn") {
        let sq = line.squished();
        // `thread::spawn(` catches both `std::thread::spawn(` and a
        // `use std::thread`-style call; `spawn_named` does not match because
        // the paren must follow `spawn` directly.
        if sq.contains("thread::spawn(") || sq.contains("thread::Builder::new(") {
            push(
                out,
                "raw-thread-spawn",
                file,
                idx,
                "raw std::thread spawn bypasses the sync facade — use \
                 asterix_common::sync::thread::spawn_named (named + counted) or a \
                 scheduler task; if a bare thread is genuinely required, annotate \
                 with `// spawn-ok: <reason>`"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: forbid-unsafe
// ---------------------------------------------------------------------------

/// Crate roots must opt the whole crate out of `unsafe`.
///
/// Runs on root files only (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`),
/// not on every module.
pub fn check_crate_root(path: &Path, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if !text.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            rule: "forbid-unsafe",
            path: path.to_path_buf(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            excerpt: text.lines().next().unwrap_or("").trim().to_string(),
        });
    }
    out
}

/// Run all per-file rules (everything except `forbid-unsafe`).
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    check_lock_unwrap(file, &mut out);
    check_guard_across_blocking(file, &mut out);
    check_relaxed_ordering(file, &mut out);
    check_static_atomic(file, &mut out);
    check_raw_thread_spawn(file, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::parse_source;
    use std::path::Path;

    fn violations(src: &str) -> Vec<Violation> {
        check_file(&parse_source(Path::new("mem.rs"), src))
    }

    fn rules_hit(src: &str) -> Vec<&'static str> {
        violations(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn split_chain_unwrap_is_caught() {
        let src = "let g = self.state\n    .lock()\n    .unwrap();\n";
        assert!(rules_hit(src).contains(&"lock-unwrap"));
    }

    #[test]
    fn lock_unwrap_in_cfg_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { m.lock().unwrap(); }\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn guard_dropped_before_send_is_clean() {
        let src = "fn f() {\n    let q = state.lock();\n    drop(q);\n    tx.send(1).ok();\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn guard_scoped_out_before_send_is_clean() {
        let src = "fn f() {\n    let batch = {\n        let mut q = state.lock();\n        q.take()\n    };\n    tx.send(batch).ok();\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn deref_copy_does_not_bind_a_guard() {
        let src = "fn f() {\n    let n = *counter.lock();\n    tx.send(n).ok();\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn send_under_live_guard_is_caught() {
        let src = "fn f() {\n    let mut q = state.lock();\n    tx.send(q.pop()).ok();\n}\n";
        assert_eq!(rules_hit(src), vec!["guard-across-blocking"]);
    }

    #[test]
    fn relaxed_inside_a_string_is_not_code() {
        let src = "fn f() { log(\"Ordering::Relaxed is fine here\"); }\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn static_atomic_with_allow_is_clean() {
        let src = "// lint-allow: static-atomic (poison counter; registry locks through here)\nstatic N: AtomicU64 = AtomicU64::new(0);\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn const_and_thread_local_atomics_are_not_statics() {
        let src = "thread_local! {\n    static TL: Cell<u64> = Cell::new(0);\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn raw_thread_spawn_is_caught() {
        let src = "fn f() {\n    std::thread::spawn(move || work());\n}\n";
        assert_eq!(rules_hit(src), vec!["raw-thread-spawn"]);
        let src = "fn f() {\n    std::thread::Builder::new().name(\"x\".into()).spawn(f);\n}\n";
        assert_eq!(rules_hit(src), vec!["raw-thread-spawn"]);
    }

    #[test]
    fn facade_spawn_and_annotated_spawn_are_clean() {
        let src = "fn f() {\n    sync_thread::spawn_named(\"w\", move || work());\n}\n";
        assert!(rules_hit(src).is_empty());
        let src = "fn f() {\n    std::thread::spawn(f); // spawn-ok: facade internals\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn thread_spawn_in_cfg_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(f); }\n}\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let v = check_crate_root(Path::new("lib.rs"), "pub fn f() {}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "forbid-unsafe");
        assert!(check_crate_root(
            Path::new("lib.rs"),
            "//! Doc.\n#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
    }
}
