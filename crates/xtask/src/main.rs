//! `cargo xtask` — repo-local developer tasks.
//!
//! Currently one subcommand: `lint`, the concurrency-invariant checker (see
//! the crate docs in `lib.rs` and the "Concurrency invariants & analysis"
//! section of DESIGN.md).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--root <dir>] [--list-rules]\n\
         \n\
         Enforce the repo's concurrency invariants over every first-party\n\
         crate. Exits non-zero when any violation is found."
    );
    ExitCode::FAILURE
}

fn list_rules() -> ExitCode {
    for rule in xtask::RULES {
        println!(
            "{:<24} {}",
            rule.name,
            rule.summary
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    ExitCode::SUCCESS
}

fn lint(root: PathBuf) -> ExitCode {
    let report = match xtask::lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        // Paths relative to the repo root keep the output clickable and short.
        let path = v.path.strip_prefix(&root).unwrap_or(&v.path);
        println!("{}:{}: [{}] {}", path.display(), v.line, v.rule, v.message);
        println!("    {}", v.excerpt);
    }
    if report.violations.is_empty() {
        println!(
            "xtask lint: clean — {} files, {} rules",
            report.files_scanned,
            xtask::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} files scanned",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = xtask::repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--list-rules" => return list_rules(),
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            lint(root)
        }
        _ => usage(),
    }
}
