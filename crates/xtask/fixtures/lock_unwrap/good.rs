//! GOOD: poison is recovered, not propagated. Runtime code goes through
//! `asterix_common::sync` (either the facade types, whose `lock()` returns
//! the guard directly, or `lock_or_recover` on a bare std lock); tests may
//! still unwrap, and deliberate exceptions carry a visible waiver.

use asterix_common::sync::{lock_or_recover, read_or_recover, write_or_recover, Mutex};

pub struct Store {
    rows: std::sync::Mutex<Vec<u64>>,
    index: std::sync::RwLock<Vec<usize>>,
    staged: Mutex<Vec<u64>>,
}

impl Store {
    pub fn push(&self, v: u64) {
        lock_or_recover(&self.rows).push(v);
    }

    pub fn stage(&self, v: u64) {
        // The facade Mutex recovers poison internally; no Result to unwrap.
        self.staged.lock().push(v);
    }

    pub fn lookup(&self, i: usize) -> Option<usize> {
        read_or_recover(&self.index).get(i).copied()
    }

    pub fn reindex(&self) {
        write_or_recover(&self.index).clear();
    }

    pub fn rows_snapshot_for_probe(&self) -> usize {
        // A deliberate exception stays reviewable at the call site.
        self.rows.lock().unwrap().len() // lint-allow: lock-unwrap (probe binary; a poisoned store should abort it)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let m = std::sync::Mutex::new(41);
        assert_eq!(*m.lock().unwrap() + 1, 42);
    }
}
