//! BAD: unwrapping lock results in runtime code. One panic while a writer
//! holds the lock poisons it, and every later caller panics forever.

use std::sync::{Mutex, RwLock};

pub struct Store {
    rows: Mutex<Vec<u64>>,
    index: RwLock<Vec<usize>>,
}

impl Store {
    pub fn push(&self, v: u64) {
        self.rows.lock().unwrap().push(v);
    }

    pub fn len(&self) -> usize {
        self.rows.lock().expect("rows lock poisoned").len()
    }

    pub fn lookup(&self, i: usize) -> Option<usize> {
        self.index.read().unwrap().get(i).copied()
    }

    pub fn reindex(&self) {
        self.index.write().unwrap().clear();
    }

    pub fn drain(&self) -> Vec<u64> {
        let mut guard = self
            .rows
            .lock()
            .unwrap();
        guard.drain(..).collect()
    }
}
