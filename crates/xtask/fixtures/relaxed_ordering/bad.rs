//! BAD: Relaxed orderings with no recorded argument for why the weakness is
//! unobservable. The first one is a real publication bug (readers of `ready`
//! may not see `value`); the second might be fine, but nobody wrote down why.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Cell {
    value: AtomicU64,
    ready: AtomicBool,
}

impl Cell {
    pub fn publish(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn events_seen(&self, events: &AtomicU64) -> u64 {
        events.load(Ordering::Relaxed)
    }
}
