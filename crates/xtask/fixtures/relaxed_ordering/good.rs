//! GOOD: publication uses Release/Acquire; the one Relaxed site carries a
//! `// relaxed-ok:` comment stating the ordering argument, so the waiver is
//! reviewable next to the code.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Cell {
    value: AtomicU64,
    ready: AtomicBool,
    events: AtomicU64,
}

impl Cell {
    pub fn publish(&self, v: u64) {
        // relaxed-ok: `value` is published by the Release store to `ready`
        // below; no reader looks at it before observing `ready`.
        self.value.store(v, Ordering::Relaxed);
        self.ready.store(true, Ordering::Release);
    }

    pub fn read(&self) -> Option<u64> {
        if self.ready.load(Ordering::Acquire) {
            Some(self.value.load(Ordering::Acquire))
        } else {
            None
        }
    }

    pub fn note_event(&self) {
        // relaxed-ok: standalone monotonic counter; read only for reporting,
        // never used to synchronise other data.
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_is_fine_in_tests() {
        let c = Cell {
            value: AtomicU64::new(0),
            ready: AtomicBool::new(false),
            events: AtomicU64::new(0),
        };
        c.events.store(3, Ordering::Relaxed);
        assert_eq!(c.events.load(Ordering::Relaxed), 3);
    }
}
