//! GOOD: the crate opts out of `unsafe` wholesale; any future `unsafe`
//! block is a compile error, so Miri/TSan findings can only come from
//! logic, not from undefined behaviour in first-party code.

#![forbid(unsafe_code)]

pub mod flow;
pub mod storage;

pub fn checked_add(a: u64, b: u64) -> Option<u64> {
    a.checked_add(b)
}
