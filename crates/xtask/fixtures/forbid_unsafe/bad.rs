//! BAD: a crate root without the `unsafe` guard-rail. Nothing stops an
//! `unsafe` block from slipping into this crate in review.

pub mod flow;
pub mod storage;

pub fn checked_add(a: u64, b: u64) -> Option<u64> {
    a.checked_add(b)
}
