//! GOOD: process-wide counters live in the typed `MetricsRegistry`, which
//! gives them snapshots, labels, and export. The single sanctioned static
//! (a counter the registry itself depends on) carries a visible waiver.

use asterix_common::metrics::{Counter, MetricsRegistry};

pub struct FrameStats {
    frames_seen: Counter,
    feeds_started: Counter,
}

impl FrameStats {
    pub fn new(metrics: &MetricsRegistry) -> Self {
        Self {
            frames_seen: metrics.counter("ingest.frames_seen", &[]),
            feeds_started: metrics.counter("ingest.feeds_started", &[]),
        }
    }

    pub fn note_frame(&self) {
        self.frames_seen.inc();
    }

    pub fn feed_started(&self) {
        self.feeds_started.inc();
    }
}

// lint-allow: static-atomic (the registry's own poison counter cannot route
// through the registry: recovering a poisoned registry lock increments it)
static REGISTRY_POISON_RECOVERIES: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

pub fn registry_poison_recoveries() -> u64 {
    // relaxed-ok: standalone diagnostic counter, carries no payload.
    REGISTRY_POISON_RECOVERIES.load(std::sync::atomic::Ordering::Relaxed)
}
