//! BAD: ad-hoc global counters. They are invisible to `MetricsRegistry`
//! snapshots and exports, have no labels, and leak state across tests.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub static FRAMES_SEEN: AtomicU64 = AtomicU64::new(0);

static ACTIVE_FEEDS: AtomicUsize = AtomicUsize::new(0);

pub fn note_frame() {
    FRAMES_SEEN.fetch_add(1, Ordering::Release);
}

pub fn feed_started() {
    ACTIVE_FEEDS.fetch_add(1, Ordering::Release);
}
