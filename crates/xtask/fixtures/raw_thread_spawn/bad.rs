//! BAD: raw thread spawns. They bypass the `common::sync::thread` facade,
//! so the thread is unnamed in debuggers and invisible to the
//! `sync.facade_threads` count — "how many threads does this process run"
//! stops being answerable from a metrics snapshot.

use std::thread;

pub fn start_pump() {
    thread::spawn(|| loop {
        // drain the queue forever
    });
}

pub fn start_named_pump() {
    thread::Builder::new()
        .name("pump".into())
        .spawn(|| {})
        .unwrap();
}

pub fn start_split_call() {
    std::thread::spawn(
        move || { /* work */ },
    );
}
