//! GOOD: threads go through the facade, which names them and counts them
//! in `sync.facade_threads`; the rare deliberate exception carries a
//! visible `// spawn-ok:` waiver explaining itself.

use asterix_common::sync::thread as sync_thread;

pub fn start_pump() {
    sync_thread::spawn_named("queue-pump", || loop {
        // drain the queue forever
    })
    .expect("spawn queue pump");
}

pub fn start_scoped_helper() {
    // spawn-ok: scoped thread joins before return; the facade has no scoped API
    std::thread::spawn(|| {}).join().ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_threads_are_exempt() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
