//! BAD: lock guards held across blocking calls. A bounded channel send that
//! blocks while `q` is held stalls every other thread that needs the lock —
//! and if the receiver needs the same lock to drain, that is a deadlock.

use asterix_common::sync::Mutex;
use crossbeam_channel::{Receiver, Sender};

pub fn drain_queue(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let mut q = state.lock();
    while let Some(v) = q.pop() {
        tx.send(v).ok();
    }
}

pub fn refill_queue(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    let mut q = state.lock();
    if let Ok(v) = rx.recv() {
        q.push(v);
    }
}

pub fn wait_for_worker(state: &Mutex<Vec<u64>>, worker: std::thread::JoinHandle<()>) {
    let guard = state.lock();
    worker.join().ok();
    drop(guard);
}

pub fn backoff_under_lock(state: &Mutex<Vec<u64>>) {
    let mut q = state.lock();
    std::thread::sleep(std::time::Duration::from_millis(5));
    q.clear();
}
