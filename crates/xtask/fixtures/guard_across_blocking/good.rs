//! GOOD: the critical section only moves data; blocking calls happen after
//! the guard is gone — scoped out, explicitly dropped, or never bound.

use asterix_common::sync::Mutex;
use crossbeam_channel::{Receiver, Sender};

pub fn drain_queue(state: &Mutex<Vec<u64>>, tx: &Sender<u64>) {
    let batch: Vec<u64> = {
        let mut q = state.lock();
        q.drain(..).collect()
    };
    for v in batch {
        tx.send(v).ok();
    }
}

pub fn refill_queue(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) {
    if let Ok(v) = rx.recv() {
        state.lock().push(v);
    }
}

pub fn wait_for_worker(state: &Mutex<Vec<u64>>, worker: std::thread::JoinHandle<()>) {
    let drained = {
        let mut q = state.lock();
        q.drain(..).count()
    };
    worker.join().ok();
    let _ = drained;
}

pub fn drop_then_sleep(state: &Mutex<Vec<u64>>) {
    let mut q = state.lock();
    q.clear();
    drop(q);
    std::thread::sleep(std::time::Duration::from_millis(5));
}

pub fn copy_out_then_send(counter: &Mutex<u64>, tx: &Sender<u64>) {
    let n = *counter.lock();
    tx.send(n).ok();
}
