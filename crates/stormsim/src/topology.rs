//! A mini Storm: spouts, bolts and the at-least-once ack machinery.
//!
//! §2.2: Storm runs an arbitrary DAG of user-provided black-box nodes and
//! "deals with the challenges involved in successfully moving data across
//! the DAG in a fault-tolerant manner". The parts that matter for the §7.5
//! comparison are reproduced:
//!
//! * a **spout** pulls tuples from the source and assigns message ids;
//! * **bolts** transform tuples and *ack* (or *fail*) them;
//! * the spout keeps at most `max.spout.pending` tuples in flight — when
//!   acks lag (e.g. a slow store bolt), emission stalls, producing the
//!   throughput oscillations of Fig 7.11;
//! * tuples unacked after the message timeout are replayed.
//!
//! Topologies here are chains (spout → bolt → ... → bolt), which is the
//! shape of the glued ingestion topology; each stage runs `parallelism`
//! worker threads connected by bounded queues.

use asterix_common::sync::{thread as sync_thread, Mutex};
use asterix_common::{IngestError, IngestResult, SimClock, SimDuration, SimInstant};
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A tuple moving through the topology.
#[derive(Debug, Clone)]
pub struct StormTuple {
    /// Spout-assigned message id (anchors the ack tree).
    pub message_id: u64,
    /// Payload (a JSON/ADM line in the glued ingestion topology).
    pub payload: String,
}

/// What a bolt did with a tuple.
#[derive(Debug, Clone)]
pub enum BoltOutcome {
    /// Pass a (possibly transformed) payload downstream.
    Emit(String),
    /// Consume the tuple here (terminal bolt); ack it.
    Ack,
    /// Processing failed; the tuple will be replayed from the spout.
    Fail,
}

/// A data source for the spout.
pub trait Spout: Send {
    /// Next payload, or `None` if the source is (currently) dry.
    fn next(&mut self) -> Option<String>;
    /// Has the source finished for good?
    fn exhausted(&self) -> bool;
}

/// A processing stage.
pub trait Bolt: Send {
    /// Process one tuple payload.
    fn execute(&mut self, payload: &str) -> BoltOutcome;
}

/// Factory so each parallel executor gets its own bolt instance.
pub type BoltFactory = Box<dyn Fn() -> Box<dyn Bolt> + Send + Sync>;

/// Topology tuning (storm.yaml knobs).
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// `topology.max.spout.pending`.
    pub max_spout_pending: usize,
    /// `topology.message.timeout`: replay unacked tuples after this long.
    pub message_timeout: SimDuration,
    /// Queue capacity between stages (tuples).
    pub queue_capacity: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            max_spout_pending: 1024,
            message_timeout: SimDuration::from_secs(30),
            queue_capacity: 1024,
        }
    }
}

struct AckerState {
    pending: HashMap<u64, (String, SimInstant)>,
}

/// Shared acker: tracks in-flight tuples.
pub struct Acker {
    state: Mutex<AckerState>,
    acked: AtomicU64,
    failed: AtomicU64,
    replayed: AtomicU64,
}

impl Acker {
    fn new() -> Arc<Acker> {
        Arc::new(Acker {
            state: Mutex::new(AckerState {
                pending: HashMap::new(),
            }),
            acked: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
        })
    }

    /// Tuples fully processed.
    pub fn acked(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone counter
        self.acked.load(Ordering::Relaxed)
    }

    /// Tuples failed at some bolt.
    pub fn failed(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone counter
        self.failed.load(Ordering::Relaxed)
    }

    /// Tuples replayed after timeout or failure.
    pub fn replayed(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone counter
        self.replayed.load(Ordering::Relaxed)
    }

    /// Tuples currently in flight.
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len()
    }
}

/// A running topology.
pub struct Topology {
    acker: Arc<Acker>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    emitted: Arc<AtomicU64>,
    spout_stalled: Arc<AtomicU64>,
}

impl Topology {
    /// Build and start a chain topology: `spout → bolts[0] → bolts[1] → ...`.
    /// Each bolt stage runs `parallelism[i]` executors.
    pub fn run_chain(
        config: TopologyConfig,
        clock: SimClock,
        mut spout: Box<dyn Spout>,
        bolts: Vec<(BoltFactory, usize)>,
    ) -> IngestResult<Topology> {
        if bolts.is_empty() {
            return Err(IngestError::Config(
                "topology needs at least one bolt".into(),
            ));
        }
        let acker = Acker::new();
        let stop = Arc::new(AtomicBool::new(false));
        let emitted = Arc::new(AtomicU64::new(0));
        let spout_stalled = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        // stage queues: spout → q0 → bolt0 → q1 → bolt1 ...
        let mut queues: Vec<(Sender<StormTuple>, Receiver<StormTuple>)> = Vec::new();
        for _ in 0..bolts.len() {
            queues.push(bounded(config.queue_capacity));
        }
        // replay queue back to the spout loop
        let (replay_tx, replay_rx) = bounded::<StormTuple>(config.queue_capacity);

        // fail channel: bolts report failures to the acker loop
        let (fail_tx, fail_rx) = crossbeam_channel::unbounded::<u64>();

        // spout thread
        {
            let first = queues[0].0.clone();
            let acker = Arc::clone(&acker);
            let stop = Arc::clone(&stop);
            let clock2 = clock.clone();
            let emitted2 = Arc::clone(&emitted);
            let stalled = Arc::clone(&spout_stalled);
            let cfg = config.clone();
            threads.push(
                sync_thread::spawn_named("storm-spout", move || {
                    let mut next_id = 0u64;
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        // process failures → replay
                        while let Ok(failed_id) = fail_rx.try_recv() {
                            let tuple = {
                                let st = &mut *acker.state.lock();
                                st.pending.get(&failed_id).map(|(p, _)| StormTuple {
                                    message_id: failed_id,
                                    payload: p.clone(),
                                })
                            };
                            if let Some(t) = tuple {
                                acker.replayed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat
                                let _ = replay_tx.try_send(t);
                            }
                        }
                        // timeout replays
                        let now = clock2.now();
                        let timed_out: Vec<StormTuple> = {
                            let st = &mut *acker.state.lock();
                            let mut out = Vec::new();
                            for (id, (p, deadline)) in st.pending.iter_mut() {
                                if now.since(*deadline) >= cfg.message_timeout {
                                    *deadline = now;
                                    out.push(StormTuple {
                                        message_id: *id,
                                        payload: p.clone(),
                                    });
                                }
                            }
                            out
                        };
                        for t in timed_out {
                            acker.replayed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat
                            if first.send(t).is_err() {
                                return;
                            }
                        }
                        // replays first
                        if let Ok(t) = replay_rx.try_recv() {
                            if first.send(t).is_err() {
                                return;
                            }
                            continue;
                        }
                        // max.spout.pending gate
                        if acker.pending() >= cfg.max_spout_pending {
                            stalled.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            continue;
                        }
                        match spout.next() {
                            Some(payload) => {
                                let id = next_id;
                                next_id += 1;
                                {
                                    let st = &mut *acker.state.lock();
                                    st.pending.insert(id, (payload.clone(), clock2.now()));
                                }
                                emitted2.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat
                                if first
                                    .send(StormTuple {
                                        message_id: id,
                                        payload,
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            None => {
                                if spout.exhausted() && acker.pending() == 0 {
                                    return; // drop senders → bolts drain out
                                }
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                        }
                    }
                })
                .map_err(|e| IngestError::Plan(format!("spawn spout: {e}")))?,
            );
        }

        // bolt stages
        for (i, (factory, parallelism)) in bolts.iter().enumerate() {
            let rx = queues[i].1.clone();
            let next_tx = queues.get(i + 1).map(|(tx, _)| tx.clone());
            for w in 0..*parallelism {
                let mut bolt = factory();
                let rx = rx.clone();
                let next_tx = next_tx.clone();
                let acker = Arc::clone(&acker);
                let stop = Arc::clone(&stop);
                let fail_tx = fail_tx.clone();
                threads.push(
                    sync_thread::spawn_named(format!("storm-bolt{i}-{w}"), move || loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                            Ok(tuple) => match bolt.execute(&tuple.payload) {
                                BoltOutcome::Emit(payload) => {
                                    if let Some(tx) = &next_tx {
                                        let _ = tx.send(StormTuple {
                                            message_id: tuple.message_id,
                                            payload,
                                        });
                                    } else {
                                        // terminal emit = ack
                                        let st = &mut *acker.state.lock();
                                        if st.pending.remove(&tuple.message_id).is_some() {
                                            // relaxed-ok: stat
                                            acker.acked.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                BoltOutcome::Ack => {
                                    let st = &mut *acker.state.lock();
                                    if st.pending.remove(&tuple.message_id).is_some() {
                                        // relaxed-ok: stat
                                        acker.acked.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                BoltOutcome::Fail => {
                                    acker.failed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat
                                    let _ = fail_tx.send(tuple.message_id);
                                }
                            },
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .map_err(|e| IngestError::Plan(format!("spawn bolt: {e}")))?,
                );
            }
        }

        Ok(Topology {
            acker,
            stop,
            threads,
            emitted,
            spout_stalled,
        })
    }

    /// The acker (progress counters).
    pub fn acker(&self) -> &Arc<Acker> {
        &self.acker
    }

    /// Tuples emitted by the spout (excluding replays).
    pub fn emitted(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone counter
        self.emitted.load(Ordering::Relaxed)
    }

    /// Times the spout stalled on `max.spout.pending`.
    pub fn spout_stalls(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone counter
        self.spout_stalled.load(Ordering::Relaxed)
    }

    /// The stall counter itself (readable after `join` consumes the
    /// topology).
    pub fn stall_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.spout_stalled)
    }

    /// Wait for the topology to finish (source exhausted and drained).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Kill the topology.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Is any executor still running?
    pub fn is_running(&self) -> bool {
        self.threads.iter().any(|t| !t.is_finished())
    }
}

/// A spout over a fixed vector of payloads (tests and batch workloads).
pub struct VecSpout {
    items: std::vec::IntoIter<String>,
    done: bool,
}

impl VecSpout {
    /// Spout over `items`.
    pub fn new(items: Vec<String>) -> VecSpout {
        VecSpout {
            items: items.into_iter(),
            done: false,
        }
    }
}

impl Spout for VecSpout {
    fn next(&mut self) -> Option<String> {
        match self.items.next() {
            Some(x) => Some(x),
            None => {
                self.done = true;
                None
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }
}

/// A spout draining a channel (live sources); exhausted when disconnected.
pub struct ChannelSpout {
    rx: Receiver<String>,
    disconnected: bool,
}

impl ChannelSpout {
    /// Spout over `rx`.
    pub fn new(rx: Receiver<String>) -> ChannelSpout {
        ChannelSpout {
            rx,
            disconnected: false,
        }
    }
}

impl Spout for ChannelSpout {
    fn next(&mut self) -> Option<String> {
        match self.rx.try_recv() {
            Ok(x) => Some(x),
            Err(crossbeam_channel::TryRecvError::Empty) => None,
            Err(crossbeam_channel::TryRecvError::Disconnected) => {
                self.disconnected = true;
                None
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.disconnected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountBolt(Arc<AtomicU64>);
    impl Bolt for CountBolt {
        fn execute(&mut self, _payload: &str) -> BoltOutcome {
            self.0.fetch_add(1, Ordering::Relaxed);
            BoltOutcome::Ack
        }
    }

    fn payloads(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("p{i}")).collect()
    }

    #[test]
    fn chain_processes_and_acks_everything() {
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let topo = Topology::run_chain(
            TopologyConfig::default(),
            SimClock::fast(),
            Box::new(VecSpout::new(payloads(500))),
            vec![(
                Box::new(move || Box::new(CountBolt(Arc::clone(&c2))) as Box<dyn Bolt>),
                2,
            )],
        )
        .unwrap();
        let acker = Arc::clone(topo.acker());
        topo.join();
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(acker.acked(), 500);
        assert_eq!(acker.pending(), 0);
    }

    #[test]
    fn two_stage_chain_transforms_then_acks() {
        struct UpperBolt;
        impl Bolt for UpperBolt {
            fn execute(&mut self, payload: &str) -> BoltOutcome {
                BoltOutcome::Emit(payload.to_uppercase())
            }
        }
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        struct SinkBolt(Arc<Mutex<Vec<String>>>);
        impl Bolt for SinkBolt {
            fn execute(&mut self, payload: &str) -> BoltOutcome {
                self.0.lock().push(payload.to_string());
                BoltOutcome::Ack
            }
        }
        let topo = Topology::run_chain(
            TopologyConfig::default(),
            SimClock::fast(),
            Box::new(VecSpout::new(payloads(50))),
            vec![
                (Box::new(|| Box::new(UpperBolt) as Box<dyn Bolt>), 1),
                (
                    Box::new(move || Box::new(SinkBolt(Arc::clone(&s2))) as Box<dyn Bolt>),
                    1,
                ),
            ],
        )
        .unwrap();
        topo.join();
        let got = seen.lock();
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|p| p.starts_with('P')));
    }

    #[test]
    fn failed_tuples_are_replayed() {
        // fail each tuple exactly once, then ack
        struct FlakyBolt {
            seen: std::collections::HashSet<String>,
        }
        impl Bolt for FlakyBolt {
            fn execute(&mut self, payload: &str) -> BoltOutcome {
                if self.seen.insert(payload.to_string()) {
                    BoltOutcome::Fail
                } else {
                    BoltOutcome::Ack
                }
            }
        }
        let topo = Topology::run_chain(
            TopologyConfig::default(),
            SimClock::fast(),
            Box::new(VecSpout::new(payloads(20))),
            vec![(
                Box::new(|| {
                    Box::new(FlakyBolt {
                        seen: std::collections::HashSet::new(),
                    }) as Box<dyn Bolt>
                }),
                1, // single executor so every tuple meets the same bolt
            )],
        )
        .unwrap();
        let acker = Arc::clone(topo.acker());
        topo.join();
        assert_eq!(acker.acked(), 20);
        assert_eq!(acker.failed(), 20);
        assert!(acker.replayed() >= 20);
    }

    #[test]
    fn max_spout_pending_stalls_emission() {
        struct SlowBolt;
        impl Bolt for SlowBolt {
            fn execute(&mut self, _payload: &str) -> BoltOutcome {
                std::thread::sleep(std::time::Duration::from_micros(500));
                BoltOutcome::Ack
            }
        }
        let topo = Topology::run_chain(
            TopologyConfig {
                max_spout_pending: 4,
                ..TopologyConfig::default()
            },
            SimClock::fast(),
            Box::new(VecSpout::new(payloads(200))),
            vec![(Box::new(|| Box::new(SlowBolt) as Box<dyn Bolt>), 1)],
        )
        .unwrap();
        let acker = Arc::clone(topo.acker());
        let stalls_handle = Arc::clone(&topo.spout_stalled);
        topo.join();
        assert_eq!(acker.acked(), 200);
        assert!(
            stalls_handle.load(Ordering::Relaxed) > 0,
            "spout should have stalled on pending window"
        );
    }

    #[test]
    fn kill_stops_promptly() {
        let (tx, rx) = crossbeam_channel::unbounded::<String>();
        let topo = Topology::run_chain(
            TopologyConfig::default(),
            SimClock::fast(),
            Box::new(ChannelSpout::new(rx)),
            vec![(
                Box::new(|| Box::new(CountBolt(Arc::new(AtomicU64::new(0)))) as Box<dyn Bolt>),
                1,
            )],
        )
        .unwrap();
        tx.send("x".into()).unwrap();
        assert!(topo.is_running());
        topo.kill();
        drop(tx);
    }

    #[test]
    fn empty_bolt_chain_rejected() {
        assert!(Topology::run_chain(
            TopologyConfig::default(),
            SimClock::fast(),
            Box::new(VecSpout::new(vec![])),
            vec![],
        )
        .is_err());
    }
}
