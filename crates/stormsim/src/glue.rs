//! The glue code of the §7.5 comparison: a Storm topology whose terminal
//! bolt issues one client insert per tuple against the Mongo-like store.
//!
//! "Although a data routing engine does not provide for storage and
//! indexing of data, it can still be used in conjunction with a data
//! store ... such that the routed data output from the data routing engine
//! can be re-directed to the data store using its prescribed APIs" (§2.2).
//! The inefficiencies the paper demonstrates are structural: per-record
//! client calls, ack-tree overhead, the `max.spout.pending` stall loop,
//! and — under durable writes — each insert waiting out a journal group
//! commit.

use crate::mongo::{MongoConfig, MongoStore, WriteConcern};
use crate::topology::{Bolt, BoltOutcome, ChannelSpout, Topology, TopologyConfig, VecSpout};
use asterix_adm::parse_value;
use asterix_common::{IngestResult, RateMeter, SimClock, SimDuration, ThroughputSeries};
use crossbeam_channel::Receiver;
use std::sync::Arc;

/// Configuration of the glued run.
pub struct StormMongoConfig {
    /// Write concern for the store bolt.
    pub concern: WriteConcern,
    /// Parse/transform bolt parallelism.
    pub transform_parallelism: usize,
    /// Store bolt parallelism (client connections).
    pub store_parallelism: usize,
    /// Storm knobs.
    pub topology: TopologyConfig,
    /// Mongo knobs.
    pub mongo: MongoConfig,
    /// Per-record transform busy-spin (models the UDF).
    pub udf_spin: u64,
    /// Throughput meter bucket.
    pub meter_bucket: SimDuration,
}

impl Default for StormMongoConfig {
    fn default() -> Self {
        StormMongoConfig {
            concern: WriteConcern::NonDurable,
            transform_parallelism: 2,
            store_parallelism: 2,
            topology: TopologyConfig::default(),
            mongo: MongoConfig::default(),
            udf_spin: 0,
            meter_bucket: SimDuration::from_secs(2),
        }
    }
}

/// Results of a glued run.
#[derive(Debug)]
pub struct StormMongoReport {
    /// Documents persisted in the store.
    pub persisted: usize,
    /// Tuples fully acked by the topology.
    pub acked: u64,
    /// Tuples replayed (timeouts / failures).
    pub replayed: u64,
    /// Times the spout stalled on `max.spout.pending`.
    pub spout_stalls: u64,
    /// Instantaneous persisted-throughput series (the Fig 7.11/7.12 axes).
    pub throughput: ThroughputSeries,
}

struct TransformBolt {
    spin: u64,
}

impl Bolt for TransformBolt {
    fn execute(&mut self, payload: &str) -> BoltOutcome {
        // parse-validate, like the glue code's JSON handling
        if parse_value(payload).is_err() {
            return BoltOutcome::Fail;
        }
        let mut acc = 0u64;
        for i in 0..self.spin {
            acc = acc.wrapping_add(i).rotate_left(1);
        }
        std::hint::black_box(acc);
        BoltOutcome::Emit(payload.to_string())
    }
}

struct StoreBolt {
    store: Arc<MongoStore>,
    concern: WriteConcern,
    collection: String,
    meter: Arc<RateMeter>,
    clock: SimClock,
}

impl Bolt for StoreBolt {
    fn execute(&mut self, payload: &str) -> BoltOutcome {
        let doc = match parse_value(payload) {
            Ok(d) => d,
            Err(_) => return BoltOutcome::Fail,
        };
        match self.store.insert(&self.collection, &doc, self.concern) {
            Ok(()) => {
                self.meter.record_at(self.clock.now(), 1);
                BoltOutcome::Ack
            }
            Err(_) => BoltOutcome::Fail,
        }
    }
}

enum SourceKind {
    Vec(Vec<String>),
    Channel(Receiver<String>),
}

/// Drive a tweet workload through the glued Storm+Mongo assembly and report
/// what the paper's Fig 7.11/7.12 report.
pub fn run_storm_mongo(
    config: StormMongoConfig,
    clock: SimClock,
    source: Receiver<String>,
) -> IngestResult<StormMongoReport> {
    run_impl(config, clock, SourceKind::Channel(source))
}

/// Same, over a fixed workload vector.
pub fn run_storm_mongo_vec(
    config: StormMongoConfig,
    clock: SimClock,
    workload: Vec<String>,
) -> IngestResult<StormMongoReport> {
    run_impl(config, clock, SourceKind::Vec(workload))
}

fn run_impl(
    config: StormMongoConfig,
    clock: SimClock,
    source: SourceKind,
) -> IngestResult<StormMongoReport> {
    let store = MongoStore::start(config.mongo.clone(), clock.clone());
    let meter = Arc::new(RateMeter::new(clock.now(), config.meter_bucket));
    let collection = "tweets".to_string();

    let udf_spin = config.udf_spin;
    let transform_factory: crate::topology::BoltFactory =
        Box::new(move || Box::new(TransformBolt { spin: udf_spin }) as Box<dyn Bolt>);

    let store2 = Arc::clone(&store);
    let meter2 = Arc::clone(&meter);
    let clock2 = clock.clone();
    let concern = config.concern;
    let coll2 = collection.clone();
    let store_factory: crate::topology::BoltFactory = Box::new(move || {
        Box::new(StoreBolt {
            store: Arc::clone(&store2),
            concern,
            collection: coll2.clone(),
            meter: Arc::clone(&meter2),
            clock: clock2.clone(),
        }) as Box<dyn Bolt>
    });

    let spout: Box<dyn crate::topology::Spout> = match source {
        SourceKind::Vec(v) => Box::new(VecSpout::new(v)),
        SourceKind::Channel(rx) => Box::new(ChannelSpout::new(rx)),
    };

    let topo = Topology::run_chain(
        config.topology,
        clock,
        spout,
        vec![
            (transform_factory, config.transform_parallelism),
            (store_factory, config.store_parallelism),
        ],
    )?;
    let acker = Arc::clone(topo.acker());
    let stalls_counter = topo.stall_counter();
    topo.join();
    Ok(StormMongoReport {
        persisted: store.count(&collection),
        acked: acker.acked(),
        replayed: acker.replayed(),
        spout_stalls: stalls_counter.load(std::sync::atomic::Ordering::Relaxed), // relaxed-ok: report read after join
        throughput: meter.series(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweets(n: usize) -> Vec<String> {
        let mut f = tweetgen::TweetFactory::new(0, 11);
        (0..n).map(|_| f.next_json()).collect()
    }

    #[test]
    fn glued_pipeline_persists_everything_nondurable() {
        let report = run_storm_mongo_vec(
            StormMongoConfig {
                mongo: MongoConfig {
                    per_op_spin: 0,
                    ..MongoConfig::default()
                },
                ..StormMongoConfig::default()
            },
            SimClock::with_scale(10.0),
            tweets(300),
        )
        .unwrap();
        assert_eq!(report.persisted, 300);
        assert_eq!(report.acked, 300);
        assert_eq!(report.throughput.total(), 300);
    }

    #[test]
    fn durable_run_is_much_slower() {
        let clock = SimClock::with_scale(50.0);
        let mk = |concern| StormMongoConfig {
            concern,
            mongo: MongoConfig {
                per_op_spin: 0,
                commit_interval: SimDuration::from_millis(100),
                ..MongoConfig::default()
            },
            store_parallelism: 1,
            ..StormMongoConfig::default()
        };
        let t0 = std::time::Instant::now();
        let nd =
            run_storm_mongo_vec(mk(WriteConcern::NonDurable), clock.clone(), tweets(100)).unwrap();
        let nd_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        let d = run_storm_mongo_vec(mk(WriteConcern::Durable), clock, tweets(100)).unwrap();
        let d_time = t1.elapsed();
        assert_eq!(nd.persisted, 100);
        assert_eq!(d.persisted, 100);
        assert!(
            d_time > nd_time * 3,
            "durable {d_time:?} vs non-durable {nd_time:?}"
        );
    }

    #[test]
    fn malformed_payloads_are_failed_and_replayed_forever_is_avoided() {
        // a malformed record fails at the transform bolt each time; the
        // workload still completes because the spout keeps replaying only
        // while tuples are pending — we kill after the good ones finish
        let mut w = tweets(20);
        w.push("not json {{{".into());
        let clock = SimClock::with_scale(10.0);
        let report = {
            // run with a short message timeout; the bad tuple will keep
            // cycling, so run the topology manually and kill it
            let store = MongoStore::start(
                MongoConfig {
                    per_op_spin: 0,
                    ..MongoConfig::default()
                },
                clock.clone(),
            );
            let meter = Arc::new(RateMeter::new(clock.now(), SimDuration::from_secs(2)));
            let store2 = Arc::clone(&store);
            let meter2 = Arc::clone(&meter);
            let clock2 = clock.clone();
            let topo = Topology::run_chain(
                TopologyConfig::default(),
                clock.clone(),
                Box::new(VecSpout::new(w)),
                vec![(
                    Box::new(move || {
                        Box::new(StoreBolt {
                            store: Arc::clone(&store2),
                            concern: WriteConcern::NonDurable,
                            collection: "tweets".into(),
                            meter: Arc::clone(&meter2),
                            clock: clock2.clone(),
                        }) as Box<dyn Bolt>
                    }),
                    2,
                )],
            )
            .unwrap();
            let acker = Arc::clone(topo.acker());
            // wait until the 20 good tuples are acked
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while acker.acked() < 20 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            topo.kill();
            (store.count("tweets"), acker.acked(), acker.failed())
        };
        assert_eq!(report.0, 20);
        assert!(report.2 >= 1, "the malformed tuple failed at least once");
    }
}
