//! A mini MongoDB-like document store.
//!
//! Documents are ADM records keyed by an `_id`-style primary key field.
//! Two write concerns, matching the §7.5 experiment's axes:
//!
//! * [`WriteConcern::NonDurable`] — the insert is acknowledged once applied
//!   in memory (Mongo's historical default, `w:1` without journaling);
//! * [`WriteConcern::Durable`] — the insert is acknowledged only after the
//!   journal "fsyncs"; the journal group-commits, so each sync covers
//!   whatever accumulated since the last one, and the caller waits for the
//!   next sync boundary (Mongo's `j:true`).
//!
//! The store also models a fixed per-operation client round-trip cost —
//! each insert in a glued system is an independent client call, the
//! per-record overhead that AsterixDB's native pipeline amortizes away.

use asterix_adm::AdmValue;
use asterix_common::sync::{thread as sync_thread, Mutex};
use asterix_common::{IngestError, IngestResult, SimClock, SimDuration};
use std::collections::HashMap;

/// Durability mode for inserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteConcern {
    /// Acknowledge after the in-memory apply.
    NonDurable,
    /// Acknowledge after the journal's next group commit.
    Durable,
}

/// Store tuning.
#[derive(Debug, Clone)]
pub struct MongoConfig {
    /// The primary-key field of documents.
    pub id_field: String,
    /// Journal group-commit interval (sim-time).
    pub commit_interval: SimDuration,
    /// Client round-trip cost per operation, busy-spin iterations.
    pub per_op_spin: u64,
}

impl Default for MongoConfig {
    fn default() -> Self {
        MongoConfig {
            id_field: "id".into(),
            // journalCommitInterval defaults to ~100 ms in MongoDB
            commit_interval: SimDuration::from_millis(100),
            per_op_spin: 2_000,
        }
    }
}

#[derive(Default)]
struct Collection {
    /// Documents keyed by the *binary-ADM* encoding of their primary key —
    /// compact, byte-exact (no text round-trip can collide e.g. the string
    /// `"1"` with the int `1`... the tag byte keeps them distinct), and
    /// cheaper to build than printing ADM text.
    docs: HashMap<Vec<u8>, AdmValue>,
    /// writes applied but not yet journaled
    unjournaled: u64,
    journaled: u64,
}

/// The document store.
pub struct MongoStore {
    config: MongoConfig,
    clock: SimClock,
    collections: Mutex<HashMap<String, Collection>>,
    /// generation counter bumped by each group commit
    commit_gen: Mutex<u64>,
    journal_cv: asterix_common::sync::Condvar,
}

impl MongoStore {
    /// Start the store; a journal thread group-commits on the configured
    /// interval.
    pub fn start(config: MongoConfig, clock: SimClock) -> std::sync::Arc<MongoStore> {
        let store = std::sync::Arc::new(MongoStore {
            config,
            clock,
            collections: Mutex::new(HashMap::new()),
            commit_gen: Mutex::new(0),
            journal_cv: asterix_common::sync::Condvar::new(),
        });
        let s = std::sync::Arc::clone(&store);
        sync_thread::spawn_named("mongo-journal", move || loop {
            s.clock.sleep(s.config.commit_interval);
            s.group_commit();
            // the store lives as long as anyone holds an Arc; when only
            // the journal thread remains, stop
            if std::sync::Arc::strong_count(&s) == 1 {
                break;
            }
        })
        .expect("spawn journal");
        store
    }

    /// Perform one journal group commit (also callable from tests).
    pub fn group_commit(&self) {
        {
            let mut cols = self.collections.lock();
            for c in cols.values_mut() {
                c.journaled += c.unjournaled;
                c.unjournaled = 0;
            }
        }
        let mut generation = self.commit_gen.lock();
        *generation += 1;
        self.journal_cv.notify_all();
    }

    fn spin(&self) {
        let mut acc = 0u64;
        for i in 0..self.config.per_op_spin {
            acc = acc.wrapping_add(i).rotate_left(1);
        }
        std::hint::black_box(acc);
    }

    /// Insert (upsert) a document. With [`WriteConcern::Durable`] the call
    /// blocks until the journal's next group commit.
    pub fn insert(
        &self,
        collection: &str,
        doc: &AdmValue,
        concern: WriteConcern,
    ) -> IngestResult<()> {
        self.spin();
        let id = doc
            .field(&self.config.id_field)
            .filter(|v| !matches!(v, AdmValue::Null | AdmValue::Missing))
            .map(asterix_adm::encode_value)
            .ok_or_else(|| {
                IngestError::soft(format!("document lacks '{}' field", self.config.id_field))
            })?;
        {
            let mut cols = self.collections.lock();
            let col = cols.entry(collection.to_string()).or_default();
            col.docs.insert(id, doc.clone());
            col.unjournaled += 1;
        }
        if concern == WriteConcern::Durable {
            // wait for the next group commit (j:true semantics)
            let mut generation = self.commit_gen.lock();
            let target = *generation + 1;
            while *generation < target {
                self.journal_cv.wait(&mut generation);
            }
        }
        Ok(())
    }

    /// Fetch a document by primary key value.
    pub fn find_by_id(&self, collection: &str, id: &AdmValue) -> Option<AdmValue> {
        let key = asterix_adm::encode_value(id);
        self.collections
            .lock()
            .get(collection)?
            .docs
            .get(&key)
            .cloned()
    }

    /// Number of documents in a collection.
    pub fn count(&self, collection: &str) -> usize {
        self.collections
            .lock()
            .get(collection)
            .map(|c| c.docs.len())
            .unwrap_or(0)
    }

    /// Writes journaled so far in a collection.
    pub fn journaled(&self, collection: &str) -> u64 {
        self.collections
            .lock()
            .get(collection)
            .map(|c| c.journaled)
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for MongoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MongoStore({} collections)",
            self.collections.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str) -> AdmValue {
        AdmValue::record(vec![("id", id.into()), ("x", AdmValue::Int(1))])
    }

    fn store() -> std::sync::Arc<MongoStore> {
        MongoStore::start(
            MongoConfig {
                per_op_spin: 0,
                commit_interval: SimDuration::from_millis(50),
                ..MongoConfig::default()
            },
            SimClock::with_scale(10.0),
        )
    }

    #[test]
    fn nondurable_insert_and_find() {
        let s = store();
        s.insert("tweets", &doc("a"), WriteConcern::NonDurable)
            .unwrap();
        s.insert("tweets", &doc("b"), WriteConcern::NonDurable)
            .unwrap();
        assert_eq!(s.count("tweets"), 2);
        let found = s.find_by_id("tweets", &"a".into()).unwrap();
        assert_eq!(found.field("x"), Some(&AdmValue::Int(1)));
        assert!(s.find_by_id("tweets", &"z".into()).is_none());
    }

    #[test]
    fn upsert_replaces() {
        let s = store();
        s.insert("t", &doc("a"), WriteConcern::NonDurable).unwrap();
        let mut d2 = doc("a");
        d2.set_field("x", AdmValue::Int(9));
        s.insert("t", &d2, WriteConcern::NonDurable).unwrap();
        assert_eq!(s.count("t"), 1);
        assert_eq!(
            s.find_by_id("t", &"a".into()).unwrap().field("x"),
            Some(&AdmValue::Int(9))
        );
    }

    #[test]
    fn missing_id_is_soft_error() {
        let s = store();
        let bad = AdmValue::record(vec![("x", AdmValue::Int(1))]);
        assert!(s
            .insert("t", &bad, WriteConcern::NonDurable)
            .unwrap_err()
            .is_soft());
    }

    #[test]
    fn durable_write_waits_for_group_commit() {
        let s = store();
        let t0 = std::time::Instant::now();
        s.insert("t", &doc("a"), WriteConcern::Durable).unwrap();
        // at scale 10 ms/sim-s, 50 sim-ms commit interval ≈ 0.5 real ms; the
        // point is that the call returned only after a commit happened
        assert!(s.journaled("t") >= 1, "journaled after durable insert");
        let _ = t0;
    }

    #[test]
    fn durable_is_slower_than_nondurable() {
        let s = MongoStore::start(
            MongoConfig {
                per_op_spin: 0,
                commit_interval: SimDuration::from_millis(200),
                ..MongoConfig::default()
            },
            SimClock::with_scale(100.0), // 200 sim-ms = 20 real ms per commit
        );
        let t0 = std::time::Instant::now();
        for i in 0..5 {
            s.insert("t", &doc(&format!("n{i}")), WriteConcern::NonDurable)
                .unwrap();
        }
        let nondurable = t0.elapsed();
        let t1 = std::time::Instant::now();
        for i in 0..5 {
            s.insert("t", &doc(&format!("d{i}")), WriteConcern::Durable)
                .unwrap();
        }
        let durable = t1.elapsed();
        assert!(
            durable > nondurable * 5,
            "durable {durable:?} vs nondurable {nondurable:?}"
        );
    }

    #[test]
    fn group_commit_journals_pending() {
        let s = store();
        s.insert("t", &doc("a"), WriteConcern::NonDurable).unwrap();
        s.group_commit();
        assert_eq!(s.journaled("t"), 1);
    }
}
