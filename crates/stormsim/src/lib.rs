#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The "glued-together" baseline of Chapter 7.5: a Storm-like data-routing
//! engine coupled with a MongoDB-like document store.
//!
//! "A popular choice made within the open-source community is to use Storm
//! as a streaming engine coupled with MongoDB as a data store" (Ch. 1). The
//! paper's §7.5 evaluation drives the same tweet workload through such a
//! glued assembly and measures instantaneous throughput under durable
//! (Fig 7.11) and non-durable (Fig 7.12) write concerns.
//!
//! This crate implements the structural properties that comparison hinges
//! on:
//!
//! * [`topology`] — a mini Storm: spouts and bolts wired into a chain, with
//!   Storm's at-least-once machinery (per-tuple message ids, acks, a
//!   `max.spout.pending` window, timeout replay);
//! * [`mongo`] — a mini MongoDB: collections of documents with an
//!   acknowledged in-memory write path (non-durable) and a journaled
//!   write path with group commit (durable);
//! * [`glue`] — the glue code an open-source user would write: a spout
//!   reading the tweet source, a parse/UDF bolt, and a store bolt issuing
//!   one client insert per tuple against the document store.

pub mod glue;
pub mod mongo;
pub mod topology;

pub use glue::{run_storm_mongo, StormMongoConfig, StormMongoReport};
pub use mongo::{MongoStore, WriteConcern};
pub use topology::{Bolt, BoltOutcome, Spout, Topology, TopologyConfig};
