//! Property tests for the compacted component codec: encode/decode
//! round-trips arbitrary open ADM records bit-exactly, agrees with the
//! uncompacted [`OpenBlock`] layout row for row, and the zero-copy field
//! decoder matches full-record field access.

use asterix_adm::compact::{CompactedBlock, OpenBlock};
use asterix_adm::schema::SchemaBuilder;
use asterix_adm::{decode_field_at, encode_value, AdmValue};
use proptest::prelude::*;

/// Arbitrary ADM values with finite doubles (NaN breaks `PartialEq`-based
/// bit-exactness assertions; the codec itself is bits-through).
fn adm_value() -> impl Strategy<Value = AdmValue> {
    let leaf = prop_oneof![
        Just(AdmValue::Null),
        Just(AdmValue::Missing),
        any::<bool>().prop_map(AdmValue::Boolean),
        any::<i64>().prop_map(AdmValue::Int),
        prop::num::f64::NORMAL.prop_map(AdmValue::Double),
        Just(AdmValue::Double(0.0)),
        "[a-zA-Z0-9 #@_]{0,16}".prop_map(AdmValue::String),
        (prop::num::f64::NORMAL, prop::num::f64::NORMAL).prop_map(|(x, y)| AdmValue::Point(x, y)),
        any::<i64>().prop_map(AdmValue::DateTime),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(AdmValue::OrderedList),
            prop::collection::vec(inner.clone(), 0..4).prop_map(AdmValue::UnorderedList),
            prop::collection::vec(("[a-f_]{1,4}", inner), 0..5).prop_map(|fields| {
                let mut seen = std::collections::HashSet::new();
                AdmValue::Record(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

/// Component rows: mostly records (drawn from a small field-name alphabet so
/// rows share a partial schema), with arbitrary values — including opaque
/// non-record rows — mixed in.
fn component_rows() -> impl Strategy<Value = Vec<AdmValue>> {
    prop::collection::vec(
        prop_oneof![
            4 => prop::collection::vec(("[a-f]{1,3}", adm_value()), 0..6).prop_map(|fields| {
                let mut seen = std::collections::HashSet::new();
                AdmValue::Record(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
            1 => adm_value(),
        ],
        0..32,
    )
}

fn compacted(rows: &[AdmValue], min_presence: f64) -> CompactedBlock {
    let mut b = SchemaBuilder::new();
    for r in rows {
        b.observe(r);
    }
    let schema = b.finish();
    let slots = schema.slot_fields(min_presence);
    let refs: Vec<&AdmValue> = rows.iter().collect();
    CompactedBlock::encode(&refs, &schema, &slots)
}

proptest! {
    #[test]
    fn compacted_round_trips_bit_exactly(rows in component_rows(), minp in 0u8..=10) {
        let block = compacted(&rows, f64::from(minp) / 10.0);
        prop_assert_eq!(block.records(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            let got = block.materialize(i);
            prop_assert_eq!(got.as_ref(), Some(row), "row {}", i);
        }
    }

    #[test]
    fn compacted_agrees_with_open_layout(rows in component_rows()) {
        let refs: Vec<&AdmValue> = rows.iter().collect();
        let open = OpenBlock::encode(&refs);
        let block = compacted(&rows, 0.5);
        prop_assert_eq!(open.records(), block.records());
        for i in 0..rows.len() {
            prop_assert_eq!(block.materialize(i), open.materialize(i), "row {}", i);
        }
    }

    #[test]
    fn field_access_matches_across_layouts(rows in component_rows()) {
        let refs: Vec<&AdmValue> = rows.iter().collect();
        let open = OpenBlock::encode(&refs);
        let block = compacted(&rows, 0.5);
        // every name observed anywhere, plus one certainly-absent name
        let mut names: Vec<String> = rows
            .iter()
            .filter_map(|r| match r {
                AdmValue::Record(fields) => {
                    Some(fields.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>())
                }
                _ => None,
            })
            .flatten()
            .collect();
        names.push("zz_absent".to_string());
        names.sort();
        names.dedup();
        for (i, row) in rows.iter().enumerate() {
            for name in &names {
                let want = match row {
                    AdmValue::Record(fields) => fields
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone()),
                    _ => None,
                };
                prop_assert_eq!(
                    block.field_value(i, name),
                    want.clone(),
                    "compacted row {} field {}",
                    i,
                    name
                );
                prop_assert_eq!(open.field_value(i, name), want, "open row {} field {}", i, name);
            }
        }
    }

    #[test]
    fn byte_image_reparses_identically(rows in component_rows()) {
        let block = compacted(&rows, 0.5);
        let reparsed = CompactedBlock::from_bytes(block.as_bytes().to_vec())
            .expect("own image must reparse");
        for (i, row) in rows.iter().enumerate() {
            let got = reparsed.materialize(i);
            prop_assert_eq!(got.as_ref(), Some(row), "row {}", i);
        }
        prop_assert_eq!(reparsed.schema(), block.schema());
    }

    #[test]
    fn from_bytes_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = CompactedBlock::from_bytes(bytes);
    }

    #[test]
    fn from_bytes_rejects_any_truncation(rows in component_rows()) {
        let block = compacted(&rows, 0.5);
        let bytes = block.as_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                CompactedBlock::from_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation at {} accepted",
                cut
            );
        }
    }

    #[test]
    fn decode_field_at_matches_record_field(v in adm_value()) {
        if let AdmValue::Record(fields) = &v {
            let bytes = encode_value(&v);
            for (name, _) in fields {
                prop_assert_eq!(
                    decode_field_at(&bytes, name).expect("valid record"),
                    v.field(name).cloned()
                );
            }
            prop_assert_eq!(decode_field_at(&bytes, "zz_absent").expect("valid record"), None);
        }
    }
}
