//! Property tests: the ADM printer and parser are mutual inverses, the
//! binary codec round-trips bit-exactly, the value hash respects equality,
//! and the total order is indeed total.

use asterix_adm::{decode_value, encode_value, parse_value, to_adm_string, AdmValue};
use proptest::prelude::*;

/// Strategy producing arbitrary ADM values with finite doubles.
fn adm_value() -> impl Strategy<Value = AdmValue> {
    let leaf = prop_oneof![
        Just(AdmValue::Null),
        Just(AdmValue::Missing),
        any::<bool>().prop_map(AdmValue::Boolean),
        any::<i64>().prop_map(AdmValue::Int),
        // finite doubles only: NaN/inf have no textual form
        prop::num::f64::NORMAL.prop_map(AdmValue::Double),
        Just(AdmValue::Double(0.0)),
        "[a-zA-Z0-9 #@_\\\\\"\n]{0,20}".prop_map(AdmValue::String),
        (prop::num::f64::NORMAL, prop::num::f64::NORMAL).prop_map(|(x, y)| AdmValue::Point(x, y)),
        any::<i64>().prop_map(AdmValue::DateTime),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(AdmValue::OrderedList),
            prop::collection::vec(inner.clone(), 0..6).prop_map(AdmValue::UnorderedList),
            prop::collection::vec(("[a-z_]{1,8}", inner), 0..6).prop_map(|fields| {
                // dedupe keys: records with duplicate fields are not canonical
                let mut seen = std::collections::HashSet::new();
                AdmValue::Record(
                    fields
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(v in adm_value()) {
        let text = to_adm_string(&v);
        let back = parse_value(&text)
            .unwrap_or_else(|e| panic!("failed to reparse `{text}`: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn equal_values_hash_equal(v in adm_value()) {
        let copy = v.clone();
        prop_assert_eq!(
            asterix_adm::hash::hash_value(&v),
            asterix_adm::hash::hash_value(&copy)
        );
    }

    #[test]
    fn total_cmp_is_reflexive_and_antisymmetric(a in adm_value(), b in adm_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse_value(&s);
    }

    #[test]
    fn binary_roundtrip(v in adm_value()) {
        let bytes = encode_value(&v);
        let back = decode_value(&bytes)
            .unwrap_or_else(|e| panic!("failed to decode {v:?}: {e}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn binary_and_text_roundtrips_agree(v in adm_value()) {
        // decoding the binary form and reparsing the text form must land on
        // the same value: the two codecs describe the same data model
        let via_binary = decode_value(&encode_value(&v)).unwrap();
        let via_text = parse_value(&to_adm_string(&v)).unwrap();
        prop_assert_eq!(via_binary, via_text);
    }

    #[test]
    fn binary_decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..128)
    ) {
        let _ = decode_value(&bytes);
    }

    #[test]
    fn binary_decoder_rejects_appended_garbage(v in adm_value(), junk in 1u8..=255) {
        // a valid encoding followed by any extra byte must be rejected whole
        let mut bytes = encode_value(&v);
        bytes.push(junk);
        prop_assert!(decode_value(&bytes).is_err());
    }
}
