//! Runtime ADM values.

use std::cmp::Ordering;
use std::fmt;

/// A runtime ADM value.
///
/// Records preserve field insertion order (AsterixDB serializes closed fields
/// in schema order and open fields in arrival order); lookup is linear, which
/// is fine for the small records flowing through feeds.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmValue {
    /// SQL-style null (`null`).
    Null,
    /// Absent optional value (`missing`).
    Missing,
    /// `boolean`.
    Boolean(bool),
    /// `int64` (the paper's int32 examples fit; we use one integer width).
    Int(i64),
    /// `double`.
    Double(f64),
    /// `string`.
    String(String),
    /// Spatial `point(x, y)` — longitude/latitude in the tweet examples.
    Point(f64, f64),
    /// Temporal `datetime`, milliseconds since the epoch.
    DateTime(i64),
    /// Ordered list `[ ... ]`.
    OrderedList(Vec<AdmValue>),
    /// Unordered list (bag) `{{ ... }}`.
    UnorderedList(Vec<AdmValue>),
    /// Record `{ "field": value, ... }` with insertion-ordered fields.
    Record(Vec<(String, AdmValue)>),
}

impl AdmValue {
    /// Shorthand record constructor.
    pub fn record(fields: Vec<(&str, AdmValue)>) -> AdmValue {
        AdmValue::Record(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Shorthand string constructor.
    pub fn string(s: impl Into<String>) -> AdmValue {
        AdmValue::String(s.into())
    }

    /// Field lookup on a record; `None` for non-records or absent fields.
    pub fn field(&self, name: &str) -> Option<&AdmValue> {
        match self {
            AdmValue::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable field lookup.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut AdmValue> {
        match self {
            AdmValue::Record(fields) => fields.iter_mut().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Set (insert or replace) a field on a record. Panics on non-records.
    pub fn set_field(&mut self, name: &str, value: AdmValue) {
        match self {
            AdmValue::Record(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == name) {
                    slot.1 = value;
                } else {
                    fields.push((name.to_string(), value));
                }
            }
            other => panic!("set_field on non-record value {other:?}"),
        }
    }

    /// Remove a field from a record; returns the removed value.
    pub fn remove_field(&mut self, name: &str) -> Option<AdmValue> {
        match self {
            AdmValue::Record(fields) => {
                let idx = fields.iter().position(|(k, _)| k == name)?;
                Some(fields.remove(idx).1)
            }
            _ => None,
        }
    }

    /// As string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AdmValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// As i64 if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AdmValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As f64 if numeric (`Int` or `Double`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AdmValue::Int(i) => Some(*i as f64),
            AdmValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// As bool if this is a `Boolean`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AdmValue::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// As `(x, y)` if this is a `Point`.
    pub fn as_point(&self) -> Option<(f64, f64)> {
        match self {
            AdmValue::Point(x, y) => Some((*x, *y)),
            _ => None,
        }
    }

    /// Items if this is any kind of list.
    pub fn as_list(&self) -> Option<&[AdmValue]> {
        match self {
            AdmValue::OrderedList(v) | AdmValue::UnorderedList(v) => Some(v),
            _ => None,
        }
    }

    /// Record fields if this is a record.
    pub fn as_record(&self) -> Option<&[(String, AdmValue)]> {
        match self {
            AdmValue::Record(fields) => Some(fields),
            _ => None,
        }
    }

    /// Name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AdmValue::Null => "null",
            AdmValue::Missing => "missing",
            AdmValue::Boolean(_) => "boolean",
            AdmValue::Int(_) => "int64",
            AdmValue::Double(_) => "double",
            AdmValue::String(_) => "string",
            AdmValue::Point(_, _) => "point",
            AdmValue::DateTime(_) => "datetime",
            AdmValue::OrderedList(_) => "orderedlist",
            AdmValue::UnorderedList(_) => "unorderedlist",
            AdmValue::Record(_) => "record",
        }
    }

    /// Total order over values, used for sorting and B+-tree keys.
    ///
    /// Values order first by a type rank, then within a type. NaN doubles
    /// order after all other doubles so the order stays total.
    pub fn total_cmp(&self, other: &AdmValue) -> Ordering {
        fn rank(v: &AdmValue) -> u8 {
            match v {
                AdmValue::Missing => 0,
                AdmValue::Null => 1,
                AdmValue::Boolean(_) => 2,
                AdmValue::Int(_) | AdmValue::Double(_) => 3,
                AdmValue::String(_) => 4,
                AdmValue::Point(_, _) => 5,
                AdmValue::DateTime(_) => 6,
                AdmValue::OrderedList(_) => 7,
                AdmValue::UnorderedList(_) => 8,
                AdmValue::Record(_) => 9,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (AdmValue::Boolean(a), AdmValue::Boolean(b)) => a.cmp(b),
            // numbers compare cross-width
            (a, b) if rank(a) == 3 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.total_cmp(&y)
            }
            (AdmValue::String(a), AdmValue::String(b)) => a.cmp(b),
            (AdmValue::Point(ax, ay), AdmValue::Point(bx, by)) => {
                ax.total_cmp(bx).then_with(|| ay.total_cmp(by))
            }
            (AdmValue::DateTime(a), AdmValue::DateTime(b)) => a.cmp(b),
            (AdmValue::OrderedList(a), AdmValue::OrderedList(b))
            | (AdmValue::UnorderedList(a), AdmValue::UnorderedList(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (AdmValue::Record(a), AdmValue::Record(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let c = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => Ordering::Equal,
        }
    }
}

impl fmt::Display for AdmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::print::to_adm_string(self))
    }
}

impl From<i64> for AdmValue {
    fn from(v: i64) -> Self {
        AdmValue::Int(v)
    }
}
impl From<f64> for AdmValue {
    fn from(v: f64) -> Self {
        AdmValue::Double(v)
    }
}
impl From<bool> for AdmValue {
    fn from(v: bool) -> Self {
        AdmValue::Boolean(v)
    }
}
impl From<&str> for AdmValue {
    fn from(v: &str) -> Self {
        AdmValue::String(v.to_string())
    }
}
impl From<String> for AdmValue {
    fn from(v: String) -> Self {
        AdmValue::String(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet() -> AdmValue {
        AdmValue::record(vec![
            ("id", "t1".into()),
            ("message_text", "hello #obama".into()),
            ("latitude", AdmValue::Double(33.1)),
        ])
    }

    #[test]
    fn field_access() {
        let t = tweet();
        assert_eq!(t.field("id").and_then(AdmValue::as_str), Some("t1"));
        assert!(t.field("nope").is_none());
        assert!(AdmValue::Int(3).field("x").is_none());
    }

    #[test]
    fn set_and_remove_field() {
        let mut t = tweet();
        t.set_field("sentiment", AdmValue::Double(0.7));
        assert_eq!(t.field("sentiment").and_then(AdmValue::as_f64), Some(0.7));
        t.set_field("sentiment", AdmValue::Double(0.9));
        assert_eq!(t.field("sentiment").and_then(AdmValue::as_f64), Some(0.9));
        assert_eq!(t.remove_field("sentiment"), Some(AdmValue::Double(0.9)));
        assert_eq!(t.remove_field("sentiment"), None);
    }

    #[test]
    #[should_panic(expected = "set_field on non-record")]
    fn set_field_on_scalar_panics() {
        let mut v = AdmValue::Int(1);
        v.set_field("x", AdmValue::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(AdmValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AdmValue::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(AdmValue::Boolean(true).as_bool(), Some(true));
        assert_eq!(AdmValue::Point(1.0, 2.0).as_point(), Some((1.0, 2.0)));
        assert_eq!(
            AdmValue::OrderedList(vec![AdmValue::Int(1)])
                .as_list()
                .map(|l| l.len()),
            Some(1)
        );
        assert!(AdmValue::Null.as_str().is_none());
    }

    #[test]
    fn type_names() {
        assert_eq!(AdmValue::Null.type_name(), "null");
        assert_eq!(AdmValue::Point(0.0, 0.0).type_name(), "point");
        assert_eq!(tweet().type_name(), "record");
    }

    #[test]
    fn total_order_is_total_and_cross_numeric() {
        assert_eq!(
            AdmValue::Int(2).total_cmp(&AdmValue::Double(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            AdmValue::Int(1).total_cmp(&AdmValue::Double(1.5)),
            Ordering::Less
        );
        assert_eq!(
            AdmValue::String("a".into()).total_cmp(&AdmValue::String("b".into())),
            Ordering::Less
        );
        // cross-type rank: numbers < strings
        assert_eq!(
            AdmValue::Int(999).total_cmp(&AdmValue::String("a".into())),
            Ordering::Less
        );
        // NaN does not break totality
        let nan = AdmValue::Double(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn list_and_record_order_lexicographic() {
        let a = AdmValue::OrderedList(vec![AdmValue::Int(1)]);
        let b = AdmValue::OrderedList(vec![AdmValue::Int(1), AdmValue::Int(2)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        let r1 = AdmValue::record(vec![("a", AdmValue::Int(1))]);
        let r2 = AdmValue::record(vec![("a", AdmValue::Int(2))]);
        assert_eq!(r1.total_cmp(&r2), Ordering::Less);
    }
}
