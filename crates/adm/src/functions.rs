//! Builtin scalar functions.
//!
//! The subset of AQL's builtin library that the paper's listings use:
//! `word-tokens`, `starts-with` (Listing 4.2), `create-point`,
//! `create-rectangle`, `spatial-intersect`, `spatial-cell` (Listing 3.3).
//! [`add_hash_tags`] is the paper's example AQL UDF in executable form.

use crate::value::AdmValue;
use asterix_common::{IngestError, IngestResult};

/// `word-tokens($s)` — split a string on non-alphanumeric boundaries,
/// keeping `#` and `@` prefixes attached to their word (Twitter jargon).
pub fn word_tokens(v: &AdmValue) -> IngestResult<AdmValue> {
    let s = v.as_str().ok_or_else(|| {
        IngestError::Type(format!("word-tokens expects string, got {}", v.type_name()))
    })?;
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() || c == '_' || ((c == '#' || c == '@') && current.is_empty()) {
            current.push(c);
        } else if !current.is_empty() {
            tokens.push(AdmValue::String(std::mem::take(&mut current)));
        }
    }
    if !current.is_empty() {
        tokens.push(AdmValue::String(current));
    }
    Ok(AdmValue::OrderedList(tokens))
}

/// `starts-with($s, $prefix)`.
pub fn starts_with(v: &AdmValue, prefix: &AdmValue) -> IngestResult<AdmValue> {
    match (v.as_str(), prefix.as_str()) {
        (Some(s), Some(p)) => Ok(AdmValue::Boolean(s.starts_with(p))),
        _ => Err(IngestError::Type("starts-with expects two strings".into())),
    }
}

/// `create-point($x, $y)`.
pub fn create_point(x: &AdmValue, y: &AdmValue) -> IngestResult<AdmValue> {
    match (x.as_f64(), y.as_f64()) {
        (Some(x), Some(y)) => Ok(AdmValue::Point(x, y)),
        _ => Err(IngestError::Type("create-point expects two numbers".into())),
    }
}

/// A rectangle represented as a record `{bl: point, tr: point}` (AQL's
/// rectangle type, modelled as a record here).
pub fn create_rectangle(bl: &AdmValue, tr: &AdmValue) -> IngestResult<AdmValue> {
    if bl.as_point().is_none() || tr.as_point().is_none() {
        return Err(IngestError::Type(
            "create-rectangle expects two points".into(),
        ));
    }
    Ok(AdmValue::Record(vec![
        ("bl".into(), bl.clone()),
        ("tr".into(), tr.clone()),
    ]))
}

/// `spatial-intersect($point, $rectangle)` — point-in-rectangle test.
pub fn spatial_intersect(point: &AdmValue, rect: &AdmValue) -> IngestResult<AdmValue> {
    let (px, py) = point.as_point().ok_or_else(|| {
        IngestError::Type(format!(
            "spatial-intersect expects a point, got {}",
            point.type_name()
        ))
    })?;
    let (bl, tr) = rectangle_corners(rect)?;
    Ok(AdmValue::Boolean(
        px >= bl.0 && px <= tr.0 && py >= bl.1 && py <= tr.1,
    ))
}

fn rectangle_corners(rect: &AdmValue) -> IngestResult<((f64, f64), (f64, f64))> {
    let bl = rect
        .field("bl")
        .and_then(AdmValue::as_point)
        .ok_or_else(|| IngestError::Type("rectangle missing bl point".into()))?;
    let tr = rect
        .field("tr")
        .and_then(AdmValue::as_point)
        .ok_or_else(|| IngestError::Type("rectangle missing tr point".into()))?;
    Ok((bl, tr))
}

/// `spatial-cell($point, $origin, $xInc, $yInc)` — the grid cell (as the
/// cell's origin point) containing `$point` (Listing 3.3's aggregation key).
pub fn spatial_cell(
    point: &AdmValue,
    origin: &AdmValue,
    x_inc: &AdmValue,
    y_inc: &AdmValue,
) -> IngestResult<AdmValue> {
    let (px, py) = point
        .as_point()
        .ok_or_else(|| IngestError::Type("spatial-cell expects a point".into()))?;
    let (ox, oy) = origin
        .as_point()
        .ok_or_else(|| IngestError::Type("spatial-cell expects an origin point".into()))?;
    let (xi, yi) = match (x_inc.as_f64(), y_inc.as_f64()) {
        (Some(a), Some(b)) if a > 0.0 && b > 0.0 => (a, b),
        _ => {
            return Err(IngestError::Type(
                "spatial-cell expects positive numeric increments".into(),
            ))
        }
    };
    let cx = ox + ((px - ox) / xi).floor() * xi;
    let cy = oy + ((py - oy) / yi).floor() * yi;
    Ok(AdmValue::Point(cx, cy))
}

/// The paper's Listing 4.2 AQL UDF: extract `#hashtags` from
/// `message_text` and append them as a `topics` ordered list.
pub fn add_hash_tags(tweet: &AdmValue) -> IngestResult<AdmValue> {
    let text = tweet
        .field("message_text")
        .ok_or_else(|| IngestError::soft("record has no message_text attribute"))?;
    let tokens = word_tokens(text).map_err(|e| IngestError::soft(e.to_string()))?;
    let hash_prefix = AdmValue::string("#");
    let mut topics = Vec::new();
    for tok in tokens.as_list().unwrap_or(&[]) {
        if let AdmValue::Boolean(true) = starts_with(tok, &hash_prefix)? {
            topics.push(tok.clone());
        }
    }
    let mut out = tweet.clone();
    out.set_field("topics", AdmValue::OrderedList(topics));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_splits_and_keeps_tags() {
        let toks = word_tokens(&"go #Obama, see @you today!".into()).unwrap();
        let toks: Vec<&str> = toks
            .as_list()
            .unwrap()
            .iter()
            .map(|t| t.as_str().unwrap())
            .collect();
        assert_eq!(toks, vec!["go", "#Obama", "see", "@you", "today"]);
    }

    #[test]
    fn word_tokens_empty_and_type_error() {
        assert_eq!(
            word_tokens(&"".into()).unwrap(),
            AdmValue::OrderedList(vec![])
        );
        assert!(word_tokens(&AdmValue::Int(1)).is_err());
    }

    #[test]
    fn starts_with_works() {
        assert_eq!(
            starts_with(&"#tag".into(), &"#".into()).unwrap(),
            AdmValue::Boolean(true)
        );
        assert_eq!(
            starts_with(&"tag".into(), &"#".into()).unwrap(),
            AdmValue::Boolean(false)
        );
        assert!(starts_with(&AdmValue::Null, &"#".into()).is_err());
    }

    #[test]
    fn point_and_rectangle() {
        let p = create_point(&AdmValue::Int(1), &AdmValue::Double(2.5)).unwrap();
        assert_eq!(p, AdmValue::Point(1.0, 2.5));
        let bl = AdmValue::Point(0.0, 0.0);
        let tr = AdmValue::Point(10.0, 10.0);
        let rect = create_rectangle(&bl, &tr).unwrap();
        assert_eq!(
            spatial_intersect(&AdmValue::Point(5.0, 5.0), &rect).unwrap(),
            AdmValue::Boolean(true)
        );
        assert_eq!(
            spatial_intersect(&AdmValue::Point(11.0, 5.0), &rect).unwrap(),
            AdmValue::Boolean(false)
        );
        assert!(create_rectangle(&AdmValue::Null, &tr).is_err());
        assert!(spatial_intersect(&AdmValue::Null, &rect).is_err());
    }

    #[test]
    fn spatial_cell_snaps_to_grid() {
        let origin = AdmValue::Point(33.13, -124.27);
        let cell = spatial_cell(
            &AdmValue::Point(34.0, -120.0),
            &origin,
            &AdmValue::Double(3.0),
            &AdmValue::Double(3.0),
        )
        .unwrap();
        let (cx, cy) = cell.as_point().unwrap();
        assert!((cx - 33.13).abs() < 1e-9);
        assert!((cy - (-121.27)).abs() < 1e-9);
        // negative increments rejected
        assert!(spatial_cell(
            &AdmValue::Point(0.0, 0.0),
            &origin,
            &AdmValue::Double(-1.0),
            &AdmValue::Double(1.0)
        )
        .is_err());
    }

    #[test]
    fn add_hash_tags_extracts_topics() {
        let tweet = AdmValue::record(vec![
            ("id", "t1".into()),
            ("message_text", "I like #Obama and #politics".into()),
        ]);
        let out = add_hash_tags(&tweet).unwrap();
        let topics = out.field("topics").unwrap().as_list().unwrap();
        assert_eq!(topics.len(), 2);
        assert_eq!(topics[0].as_str(), Some("#Obama"));
        assert_eq!(topics[1].as_str(), Some("#politics"));
        // original fields preserved
        assert_eq!(out.field("id").and_then(AdmValue::as_str), Some("t1"));
    }

    #[test]
    fn add_hash_tags_soft_fails_without_text() {
        let bad = AdmValue::record(vec![("id", "t1".into())]);
        let err = add_hash_tags(&bad).unwrap_err();
        assert!(err.is_soft());
    }

    #[test]
    fn add_hash_tags_soft_fails_on_non_string_text() {
        let bad = AdmValue::record(vec![("message_text", AdmValue::Int(3))]);
        let err = add_hash_tags(&bad).unwrap_err();
        assert!(err.is_soft(), "{err}");
    }
}
