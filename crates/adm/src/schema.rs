//! Single-pass schema inference over open ADM records.
//!
//! The LSM-based tuple-compaction approach infers a schema for each sealed
//! component from the records it actually holds, instead of trusting the
//! (open) declared type. This module is the inference half: feed every
//! record of a component through [`SchemaBuilder::observe`] and the
//! resulting [`InferredSchema`] reports, per field, how often it appeared
//! and where it sits on a small type lattice. The storage layer uses that
//! to pick *slot* fields (stable, dense — worth a column in the compacted
//! layout) and to decide when a component's schema churn is too high to
//! bother compacting at all.
//!
//! The lattice is deliberately shallow:
//!
//! ```text
//!          Mixed
//!         /  |  \
//!   Double  ...  (every other concrete type)
//!      |
//!     Int
//! ```
//!
//! `Int ⊔ Double = Double` (numeric widening, as in the tuple-compaction
//! paper); any other pair of distinct concrete types joins to `Mixed`.
//! `Null`/`Missing` occurrences mark a field nullable without disturbing
//! its concrete type. Schemas from different components can be merged with
//! [`InferredSchema::widen`], which unions fields and joins types — the
//! compactor uses it so merged components never *narrow* a slot that the
//! inputs agreed on.

use crate::value::AdmValue;
use std::collections::HashMap;

/// A concrete leaf position on the inference lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotType {
    /// `boolean`
    Boolean,
    /// `int64`
    Int,
    /// `double` (also the join of `Int ⊔ Double`)
    Double,
    /// `string`
    String,
    /// `point`
    Point,
    /// `datetime`
    DateTime,
    /// ordered list
    OrderedList,
    /// unordered list
    UnorderedList,
    /// nested record
    Record,
}

impl SlotType {
    /// Classify a value; `None` for `Null`/`Missing` (they carry no type).
    pub fn of(v: &AdmValue) -> Option<SlotType> {
        match v {
            AdmValue::Null | AdmValue::Missing => None,
            AdmValue::Boolean(_) => Some(SlotType::Boolean),
            AdmValue::Int(_) => Some(SlotType::Int),
            AdmValue::Double(_) => Some(SlotType::Double),
            AdmValue::String(_) => Some(SlotType::String),
            AdmValue::Point(_, _) => Some(SlotType::Point),
            AdmValue::DateTime(_) => Some(SlotType::DateTime),
            AdmValue::OrderedList(_) => Some(SlotType::OrderedList),
            AdmValue::UnorderedList(_) => Some(SlotType::UnorderedList),
            AdmValue::Record(_) => Some(SlotType::Record),
        }
    }
}

/// A field's position on the lattice after observing zero or more values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FieldType {
    /// No typed occurrence yet (only `Null`/`Missing`, or never seen).
    #[default]
    Empty,
    /// Every typed occurrence joined to one concrete type.
    Stable(SlotType),
    /// Occurrences with incompatible types — the lattice top.
    Mixed,
}

impl FieldType {
    /// Lattice join with one more observed concrete type.
    pub fn join(self, ty: SlotType) -> FieldType {
        match self {
            FieldType::Empty => FieldType::Stable(ty),
            FieldType::Stable(cur) if cur == ty => self,
            FieldType::Stable(SlotType::Int) if ty == SlotType::Double => {
                FieldType::Stable(SlotType::Double)
            }
            FieldType::Stable(SlotType::Double) if ty == SlotType::Int => {
                FieldType::Stable(SlotType::Double)
            }
            _ => FieldType::Mixed,
        }
    }

    /// Lattice join of two field positions (used by [`InferredSchema::widen`]).
    pub fn join_type(self, other: FieldType) -> FieldType {
        match (self, other) {
            (FieldType::Empty, t) | (t, FieldType::Empty) => t,
            (FieldType::Mixed, _) | (_, FieldType::Mixed) => FieldType::Mixed,
            (FieldType::Stable(a), FieldType::Stable(b)) => FieldType::Stable(a).join(b),
        }
    }
}

/// Field-name sequence of nested record values: tracked so the compacted
/// codec can elide nested field names when every occurrence agrees.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RecordShape {
    /// No record-valued occurrence observed.
    #[default]
    Unseen,
    /// Every record-valued occurrence had exactly this field-name sequence.
    Uniform(Vec<String>),
    /// Record-valued occurrences disagreed on their field sequence.
    Divergent,
}

impl RecordShape {
    fn observe(&mut self, fields: &[(String, AdmValue)]) {
        match self {
            RecordShape::Unseen => {
                *self = RecordShape::Uniform(fields.iter().map(|(n, _)| n.clone()).collect());
            }
            RecordShape::Uniform(names) => {
                let same = names.len() == fields.len()
                    && names.iter().zip(fields).all(|(n, (fname, _))| n == fname);
                if !same {
                    *self = RecordShape::Divergent;
                }
            }
            RecordShape::Divergent => {}
        }
    }

    fn widen(&self, other: &RecordShape) -> RecordShape {
        match (self, other) {
            (RecordShape::Unseen, s) | (s, RecordShape::Unseen) => s.clone(),
            (RecordShape::Uniform(a), RecordShape::Uniform(b)) if a == b => {
                RecordShape::Uniform(a.clone())
            }
            _ => RecordShape::Divergent,
        }
    }
}

/// Per-field statistics accumulated by the inferencer.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldStats {
    /// Field name (top-level; nested names live in [`RecordShape`]).
    pub name: String,
    /// Records in which the field appeared (first occurrence per record).
    pub present: u64,
    /// Occurrences whose value was `Null` or `Missing`.
    pub nulls: u64,
    /// Lattice position joined over all typed occurrences.
    pub ty: FieldType,
    /// Nested-record field-name uniformity, for name elision.
    pub shape: RecordShape,
}

impl FieldStats {
    fn new(name: &str) -> FieldStats {
        FieldStats {
            name: name.to_string(),
            present: 0,
            nulls: 0,
            ty: FieldType::Empty,
            shape: RecordShape::Unseen,
        }
    }
}

/// The result of one inference pass: field stats in first-seen order plus
/// component-level counts used for the churn/fallback decision.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InferredSchema {
    /// Per-field stats, ordered by first appearance across the component.
    pub fields: Vec<FieldStats>,
    /// Records observed (including non-record values, see `opaque_rows`).
    pub records: u64,
    /// Observed values that were not records at all.
    pub opaque_rows: u64,
    /// Total field occurrences, duplicates included, plus one per opaque row.
    pub total_items: u64,
}

impl InferredSchema {
    /// Fields dense enough (and type-stable enough) to earn a column slot:
    /// present in at least `min_presence` of records and not `Mixed`.
    pub fn slot_fields(&self, min_presence: f64) -> Vec<String> {
        if self.records == 0 {
            return Vec::new();
        }
        let floor = min_presence * self.records as f64;
        self.fields
            .iter()
            .filter(|f| f.present as f64 >= floor && f.ty != FieldType::Mixed && f.present > 0)
            .map(|f| f.name.clone())
            .collect()
    }

    /// Fraction of field occurrences that would land in the residual
    /// section given `slots` — the schema-churn signal. `1.0` means nothing
    /// conforms (e.g. all rows opaque), `0.0` means every occurrence has a
    /// slot.
    pub fn churn(&self, slots: &[String]) -> f64 {
        if self.total_items == 0 {
            return 0.0;
        }
        let conforming: u64 = self
            .fields
            .iter()
            .filter(|f| slots.iter().any(|s| s == &f.name))
            .map(|f| f.present)
            .sum();
        1.0 - conforming as f64 / self.total_items as f64
    }

    /// Widen this schema with another: union of fields (this schema's order
    /// first), summed counts, lattice-joined types. Used when merging
    /// compacted components so the merged schema never narrows.
    pub fn widen(&self, other: &InferredSchema) -> InferredSchema {
        let mut fields = self.fields.clone();
        for of in &other.fields {
            if let Some(f) = fields.iter_mut().find(|f| f.name == of.name) {
                f.present += of.present;
                f.nulls += of.nulls;
                f.ty = f.ty.join_type(of.ty);
                f.shape = f.shape.widen(&of.shape);
            } else {
                fields.push(of.clone());
            }
        }
        InferredSchema {
            fields,
            records: self.records + other.records,
            opaque_rows: self.opaque_rows + other.opaque_rows,
            total_items: self.total_items + other.total_items,
        }
    }
}

/// Streaming schema inferencer: one [`observe`](SchemaBuilder::observe) call
/// per record of a component, then [`finish`](SchemaBuilder::finish).
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    fields: Vec<FieldStats>,
    index: HashMap<String, usize>,
    records: u64,
    opaque_rows: u64,
    total_items: u64,
}

impl SchemaBuilder {
    /// Fresh builder with no observations.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Fold one record into the running schema. Non-record values are
    /// counted as opaque (they always fall back to the residual section).
    pub fn observe(&mut self, v: &AdmValue) {
        self.records += 1;
        let fields = match v {
            AdmValue::Record(fields) => fields,
            _ => {
                self.opaque_rows += 1;
                self.total_items += 1;
                return;
            }
        };
        self.total_items += fields.len() as u64;
        // Duplicate field names inside one record: only the first occurrence
        // updates stats (it is the one `field()` resolves and the one the
        // compacted layout slots); later duplicates are residual by fiat.
        let mut seen_this_row: Vec<usize> = Vec::with_capacity(fields.len());
        for (name, value) in fields {
            let idx = match self.index.get(name) {
                Some(&i) => i,
                None => {
                    let i = self.fields.len();
                    self.fields.push(FieldStats::new(name));
                    self.index.insert(name.clone(), i);
                    i
                }
            };
            if seen_this_row.contains(&idx) {
                continue;
            }
            seen_this_row.push(idx);
            let f = &mut self.fields[idx];
            f.present += 1;
            match SlotType::of(value) {
                None => f.nulls += 1,
                Some(ty) => {
                    f.ty = f.ty.join(ty);
                    if let AdmValue::Record(sub) = value {
                        f.shape.observe(sub);
                    }
                }
            }
        }
    }

    /// Seal the pass into an [`InferredSchema`].
    pub fn finish(self) -> InferredSchema {
        InferredSchema {
            fields: self.fields,
            records: self.records,
            opaque_rows: self.opaque_rows,
            total_items: self.total_items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: Vec<(&str, AdmValue)>) -> AdmValue {
        AdmValue::Record(
            fields
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        )
    }

    fn infer(rows: &[AdmValue]) -> InferredSchema {
        let mut b = SchemaBuilder::new();
        for r in rows {
            b.observe(r);
        }
        b.finish()
    }

    #[test]
    fn int_widens_to_double_but_string_goes_mixed() {
        let s = infer(&[
            rec(vec![("n", AdmValue::Int(1)), ("m", AdmValue::Int(1))]),
            rec(vec![("n", AdmValue::Double(2.5)), ("m", AdmValue::Int(2))]),
            rec(vec![("n", AdmValue::Int(3)), ("m", "x".into())]),
        ]);
        assert_eq!(s.fields[0].ty, FieldType::Stable(SlotType::Double));
        assert_eq!(s.fields[1].ty, FieldType::Mixed);
    }

    #[test]
    fn nulls_mark_nullable_without_disturbing_type() {
        let s = infer(&[
            rec(vec![("a", AdmValue::Int(1))]),
            rec(vec![("a", AdmValue::Null)]),
            rec(vec![("a", AdmValue::Int(2))]),
        ]);
        assert_eq!(s.fields[0].ty, FieldType::Stable(SlotType::Int));
        assert_eq!(s.fields[0].nulls, 1);
        assert_eq!(s.fields[0].present, 3);
    }

    #[test]
    fn slot_fields_respect_presence_threshold_and_mixed() {
        let mut rows: Vec<AdmValue> = (0..10)
            .map(|i| rec(vec![("id", AdmValue::Int(i)), ("txt", "hello".into())]))
            .collect();
        rows[3].set_field("rare", AdmValue::Int(9));
        rows[4].set_field("flip", AdmValue::Int(0));
        rows[5].set_field("flip", "no".into());
        let s = infer(&rows);
        let slots = s.slot_fields(0.5);
        assert_eq!(slots, vec!["id".to_string(), "txt".to_string()]);
        // churn: 2 occurrences of `flip` + 1 of `rare` out of 23 items
        let churn = s.churn(&slots);
        assert!((churn - 3.0 / 23.0).abs() < 1e-9, "churn {churn}");
    }

    #[test]
    fn opaque_rows_drive_churn_to_one() {
        let s = infer(&["a".into(), "b".into()]);
        assert_eq!(s.opaque_rows, 2);
        assert_eq!(s.churn(&s.slot_fields(0.5)), 1.0);
    }

    #[test]
    fn uniform_nested_shape_survives_until_divergence() {
        let user = |n: &str| rec(vec![("name", n.into()), ("lang", "en".into())]);
        let mut rows = vec![rec(vec![("u", user("a"))]), rec(vec![("u", user("b"))])];
        let s = infer(&rows);
        assert_eq!(
            s.fields[0].shape,
            RecordShape::Uniform(vec!["name".into(), "lang".into()])
        );
        rows.push(rec(vec![("u", rec(vec![("name", "c".into())]))]));
        let s = infer(&rows);
        assert_eq!(s.fields[0].shape, RecordShape::Divergent);
    }

    #[test]
    fn widen_unions_fields_and_joins_types() {
        let a = infer(&[rec(vec![("x", AdmValue::Int(1)), ("y", "s".into())])]);
        let b = infer(&[rec(vec![
            ("x", AdmValue::Double(0.5)),
            ("z", AdmValue::Boolean(true)),
        ])]);
        let w = a.widen(&b);
        let names: Vec<&str> = w.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        assert_eq!(w.fields[0].ty, FieldType::Stable(SlotType::Double));
        assert_eq!(w.fields[0].present, 2);
        assert_eq!(w.records, 2);
    }

    #[test]
    fn duplicate_field_names_count_once_for_stats_but_all_for_items() {
        let v = AdmValue::Record(vec![
            ("a".into(), AdmValue::Int(1)),
            ("a".into(), "two".into()),
        ]);
        let s = infer(&[v]);
        assert_eq!(s.fields[0].present, 1);
        assert_eq!(s.fields[0].ty, FieldType::Stable(SlotType::Int));
        assert_eq!(s.total_items, 2);
    }
}
