//! ADM datatypes and conformance checking.
//!
//! Mirrors the paper's Listing 3.1: `create type Tweet as open { ... }` with
//! optional fields (`latitude: double?`) and nested record/list types. A
//! dataset's records must *conform* to its datatype; open record types allow
//! extra fields, closed ones do not.

use crate::value::AdmValue;
use asterix_common::sync::{read_or_recover, write_or_recover};
use asterix_common::{IngestError, IngestResult};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A field of a record type.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: AdmType,
    /// Declared with `?` — value may be `missing`/absent or `null`.
    pub optional: bool,
}

impl Field {
    /// Required field.
    pub fn required(name: impl Into<String>, ty: AdmType) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: false,
        }
    }

    /// Optional (`?`) field.
    pub fn optional(name: impl Into<String>, ty: AdmType) -> Self {
        Field {
            name: name.into(),
            ty,
            optional: true,
        }
    }
}

/// A named record type.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordType {
    /// Type name as registered in the metadata.
    pub name: String,
    /// Declared fields, in schema order.
    pub fields: Vec<Field>,
    /// Open types admit undeclared extra fields.
    pub open: bool,
}

impl RecordType {
    /// Look up a declared field.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// An ADM datatype.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmType {
    /// Any value conforms.
    Any,
    /// `boolean`.
    Boolean,
    /// `int32`/`int64` (single integer width in this reproduction).
    Int,
    /// `double`.
    Double,
    /// `string`.
    String,
    /// `point`.
    Point,
    /// `datetime`.
    DateTime,
    /// `[T]`.
    OrderedList(Box<AdmType>),
    /// `{{T}}`.
    UnorderedList(Box<AdmType>),
    /// Inline or named record type.
    Record(Arc<RecordType>),
    /// Reference to a named type resolved through a [`TypeRegistry`].
    Named(String),
}

impl fmt::Display for AdmType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmType::Any => write!(f, "any"),
            AdmType::Boolean => write!(f, "boolean"),
            AdmType::Int => write!(f, "int64"),
            AdmType::Double => write!(f, "double"),
            AdmType::String => write!(f, "string"),
            AdmType::Point => write!(f, "point"),
            AdmType::DateTime => write!(f, "datetime"),
            AdmType::OrderedList(t) => write!(f, "[{t}]"),
            AdmType::UnorderedList(t) => write!(f, "{{{{{t}}}}}"),
            AdmType::Record(r) => write!(f, "{}", r.name),
            AdmType::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Registry of named types (the Datatype metadata dataset). Internally
/// synchronized so `create type` works on a shared registry at runtime.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    types: RwLock<HashMap<String, Arc<RecordType>>>,
}

impl TypeRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Register a record type under its name. Re-registration replaces.
    pub fn register(&self, ty: RecordType) -> Arc<RecordType> {
        let arc = Arc::new(ty);
        write_or_recover(&self.types).insert(arc.name.clone(), Arc::clone(&arc));
        arc
    }

    /// Look up a record type by name.
    pub fn get(&self, name: &str) -> Option<Arc<RecordType>> {
        read_or_recover(&self.types).get(name).cloned()
    }

    /// Names of all registered types.
    pub fn type_names(&self) -> Vec<String> {
        read_or_recover(&self.types).keys().cloned().collect()
    }

    /// Resolve a possibly-`Named` type to a concrete one.
    pub fn resolve(&self, ty: &AdmType) -> IngestResult<AdmType> {
        match ty {
            AdmType::Named(n) => self
                .get(n)
                .map(AdmType::Record)
                .ok_or_else(|| IngestError::Metadata(format!("unknown type {n}"))),
            other => Ok(other.clone()),
        }
    }

    /// Check that `value` conforms to `ty`, resolving named types.
    pub fn check(&self, value: &AdmValue, ty: &AdmType) -> IngestResult<()> {
        let ty = self.resolve(ty)?;
        conforms(self, value, &ty)
    }
}

fn type_err(expected: &AdmType, got: &AdmValue) -> IngestError {
    IngestError::Type(format!(
        "expected {expected}, got {} ({got})",
        got.type_name()
    ))
}

/// Core conformance relation.
fn conforms(reg: &TypeRegistry, value: &AdmValue, ty: &AdmType) -> IngestResult<()> {
    match (ty, value) {
        (AdmType::Any, _) => Ok(()),
        (AdmType::Boolean, AdmValue::Boolean(_)) => Ok(()),
        (AdmType::Int, AdmValue::Int(_)) => Ok(()),
        // ints are acceptable where doubles are expected (numeric promotion)
        (AdmType::Double, AdmValue::Double(_) | AdmValue::Int(_)) => Ok(()),
        (AdmType::String, AdmValue::String(_)) => Ok(()),
        (AdmType::Point, AdmValue::Point(_, _)) => Ok(()),
        (AdmType::DateTime, AdmValue::DateTime(_)) => Ok(()),
        (AdmType::OrderedList(elem), AdmValue::OrderedList(items)) => {
            for item in items {
                reg.check(item, elem)?;
            }
            Ok(())
        }
        (AdmType::UnorderedList(elem), AdmValue::UnorderedList(items)) => {
            for item in items {
                reg.check(item, elem)?;
            }
            Ok(())
        }
        (AdmType::Record(rt), AdmValue::Record(fields)) => {
            // every declared required field must be present & conforming
            for decl in &rt.fields {
                match fields.iter().find(|(k, _)| *k == decl.name) {
                    Some((_, v)) => {
                        if matches!(v, AdmValue::Null | AdmValue::Missing) {
                            if !decl.optional {
                                return Err(IngestError::Type(format!(
                                    "required field '{}' of {} is {}",
                                    decl.name,
                                    rt.name,
                                    v.type_name()
                                )));
                            }
                        } else {
                            reg.check(v, &decl.ty).map_err(|e| {
                                IngestError::Type(format!(
                                    "field '{}' of {}: {e}",
                                    decl.name, rt.name
                                ))
                            })?;
                        }
                    }
                    None if decl.optional => {}
                    None => {
                        return Err(IngestError::Type(format!(
                            "missing required field '{}' of {}",
                            decl.name, rt.name
                        )))
                    }
                }
            }
            // closed types reject undeclared fields
            if !rt.open {
                for (k, _) in fields {
                    if rt.field(k).is_none() {
                        return Err(IngestError::Type(format!(
                            "closed type {} does not allow field '{k}'",
                            rt.name
                        )));
                    }
                }
            }
            Ok(())
        }
        (AdmType::Named(_), _) => reg.check(value, ty),
        (expected, got) => Err(type_err(expected, got)),
    }
}

/// The paper's `Tweet` open type (Listing 3.1), used across tests and
/// examples.
pub fn tweet_type() -> RecordType {
    RecordType {
        name: "Tweet".into(),
        open: true,
        fields: vec![
            Field::required("id", AdmType::String),
            Field::required("user", AdmType::Named("TwitterUser".into())),
            Field::optional("latitude", AdmType::Double),
            Field::optional("longitude", AdmType::Double),
            Field::required("created_at", AdmType::String),
            Field::required("message_text", AdmType::String),
            Field::optional("country", AdmType::String),
        ],
    }
}

/// The paper's `TwitterUser` open type (Listing 3.1).
pub fn twitter_user_type() -> RecordType {
    RecordType {
        name: "TwitterUser".into(),
        open: true,
        fields: vec![
            Field::required("screen_name", AdmType::String),
            Field::required("lang", AdmType::String),
            Field::required("friends_count", AdmType::Int),
            Field::required("statuses_count", AdmType::Int),
            Field::required("name", AdmType::String),
            Field::required("followers_count", AdmType::Int),
        ],
    }
}

/// The paper's `ProcessedTweet` open type (Listing 3.1).
pub fn processed_tweet_type() -> RecordType {
    RecordType {
        name: "ProcessedTweet".into(),
        open: true,
        fields: vec![
            Field::required("id", AdmType::String),
            Field::required("user_name", AdmType::String),
            Field::optional("location", AdmType::Point),
            Field::required("created_at", AdmType::DateTime),
            Field::required("message_text", AdmType::String),
            Field::optional("country", AdmType::String),
            Field::required("topics", AdmType::OrderedList(Box::new(AdmType::String))),
            Field::required("sentiment", AdmType::Double),
        ],
    }
}

/// A registry pre-loaded with the paper's example types.
pub fn paper_registry() -> TypeRegistry {
    let reg = TypeRegistry::new();
    reg.register(twitter_user_type());
    reg.register(tweet_type());
    reg.register(processed_tweet_type());
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user() -> AdmValue {
        AdmValue::record(vec![
            ("screen_name", "rg".into()),
            ("lang", "en".into()),
            ("friends_count", AdmValue::Int(10)),
            ("statuses_count", AdmValue::Int(5)),
            ("name", "Raman".into()),
            ("followers_count", AdmValue::Int(3)),
        ])
    }

    fn tweet() -> AdmValue {
        AdmValue::record(vec![
            ("id", "t1".into()),
            ("user", user()),
            ("latitude", AdmValue::Double(33.6)),
            ("longitude", AdmValue::Double(-117.8)),
            ("created_at", "2015-01-01".into()),
            ("message_text", "hi #asterixdb".into()),
        ])
    }

    #[test]
    fn tweet_conforms() {
        let reg = paper_registry();
        reg.check(&tweet(), &AdmType::Named("Tweet".into()))
            .unwrap();
    }

    #[test]
    fn optional_fields_may_be_absent_or_null() {
        let reg = paper_registry();
        let mut t = tweet();
        t.remove_field("latitude");
        t.set_field("country", AdmValue::Null);
        reg.check(&t, &AdmType::Named("Tweet".into())).unwrap();
    }

    #[test]
    fn missing_required_field_fails() {
        let reg = paper_registry();
        let mut t = tweet();
        t.remove_field("message_text");
        let err = reg.check(&t, &AdmType::Named("Tweet".into())).unwrap_err();
        assert!(err.to_string().contains("message_text"), "{err}");
    }

    #[test]
    fn null_required_field_fails() {
        let reg = paper_registry();
        let mut t = tweet();
        t.set_field("id", AdmValue::Null);
        assert!(reg.check(&t, &AdmType::Named("Tweet".into())).is_err());
    }

    #[test]
    fn open_type_allows_extra_fields() {
        let reg = paper_registry();
        let mut t = tweet();
        t.set_field("extra", AdmValue::Int(1));
        reg.check(&t, &AdmType::Named("Tweet".into())).unwrap();
    }

    #[test]
    fn closed_type_rejects_extra_fields() {
        let reg = TypeRegistry::new();
        reg.register(RecordType {
            name: "Pair".into(),
            open: false,
            fields: vec![
                Field::required("a", AdmType::Int),
                Field::required("b", AdmType::Int),
            ],
        });
        let ok = AdmValue::record(vec![("a", AdmValue::Int(1)), ("b", AdmValue::Int(2))]);
        reg.check(&ok, &AdmType::Named("Pair".into())).unwrap();
        let mut bad = ok.clone();
        bad.set_field("c", AdmValue::Int(3));
        assert!(reg.check(&bad, &AdmType::Named("Pair".into())).is_err());
    }

    #[test]
    fn wrong_field_type_fails_with_context() {
        let reg = paper_registry();
        let mut t = tweet();
        t.set_field("latitude", "north".into());
        let err = reg.check(&t, &AdmType::Named("Tweet".into())).unwrap_err();
        assert!(err.to_string().contains("latitude"), "{err}");
    }

    #[test]
    fn int_promotes_to_double() {
        let reg = TypeRegistry::new();
        reg.check(&AdmValue::Int(3), &AdmType::Double).unwrap();
    }

    #[test]
    fn lists_check_elements() {
        let reg = TypeRegistry::new();
        let ty = AdmType::OrderedList(Box::new(AdmType::String));
        reg.check(&AdmValue::OrderedList(vec!["a".into(), "b".into()]), &ty)
            .unwrap();
        assert!(reg
            .check(&AdmValue::OrderedList(vec![AdmValue::Int(1)]), &ty)
            .is_err());
        // ordered value does not satisfy unordered type
        let bag_ty = AdmType::UnorderedList(Box::new(AdmType::String));
        assert!(reg
            .check(&AdmValue::OrderedList(vec!["a".into()]), &bag_ty)
            .is_err());
    }

    #[test]
    fn unknown_named_type_errors() {
        let reg = TypeRegistry::new();
        let err = reg
            .check(&AdmValue::Int(1), &AdmType::Named("Nope".into()))
            .unwrap_err();
        assert!(matches!(err, IngestError::Metadata(_)));
    }

    #[test]
    fn any_accepts_everything() {
        let reg = TypeRegistry::new();
        for v in [
            AdmValue::Null,
            AdmValue::Int(1),
            AdmValue::Point(0.0, 0.0),
            AdmValue::record(vec![]),
        ] {
            reg.check(&v, &AdmType::Any).unwrap();
        }
    }

    #[test]
    fn display_types() {
        assert_eq!(
            AdmType::OrderedList(Box::new(AdmType::String)).to_string(),
            "[string]"
        );
        assert_eq!(AdmType::Named("Tweet".into()).to_string(), "Tweet");
    }
}
