//! Compacted (columnar-ish) block layout for sealed LSM components.
//!
//! A sealed component holds a batch of open ADM records. Storing each one
//! fully self-describing repeats every field name and type tag per record —
//! the "schema tax" the LSM-based tuple-compaction approach removes. This
//! module is the storage half of that idea: given the rows of a component
//! and the slot fields chosen from an [`InferredSchema`](crate::schema),
//! [`CompactedBlock::encode`] lays the component out as
//!
//! * a **schema header** — slot field names, per-field encoding and lattice
//!   stats, written once per component instead of once per record;
//! * one **column** per slot field — values stored contiguously so a
//!   single-field scan touches one stride of bytes;
//! * a sparse **residual section** — fields outside the schema (and whole
//!   non-record values), binary-encoded with the ordinary
//!   [`binary`](crate::binary) codec;
//! * a **shape section** — per-record field order for the rare records whose
//!   field order deviates from canonical (slots in schema order, then
//!   residual fields), so `materialize(row)` rebuilds every record
//!   **bit-exactly**, duplicates and field order included.
//!
//! Column encodings, picked per field from what the rows actually contain:
//!
//! | enc | name      | layout per row                                      |
//! |-----|-----------|-----------------------------------------------------|
//! | 0   | tagged    | offsets + binary-codec value; empty span = absent   |
//! | 1   | int64     | 8 bytes LE (present in all rows, uniform type)      |
//! | 2   | double    | 8 bytes LE bits                                     |
//! | 3   | datetime  | 8 bytes LE                                          |
//! | 4   | boolean   | 1 byte                                              |
//! | 5   | point     | 16 bytes LE                                         |
//! | 6   | string    | offsets + raw UTF-8 (no tag, no length prefix)      |
//! | 7   | record    | offsets + concatenated binary subvalues; the nested |
//! |     |           | field-name sequence is hoisted into the header      |
//!
//! Encoding 7 is what pays for tweets: the nested `user` record's six field
//! names are written once per component instead of once per record.
//!
//! The corresponding *uncompacted* layout is [`OpenBlock`]: one
//! binary-codec record per row behind an offset table. Components whose
//! schema churn defeats inference fall back to it wholesale.

use crate::binary::{self, decode_field_at, decode_prefix, decode_value, encode_value};
use crate::schema::{FieldType, InferredSchema, RecordShape, SlotType};
use crate::value::AdmValue;
use asterix_common::{IngestError, IngestResult};
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"ACB1";
/// High bit of a shape item: set = residual-field ordinal, clear = slot index.
const RESIDUAL_BIT: u32 = 0x8000_0000;

const ENC_TAGGED: u8 = 0;
const ENC_INT: u8 = 1;
const ENC_DOUBLE: u8 = 2;
const ENC_DATETIME: u8 = 3;
const ENC_BOOL: u8 = 4;
const ENC_POINT: u8 = 5;
const ENC_STR: u8 = 6;
const ENC_RECORD: u8 = 7;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Encoding {
    Tagged,
    FixedInt,
    FixedDouble,
    FixedDateTime,
    FixedBool,
    FixedPoint,
    Str,
    RecFixed(Vec<String>),
}

impl Encoding {
    fn tag(&self) -> u8 {
        match self {
            Encoding::Tagged => ENC_TAGGED,
            Encoding::FixedInt => ENC_INT,
            Encoding::FixedDouble => ENC_DOUBLE,
            Encoding::FixedDateTime => ENC_DATETIME,
            Encoding::FixedBool => ENC_BOOL,
            Encoding::FixedPoint => ENC_POINT,
            Encoding::Str => ENC_STR,
            Encoding::RecFixed(_) => ENC_RECORD,
        }
    }

    /// Fixed row width, or `None` for the offset-delimited encodings.
    fn width(&self) -> Option<usize> {
        match self {
            Encoding::FixedInt | Encoding::FixedDouble | Encoding::FixedDateTime => Some(8),
            Encoding::FixedBool => Some(1),
            Encoding::FixedPoint => Some(16),
            _ => None,
        }
    }
}

fn field_of<'a>(row: &'a AdmValue, name: &str) -> Option<&'a AdmValue> {
    match row {
        AdmValue::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
        _ => None,
    }
}

/// Pick the tightest encoding the rows allow for one slot field. Fixed and
/// string/record encodings require the field present in *every* row with an
/// exactly uniform value type — the encoder checks values, not the lattice,
/// so `Int` widened to `Double` in the schema still round-trips bit-exactly
/// (such a column stays tagged).
fn plan_for(rows: &[&AdmValue], name: &str) -> Encoding {
    let mut plan: Option<Encoding> = None;
    for row in rows {
        let v = match field_of(row, name) {
            Some(v) => v,
            None => return Encoding::Tagged,
        };
        let candidate = match v {
            AdmValue::Int(_) => Encoding::FixedInt,
            AdmValue::Double(_) => Encoding::FixedDouble,
            AdmValue::DateTime(_) => Encoding::FixedDateTime,
            AdmValue::Boolean(_) => Encoding::FixedBool,
            AdmValue::Point(_, _) => Encoding::FixedPoint,
            AdmValue::String(_) => Encoding::Str,
            AdmValue::Record(sub) => {
                Encoding::RecFixed(sub.iter().map(|(n, _)| n.clone()).collect())
            }
            _ => return Encoding::Tagged,
        };
        match &plan {
            None => plan = Some(candidate),
            Some(p) if *p == candidate => {}
            _ => return Encoding::Tagged,
        }
    }
    plan.unwrap_or(Encoding::Tagged)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn ty_byte(ty: FieldType) -> u8 {
    match ty {
        FieldType::Stable(SlotType::Boolean) => 0,
        FieldType::Stable(SlotType::Int) => 1,
        FieldType::Stable(SlotType::Double) => 2,
        FieldType::Stable(SlotType::String) => 3,
        FieldType::Stable(SlotType::Point) => 4,
        FieldType::Stable(SlotType::DateTime) => 5,
        FieldType::Stable(SlotType::OrderedList) => 6,
        FieldType::Stable(SlotType::UnorderedList) => 7,
        FieldType::Stable(SlotType::Record) => 8,
        FieldType::Mixed => 9,
        FieldType::Empty => 10,
    }
}

fn ty_from_byte(b: u8) -> IngestResult<FieldType> {
    Ok(match b {
        0 => FieldType::Stable(SlotType::Boolean),
        1 => FieldType::Stable(SlotType::Int),
        2 => FieldType::Stable(SlotType::Double),
        3 => FieldType::Stable(SlotType::String),
        4 => FieldType::Stable(SlotType::Point),
        5 => FieldType::Stable(SlotType::DateTime),
        6 => FieldType::Stable(SlotType::OrderedList),
        7 => FieldType::Stable(SlotType::UnorderedList),
        8 => FieldType::Stable(SlotType::Record),
        9 => FieldType::Mixed,
        10 => FieldType::Empty,
        other => {
            return Err(IngestError::Parse(format!(
                "compacted block: unknown field type byte {other}"
            )))
        }
    })
}

#[derive(Debug, Clone)]
struct FieldMeta {
    name: String,
    encoding: Encoding,
    ty: FieldType,
    present: u64,
    nulls: u64,
    /// Var-width columns: byte position of the `(records + 1)` offset words.
    offsets_pos: usize,
    data_pos: usize,
    data_len: usize,
}

#[derive(Debug, Clone)]
struct ResidualMeta {
    row: u32,
    /// `true`: payload is the whole (non-record) row value; `false`: payload
    /// is a record of the row's leftover (non-slot) fields in row order.
    whole: bool,
    start: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct ShapeMeta {
    row: u32,
    items: Vec<u32>,
}

/// A component encoded in the compacted, schema-headed columnar layout.
///
/// Holds the flat byte image plus parsed section offsets, so per-field and
/// per-row accessors are slice arithmetic + leaf decode only.
#[derive(Debug, Clone)]
pub struct CompactedBlock {
    bytes: Vec<u8>,
    records: u32,
    total_items: u64,
    opaque_rows: u32,
    fields: Vec<FieldMeta>,
    residual: Vec<ResidualMeta>,
    shapes: Vec<ShapeMeta>,
}

impl CompactedBlock {
    /// Encode `rows` (key order of the component) against the chosen `slots`
    /// (subset of `schema`'s fields). The schema's stats ride along in the
    /// header so merges can widen without re-reading every input record.
    pub fn encode(rows: &[&AdmValue], schema: &InferredSchema, slots: &[String]) -> CompactedBlock {
        let plans: Vec<Encoding> = slots.iter().map(|s| plan_for(rows, s)).collect();
        let slot_index: HashMap<&str, u32> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i as u32))
            .collect();

        // --- column payloads -------------------------------------------------
        let mut columns: Vec<(Option<Vec<u32>>, Vec<u8>)> = Vec::with_capacity(slots.len());
        for (slot, plan) in slots.iter().zip(&plans) {
            let mut data = Vec::new();
            match plan {
                Encoding::Tagged => {
                    let mut offsets = Vec::with_capacity(rows.len() + 1);
                    offsets.push(0u32);
                    for row in rows {
                        if let Some(v) = field_of(row, slot) {
                            binary::encode_into(v, &mut data);
                        }
                        offsets.push(data.len() as u32);
                    }
                    columns.push((Some(offsets), data));
                }
                Encoding::Str => {
                    let mut offsets = Vec::with_capacity(rows.len() + 1);
                    offsets.push(0u32);
                    for row in rows {
                        match field_of(row, slot) {
                            Some(AdmValue::String(s)) => data.extend_from_slice(s.as_bytes()),
                            _ => unreachable!("str column planned over non-uniform rows"),
                        }
                        offsets.push(data.len() as u32);
                    }
                    columns.push((Some(offsets), data));
                }
                Encoding::RecFixed(_) => {
                    let mut offsets = Vec::with_capacity(rows.len() + 1);
                    offsets.push(0u32);
                    for row in rows {
                        match field_of(row, slot) {
                            Some(AdmValue::Record(sub)) => {
                                for (_, sv) in sub {
                                    binary::encode_into(sv, &mut data);
                                }
                            }
                            _ => unreachable!("record column planned over non-uniform rows"),
                        }
                        offsets.push(data.len() as u32);
                    }
                    columns.push((Some(offsets), data));
                }
                fixed => {
                    for row in rows {
                        match (fixed, field_of(row, slot)) {
                            (Encoding::FixedInt, Some(AdmValue::Int(i))) => {
                                data.extend_from_slice(&i.to_le_bytes())
                            }
                            (Encoding::FixedDouble, Some(AdmValue::Double(d))) => {
                                data.extend_from_slice(&d.to_bits().to_le_bytes())
                            }
                            (Encoding::FixedDateTime, Some(AdmValue::DateTime(ms))) => {
                                data.extend_from_slice(&ms.to_le_bytes())
                            }
                            (Encoding::FixedBool, Some(AdmValue::Boolean(b))) => {
                                data.push(*b as u8)
                            }
                            (Encoding::FixedPoint, Some(AdmValue::Point(x, y))) => {
                                data.extend_from_slice(&x.to_bits().to_le_bytes());
                                data.extend_from_slice(&y.to_bits().to_le_bytes());
                            }
                            _ => unreachable!("fixed column planned over non-uniform rows"),
                        }
                    }
                    columns.push((None, data));
                }
            }
        }

        // --- residual + shape ------------------------------------------------
        let mut residual: Vec<(u32, u8, Vec<u8>)> = Vec::new();
        let mut shapes: Vec<(u32, Vec<u32>)> = Vec::new();
        for (ri, row) in rows.iter().enumerate() {
            let ri = ri as u32;
            let fields = match row {
                AdmValue::Record(fields) => fields,
                other => {
                    residual.push((ri, 1, encode_value(other)));
                    continue;
                }
            };
            let mut items = Vec::with_capacity(fields.len());
            let mut leftovers: Vec<(String, AdmValue)> = Vec::new();
            let mut slotted: Vec<u32> = Vec::new();
            for (name, value) in fields {
                match slot_index.get(name.as_str()) {
                    Some(&si) if !slotted.contains(&si) => {
                        slotted.push(si);
                        items.push(si);
                    }
                    _ => {
                        items.push(RESIDUAL_BIT | leftovers.len() as u32);
                        leftovers.push((name.clone(), value.clone()));
                    }
                }
            }
            if !leftovers.is_empty() {
                residual.push((ri, 0, encode_value(&AdmValue::Record(leftovers))));
            }
            if !canonical_order(&items) {
                shapes.push((ri, items));
            }
        }

        // --- assemble --------------------------------------------------------
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        push_u32(&mut bytes, rows.len() as u32);
        push_u64(&mut bytes, schema.total_items);
        push_u32(&mut bytes, schema.opaque_rows as u32);
        push_u32(&mut bytes, slots.len() as u32);
        for (slot, plan) in slots.iter().zip(&plans) {
            push_str(&mut bytes, slot);
            bytes.push(plan.tag());
            let stats = schema.fields.iter().find(|f| &f.name == slot);
            let (ty, present, nulls) = match stats {
                Some(f) => (f.ty, f.present, f.nulls),
                None => (FieldType::Empty, 0, 0),
            };
            bytes.push(ty_byte(ty));
            push_u32(&mut bytes, present as u32);
            push_u32(&mut bytes, nulls as u32);
            if let Encoding::RecFixed(sub) = plan {
                push_u32(&mut bytes, sub.len() as u32);
                for name in sub {
                    push_str(&mut bytes, name);
                }
            }
        }
        for (offsets, data) in &columns {
            if let Some(offsets) = offsets {
                for o in offsets {
                    push_u32(&mut bytes, *o);
                }
                push_u32(&mut bytes, data.len() as u32);
            }
            bytes.extend_from_slice(data);
        }
        push_u32(&mut bytes, residual.len() as u32);
        for (row, kind, payload) in &residual {
            push_u32(&mut bytes, *row);
            bytes.push(*kind);
            push_u32(&mut bytes, payload.len() as u32);
            bytes.extend_from_slice(payload);
        }
        push_u32(&mut bytes, shapes.len() as u32);
        for (row, items) in &shapes {
            push_u32(&mut bytes, *row);
            push_u32(&mut bytes, items.len() as u32);
            for it in items {
                push_u32(&mut bytes, *it);
            }
        }

        CompactedBlock::from_bytes(bytes).expect("freshly encoded compacted block must parse back")
    }

    /// Parse a compacted block from its byte image, validating section
    /// structure (magic, offset monotonicity, spans in bounds).
    pub fn from_bytes(bytes: Vec<u8>) -> IngestResult<CompactedBlock> {
        let mut c = Cursor {
            buf: &bytes,
            pos: 0,
        };
        if c.take(4)? != MAGIC {
            return Err(IngestError::Parse("compacted block: bad magic".into()));
        }
        let records = c.u32()?;
        let total_items = c.u64()?;
        let opaque_rows = c.u32()?;
        let field_count = c.u32()? as usize;
        if field_count > bytes.len() {
            return Err(IngestError::Parse(
                "compacted block: field count exceeds input".into(),
            ));
        }
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            let name = c.string()?;
            let enc_tag = c.u8()?;
            let ty = ty_from_byte(c.u8()?)?;
            let present = c.u32()? as u64;
            let nulls = c.u32()? as u64;
            let encoding = match enc_tag {
                ENC_TAGGED => Encoding::Tagged,
                ENC_INT => Encoding::FixedInt,
                ENC_DOUBLE => Encoding::FixedDouble,
                ENC_DATETIME => Encoding::FixedDateTime,
                ENC_BOOL => Encoding::FixedBool,
                ENC_POINT => Encoding::FixedPoint,
                ENC_STR => Encoding::Str,
                ENC_RECORD => {
                    let n = c.u32()? as usize;
                    if n > bytes.len() {
                        return Err(IngestError::Parse(
                            "compacted block: subfield count exceeds input".into(),
                        ));
                    }
                    let mut sub = Vec::with_capacity(n);
                    for _ in 0..n {
                        sub.push(c.string()?);
                    }
                    Encoding::RecFixed(sub)
                }
                other => {
                    return Err(IngestError::Parse(format!(
                        "compacted block: unknown encoding tag {other}"
                    )))
                }
            };
            fields.push(FieldMeta {
                name,
                encoding,
                ty,
                present,
                nulls,
                offsets_pos: 0,
                data_pos: 0,
                data_len: 0,
            });
        }
        for meta in &mut fields {
            match meta.encoding.width() {
                Some(w) => {
                    meta.data_pos = c.pos;
                    meta.data_len = w * records as usize;
                    c.take(meta.data_len)?;
                }
                None => {
                    meta.offsets_pos = c.pos;
                    c.take(4 * (records as usize + 1))?;
                    let data_len = c.u32()? as usize;
                    meta.data_pos = c.pos;
                    meta.data_len = data_len;
                    c.take(data_len)?;
                    let last = read_u32_at(&bytes, meta.offsets_pos + 4 * records as usize);
                    if last as usize != data_len {
                        return Err(IngestError::Parse(
                            "compacted block: offset table does not cover column data".into(),
                        ));
                    }
                }
            }
        }
        let residual_count = c.u32()? as usize;
        if residual_count > bytes.len() {
            return Err(IngestError::Parse(
                "compacted block: residual count exceeds input".into(),
            ));
        }
        let mut residual = Vec::with_capacity(residual_count);
        for _ in 0..residual_count {
            let row = c.u32()?;
            let kind = c.u8()?;
            let len = c.u32()? as usize;
            let start = c.pos;
            c.take(len)?;
            if row >= records || kind > 1 {
                return Err(IngestError::Parse(
                    "compacted block: bad residual entry".into(),
                ));
            }
            if let Some(prev) = residual.last() {
                let prev: &ResidualMeta = prev;
                if prev.row >= row {
                    return Err(IngestError::Parse(
                        "compacted block: residual rows not ascending".into(),
                    ));
                }
            }
            residual.push(ResidualMeta {
                row,
                whole: kind == 1,
                start,
                len,
            });
        }
        let shape_count = c.u32()? as usize;
        if shape_count > bytes.len() {
            return Err(IngestError::Parse(
                "compacted block: shape count exceeds input".into(),
            ));
        }
        let mut shapes: Vec<ShapeMeta> = Vec::with_capacity(shape_count);
        for _ in 0..shape_count {
            let row = c.u32()?;
            let n = c.u32()? as usize;
            if n > bytes.len() || row >= records {
                return Err(IngestError::Parse(
                    "compacted block: bad shape entry".into(),
                ));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(c.u32()?);
            }
            if let Some(prev) = shapes.last() {
                if prev.row >= row {
                    return Err(IngestError::Parse(
                        "compacted block: shape rows not ascending".into(),
                    ));
                }
            }
            shapes.push(ShapeMeta { row, items });
        }
        if c.pos != bytes.len() {
            return Err(IngestError::Parse(format!(
                "compacted block: {} trailing bytes",
                bytes.len() - c.pos
            )));
        }
        Ok(CompactedBlock {
            bytes,
            records,
            total_items,
            opaque_rows,
            fields,
            residual,
            shapes,
        })
    }

    /// Number of records in the block.
    pub fn records(&self) -> usize {
        self.records as usize
    }

    /// Size of the encoded image — the disk-equivalent component footprint.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Slot field names in schema order.
    pub fn slot_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Number of residual entries (rows carrying open fields or opaque
    /// values) — the block's realized churn.
    pub fn residual_entries(&self) -> usize {
        self.residual.len()
    }

    /// Reconstruct the slot-field half of the inferred schema from the
    /// header (stats for residual-only fields are not stored).
    pub fn schema(&self) -> InferredSchema {
        InferredSchema {
            fields: self
                .fields
                .iter()
                .map(|f| crate::schema::FieldStats {
                    name: f.name.clone(),
                    present: f.present,
                    nulls: f.nulls,
                    ty: f.ty,
                    shape: match &f.encoding {
                        Encoding::RecFixed(sub) => RecordShape::Uniform(sub.clone()),
                        _ => RecordShape::Unseen,
                    },
                })
                .collect(),
            records: self.records as u64,
            opaque_rows: self.opaque_rows as u64,
            total_items: self.total_items,
        }
    }

    fn residual_for(&self, row: u32) -> Option<&ResidualMeta> {
        self.residual
            .binary_search_by(|m| m.row.cmp(&row))
            .ok()
            .map(|i| &self.residual[i])
    }

    fn shape_for(&self, row: u32) -> Option<&ShapeMeta> {
        self.shapes
            .binary_search_by(|m| m.row.cmp(&row))
            .ok()
            .map(|i| &self.shapes[i])
    }

    fn residual_value(&self, meta: &ResidualMeta) -> Option<AdmValue> {
        decode_value(&self.bytes[meta.start..meta.start + meta.len]).ok()
    }

    /// Decode one column cell. `None` = field absent in that row.
    fn column_value(&self, fi: usize, row: usize) -> Option<AdmValue> {
        let meta = &self.fields[fi];
        match &meta.encoding {
            Encoding::Tagged | Encoding::Str | Encoding::RecFixed(_) => {
                let start = read_u32_at(&self.bytes, meta.offsets_pos + 4 * row) as usize;
                let end = read_u32_at(&self.bytes, meta.offsets_pos + 4 * (row + 1)) as usize;
                let slice = &self.bytes[meta.data_pos + start..meta.data_pos + end];
                match &meta.encoding {
                    Encoding::Tagged => {
                        if slice.is_empty() {
                            None
                        } else {
                            decode_value(slice).ok()
                        }
                    }
                    Encoding::Str => std::str::from_utf8(slice)
                        .ok()
                        .map(|s| AdmValue::String(s.to_string())),
                    Encoding::RecFixed(sub) => {
                        let mut rest = slice;
                        let mut fields = Vec::with_capacity(sub.len());
                        for name in sub {
                            let (v, r) = decode_prefix(rest).ok()?;
                            fields.push((name.clone(), v));
                            rest = r;
                        }
                        if rest.is_empty() {
                            Some(AdmValue::Record(fields))
                        } else {
                            None
                        }
                    }
                    _ => unreachable!(),
                }
            }
            fixed => {
                let w = fixed.width().expect("fixed encoding has a width");
                let at = meta.data_pos + w * row;
                let slice = &self.bytes[at..at + w];
                Some(match fixed {
                    Encoding::FixedInt => AdmValue::Int(i64::from_le_bytes(
                        slice.try_into().expect("8-byte int cell"),
                    )),
                    Encoding::FixedDouble => AdmValue::Double(f64::from_bits(u64::from_le_bytes(
                        slice.try_into().expect("8-byte double cell"),
                    ))),
                    Encoding::FixedDateTime => AdmValue::DateTime(i64::from_le_bytes(
                        slice.try_into().expect("8-byte datetime cell"),
                    )),
                    Encoding::FixedBool => AdmValue::Boolean(slice[0] != 0),
                    Encoding::FixedPoint => AdmValue::Point(
                        f64::from_bits(u64::from_le_bytes(slice[..8].try_into().expect("point x"))),
                        f64::from_bits(u64::from_le_bytes(slice[8..].try_into().expect("point y"))),
                    ),
                    _ => unreachable!(),
                })
            }
        }
    }

    /// Lazily materialize one field of one row — the vectorized scan
    /// primitive. Slot fields cost one column-cell decode; open fields fall
    /// back to the row's residual record. `None` = absent.
    pub fn field_value(&self, row: usize, name: &str) -> Option<AdmValue> {
        if row >= self.records as usize {
            return None;
        }
        if let Some(meta) = self.residual_for(row as u32) {
            if meta.whole {
                return match self.residual_value(meta)? {
                    AdmValue::Record(fields) => {
                        fields.into_iter().find(|(n, _)| n == name).map(|(_, v)| v)
                    }
                    _ => None,
                };
            }
        }
        if let Some(fi) = self.fields.iter().position(|f| f.name == name) {
            // a slot field's first occurrence always lives in the column, so
            // an empty cell means the row genuinely lacks the field
            return self.column_value(fi, row);
        }
        let meta = self.residual_for(row as u32)?;
        match self.residual_value(meta)? {
            AdmValue::Record(fields) => fields.into_iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Rebuild the full record for `row`, bit-exactly equal to the value the
    /// component was sealed with (field order and duplicates included).
    pub fn materialize(&self, row: usize) -> Option<AdmValue> {
        if row >= self.records as usize {
            return None;
        }
        let residual = self.residual_for(row as u32);
        if let Some(meta) = residual {
            if meta.whole {
                return self.residual_value(meta);
            }
        }
        let leftovers: Vec<(String, AdmValue)> = match residual {
            Some(meta) => match self.residual_value(meta)? {
                AdmValue::Record(fields) => fields,
                _ => return None,
            },
            None => Vec::new(),
        };
        if let Some(shape) = self.shape_for(row as u32) {
            let mut fields = Vec::with_capacity(shape.items.len());
            let mut leftovers = leftovers.into_iter();
            for &item in &shape.items {
                if item & RESIDUAL_BIT != 0 {
                    fields.push(leftovers.next()?);
                } else {
                    let fi = item as usize;
                    let v = self.column_value(fi, row)?;
                    fields.push((self.fields[fi].name.clone(), v));
                }
            }
            return Some(AdmValue::Record(fields));
        }
        let mut fields = Vec::new();
        for fi in 0..self.fields.len() {
            if let Some(v) = self.column_value(fi, row) {
                fields.push((self.fields[fi].name.clone(), v));
            }
        }
        fields.extend(leftovers);
        Some(AdmValue::Record(fields))
    }
}

/// Canonical row order: slotted fields in ascending slot order, then all
/// residual fields. Rows in canonical order need no shape entry.
fn canonical_order(items: &[u32]) -> bool {
    let mut last_slot: Option<u32> = None;
    let mut seen_residual = false;
    for &it in items {
        if it & RESIDUAL_BIT != 0 {
            seen_residual = true;
        } else {
            if seen_residual {
                return false;
            }
            if let Some(ls) = last_slot {
                if it <= ls {
                    return false;
                }
            }
            last_slot = Some(it);
        }
    }
    true
}

fn read_u32_at(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("u32 in bounds"))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: &str) -> IngestError {
        IngestError::Parse(format!("compacted block: {msg} at byte {}", self.pos))
    }

    fn take(&mut self, n: usize) -> IngestResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err("truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> IngestResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> IngestResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> IngestResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> IngestResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }
}

/// The uncompacted fallback layout: one binary-codec record per row behind
/// an offset table. Used verbatim for components whose schema churn defeats
/// inference, and as the baseline in size/throughput comparisons.
#[derive(Debug, Clone, Default)]
pub struct OpenBlock {
    offsets: Vec<u32>,
    data: Vec<u8>,
}

impl OpenBlock {
    /// Encode `rows` self-describing, in order.
    pub fn encode(rows: &[&AdmValue]) -> OpenBlock {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0u32);
        let mut data = Vec::new();
        for row in rows {
            binary::encode_into(row, &mut data);
            offsets.push(data.len() as u32);
        }
        OpenBlock { offsets, data }
    }

    /// Number of records in the block.
    pub fn records(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Disk-equivalent footprint: record bytes plus the offset table.
    pub fn size_bytes(&self) -> usize {
        self.data.len() + 4 * self.offsets.len()
    }

    /// The encoded bytes of one record.
    pub fn record_slice(&self, row: usize) -> Option<&[u8]> {
        let start = *self.offsets.get(row)? as usize;
        let end = *self.offsets.get(row + 1)? as usize;
        self.data.get(start..end)
    }

    /// Decode one field of one row via the zero-copy skip decoder.
    pub fn field_value(&self, row: usize, name: &str) -> Option<AdmValue> {
        decode_field_at(self.record_slice(row)?, name)
            .ok()
            .flatten()
    }

    /// Decode the whole record for `row`.
    pub fn materialize(&self, row: usize) -> Option<AdmValue> {
        decode_value(self.record_slice(row)?).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn rec(fields: Vec<(&str, AdmValue)>) -> AdmValue {
        AdmValue::Record(
            fields
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        )
    }

    fn tweet(i: i64) -> AdmValue {
        rec(vec![
            ("id", AdmValue::String(format!("t-{i}"))),
            (
                "user",
                rec(vec![
                    ("screen_name", AdmValue::String(format!("u{i}"))),
                    ("lang", "en".into()),
                    ("friends_count", AdmValue::Int(i * 3)),
                ]),
            ),
            ("latitude", AdmValue::Double(i as f64 * 0.5)),
            ("retweets", AdmValue::Int(i)),
            ("verified", AdmValue::Boolean(i % 2 == 0)),
            ("where", AdmValue::Point(i as f64, -(i as f64))),
            ("at", AdmValue::DateTime(1_400_000_000_000 + i)),
            ("message_text", AdmValue::String(format!("hello #{i}"))),
        ])
    }

    fn encode_rows(rows: &[AdmValue], min_presence: f64) -> CompactedBlock {
        let mut b = SchemaBuilder::new();
        for r in rows {
            b.observe(r);
        }
        let schema = b.finish();
        let slots = schema.slot_fields(min_presence);
        let refs: Vec<&AdmValue> = rows.iter().collect();
        CompactedBlock::encode(&refs, &schema, &slots)
    }

    #[test]
    fn uniform_tweets_round_trip_and_use_fixed_columns() {
        let rows: Vec<AdmValue> = (0..50).map(tweet).collect();
        let block = encode_rows(&rows, 0.5);
        assert_eq!(block.records(), 50);
        assert_eq!(block.residual_entries(), 0);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(block.materialize(i).as_ref(), Some(row), "row {i}");
        }
        // nested user names hoisted: encoding tag for `user` is RecFixed
        let user = block
            .fields
            .iter()
            .find(|f| f.name == "user")
            .expect("user slot");
        assert!(matches!(user.encoding, Encoding::RecFixed(_)));
        // and the fixed columns really are fixed
        for (name, want) in [
            ("retweets", ENC_INT),
            ("latitude", ENC_DOUBLE),
            ("verified", ENC_BOOL),
            ("where", ENC_POINT),
            ("at", ENC_DATETIME),
            ("message_text", ENC_STR),
        ] {
            let f = block.fields.iter().find(|f| f.name == name).expect(name);
            assert_eq!(f.encoding.tag(), want, "{name}");
        }
    }

    #[test]
    fn compacted_is_smaller_than_open_for_uniform_records() {
        let rows: Vec<AdmValue> = (0..200).map(tweet).collect();
        let refs: Vec<&AdmValue> = rows.iter().collect();
        let open = OpenBlock::encode(&refs);
        let block = encode_rows(&rows, 0.5);
        assert!(
            (block.size_bytes() as f64) * 1.5 < open.size_bytes() as f64,
            "compacted {} vs open {}",
            block.size_bytes(),
            open.size_bytes()
        );
    }

    #[test]
    fn field_value_agrees_with_materialize() {
        let mut rows: Vec<AdmValue> = (0..20).map(tweet).collect();
        rows[7].set_field("extra", AdmValue::Int(99));
        rows[9] = AdmValue::Int(5); // opaque row
        let block = encode_rows(&rows, 0.5);
        for (i, row) in rows.iter().enumerate() {
            for name in ["id", "user", "retweets", "extra", "absent", "message_text"] {
                assert_eq!(
                    block.field_value(i, name),
                    field_of(row, name).cloned(),
                    "row {i} field {name}"
                );
            }
        }
    }

    #[test]
    fn open_fields_and_odd_order_round_trip_exactly() {
        let rows = vec![
            rec(vec![("a", AdmValue::Int(1)), ("b", "x".into())]),
            // extra open field between slots
            rec(vec![
                ("a", AdmValue::Int(2)),
                ("weird", AdmValue::Null),
                ("b", "y".into()),
            ]),
            // slots out of order
            rec(vec![("b", "z".into()), ("a", AdmValue::Int(3))]),
            // duplicate slot name: first occurrence slots, second residual
            AdmValue::Record(vec![
                ("a".into(), AdmValue::Int(4)),
                ("a".into(), AdmValue::Int(5)),
                ("b".into(), "w".into()),
            ]),
            // opaque non-record row
            AdmValue::OrderedList(vec![AdmValue::Int(6)]),
        ];
        let block = encode_rows(&rows, 0.5);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(block.materialize(i).as_ref(), Some(row), "row {i}");
        }
        assert!(block.residual_entries() >= 3);
    }

    #[test]
    fn byte_image_round_trips_through_from_bytes() {
        let mut rows: Vec<AdmValue> = (0..30).map(tweet).collect();
        rows[11].set_field("open1", "o".into());
        let block = encode_rows(&rows, 0.5);
        let reparsed = CompactedBlock::from_bytes(block.as_bytes().to_vec()).expect("reparse");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(reparsed.materialize(i).as_ref(), Some(row), "row {i}");
        }
        assert_eq!(reparsed.schema(), block.schema());
    }

    #[test]
    fn from_bytes_rejects_truncation_without_panicking() {
        let rows: Vec<AdmValue> = (0..5).map(tweet).collect();
        let block = encode_rows(&rows, 0.5);
        let bytes = block.as_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CompactedBlock::from_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn int_widened_to_double_stays_tagged_and_bit_exact() {
        let rows = vec![
            rec(vec![("n", AdmValue::Int(1))]),
            rec(vec![("n", AdmValue::Double(2.5))]),
            rec(vec![("n", AdmValue::Int(3))]),
        ];
        let block = encode_rows(&rows, 0.5);
        assert_eq!(block.fields[0].encoding, Encoding::Tagged);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(block.materialize(i).as_ref(), Some(row));
        }
    }

    #[test]
    fn open_block_round_trips_and_serves_fields() {
        let rows: Vec<AdmValue> = (0..10).map(tweet).collect();
        let refs: Vec<&AdmValue> = rows.iter().collect();
        let open = OpenBlock::encode(&refs);
        assert_eq!(open.records(), 10);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(open.materialize(i).as_ref(), Some(row));
            assert_eq!(
                open.field_value(i, "id"),
                field_of(row, "id").cloned(),
                "row {i}"
            );
        }
    }

    #[test]
    fn empty_component_encodes_and_decodes() {
        let block = encode_rows(&[], 0.5);
        assert_eq!(block.records(), 0);
        assert!(block.materialize(0).is_none());
        let open = OpenBlock::encode(&[]);
        assert_eq!(open.records(), 0);
    }
}
