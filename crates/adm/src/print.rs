//! Canonical ADM serializer.
//!
//! The inverse of [`crate::parse`]: `parse_value(to_adm_string(v)) == v` for
//! all values whose doubles are finite (a proptest suite in `tests/` checks
//! this). Doubles print in Rust's shortest round-trip form; integers never
//! gain a decimal point, so the Int/Double distinction survives the trip.

use crate::value::AdmValue;
use std::fmt::Write;

/// Serialize a value to canonical ADM text.
pub fn to_adm_string(v: &AdmValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &AdmValue) {
    match v {
        AdmValue::Null => out.push_str("null"),
        AdmValue::Missing => out.push_str("missing"),
        AdmValue::Boolean(true) => out.push_str("true"),
        AdmValue::Boolean(false) => out.push_str("false"),
        AdmValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        AdmValue::Double(d) => write_double(out, *d),
        AdmValue::String(s) => write_string(out, s),
        AdmValue::Point(x, y) => {
            out.push_str("point(");
            write_double(out, *x);
            out.push(',');
            write_double(out, *y);
            out.push(')');
        }
        AdmValue::DateTime(ms) => {
            let _ = write!(out, "datetime({ms})");
        }
        AdmValue::OrderedList(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        AdmValue::UnorderedList(items) => {
            out.push_str("{{");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push_str("}}");
        }
        AdmValue::Record(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_double(out: &mut String, d: f64) {
    if d == d.trunc() && d.is_finite() && d.abs() < 1e15 {
        // force a decimal point so it re-parses as Double, not Int
        let _ = write!(out, "{d:.1}");
    } else {
        // shortest round-trip representation
        let _ = write!(out, "{d:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_value;

    fn roundtrip(v: AdmValue) {
        let s = to_adm_string(&v);
        let back = parse_value(&s).unwrap_or_else(|e| panic!("reparse of `{s}` failed: {e}"));
        assert_eq!(back, v, "via `{s}`");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(AdmValue::Null);
        roundtrip(AdmValue::Missing);
        roundtrip(AdmValue::Boolean(true));
        roundtrip(AdmValue::Int(-123));
        roundtrip(AdmValue::Double(0.1));
        roundtrip(AdmValue::Double(3.0)); // whole double stays double
        roundtrip(AdmValue::Double(-1.5e-9));
        roundtrip(AdmValue::String("a\"b\\c\n\u{0001}π".into()));
        roundtrip(AdmValue::Point(33.1, -117.8));
        roundtrip(AdmValue::DateTime(1_420_070_400_000));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(AdmValue::OrderedList(vec![]));
        roundtrip(AdmValue::UnorderedList(vec!["x".into(), 1.into()]));
        roundtrip(AdmValue::record(vec![
            ("id", "t1".into()),
            ("loc", AdmValue::Point(0.5, -0.5)),
            ("tags", AdmValue::OrderedList(vec!["#a".into()])),
            ("nested", AdmValue::record(vec![("n", AdmValue::Null)])),
        ]));
    }

    #[test]
    fn int_double_distinction_survives() {
        assert_eq!(to_adm_string(&AdmValue::Int(3)), "3");
        assert_eq!(to_adm_string(&AdmValue::Double(3.0)), "3.0");
        assert_eq!(parse_value("3").unwrap(), AdmValue::Int(3));
        assert_eq!(parse_value("3.0").unwrap(), AdmValue::Double(3.0));
    }

    #[test]
    fn display_uses_canonical_form() {
        let v = AdmValue::record(vec![("a", 1.into())]);
        assert_eq!(v.to_string(), "{\"a\":1}");
    }

    #[test]
    fn control_chars_escape() {
        let s = to_adm_string(&AdmValue::String("\u{0001}".into()));
        assert_eq!(s, "\"\\u0001\"");
    }
}
