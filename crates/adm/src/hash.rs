//! Stable value hashing for hash partitioning.
//!
//! Datasets are "hash-partitioned (by primary key) across a set of nodes
//! that form the nodegroup" (§3.1.2), and the store stage of every ingestion
//! pipeline routes each record by hashing its primary key (§5.3.1). The hash
//! must be stable across runs and processes so that partitioning is
//! deterministic; we use FNV-1a over a canonical byte encoding of the value.

use crate::value::AdmValue;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over bytes.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_into(h: u64, v: &AdmValue) -> u64 {
    match v {
        AdmValue::Null => fnv1a(h, b"\x00n"),
        AdmValue::Missing => fnv1a(h, b"\x00m"),
        AdmValue::Boolean(b) => fnv1a(h, &[1, *b as u8]),
        // ints and equal-valued doubles hash identically (they compare equal)
        AdmValue::Int(i) => fnv1a(fnv1a(h, &[2]), &(*i as f64).to_bits().to_le_bytes()),
        AdmValue::Double(d) => {
            // normalize -0.0 to 0.0 so equal values hash equal
            let d = if *d == 0.0 { 0.0 } else { *d };
            fnv1a(fnv1a(h, &[2]), &d.to_bits().to_le_bytes())
        }
        AdmValue::String(s) => fnv1a(fnv1a(h, &[3]), s.as_bytes()),
        AdmValue::Point(x, y) => {
            let h = fnv1a(h, &[4]);
            let h = fnv1a(h, &x.to_bits().to_le_bytes());
            fnv1a(h, &y.to_bits().to_le_bytes())
        }
        AdmValue::DateTime(ms) => fnv1a(fnv1a(h, &[5]), &ms.to_le_bytes()),
        AdmValue::OrderedList(items) => {
            let mut h = fnv1a(h, &[6]);
            for item in items {
                h = hash_into(h, item);
            }
            h
        }
        AdmValue::UnorderedList(items) => {
            // order-insensitive: xor element hashes
            let mut acc = 0u64;
            for item in items {
                acc ^= hash_into(FNV_OFFSET, item);
            }
            fnv1a(fnv1a(h, &[7]), &acc.to_le_bytes())
        }
        AdmValue::Record(fields) => {
            // field-order-insensitive: xor of (key, value) hashes
            let mut acc = 0u64;
            for (k, v) in fields {
                let kh = fnv1a(FNV_OFFSET, k.as_bytes());
                acc ^= hash_into(kh, v);
            }
            fnv1a(fnv1a(h, &[8]), &acc.to_le_bytes())
        }
    }
}

/// Stable 64-bit hash of a value.
pub fn hash_value(v: &AdmValue) -> u64 {
    hash_into(FNV_OFFSET, v)
}

/// Partition index for a key over `partitions` buckets.
pub fn partition_for(key: &AdmValue, partitions: usize) -> usize {
    assert!(partitions > 0, "at least one partition required");
    (hash_value(key) % partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(
            hash_value(&AdmValue::Int(3)),
            hash_value(&AdmValue::Double(3.0))
        );
        assert_eq!(
            hash_value(&AdmValue::Double(0.0)),
            hash_value(&AdmValue::Double(-0.0))
        );
    }

    #[test]
    fn different_values_usually_differ() {
        let vals = [
            AdmValue::Null,
            AdmValue::Missing,
            AdmValue::Int(0),
            AdmValue::Int(1),
            AdmValue::string("a"),
            AdmValue::string("b"),
            AdmValue::Point(1.0, 2.0),
            AdmValue::Point(2.0, 1.0),
            AdmValue::DateTime(0),
            AdmValue::OrderedList(vec![1.into()]),
            AdmValue::UnorderedList(vec![1.into()]),
        ];
        let hashes: std::collections::HashSet<u64> = vals.iter().map(hash_value).collect();
        assert_eq!(hashes.len(), vals.len());
    }

    #[test]
    fn record_field_order_does_not_matter() {
        let a = AdmValue::record(vec![("x", 1.into()), ("y", 2.into())]);
        let b = AdmValue::record(vec![("y", 2.into()), ("x", 1.into())]);
        assert_eq!(hash_value(&a), hash_value(&b));
    }

    #[test]
    fn bag_order_does_not_matter_but_list_does() {
        let a = AdmValue::UnorderedList(vec![1.into(), 2.into()]);
        let b = AdmValue::UnorderedList(vec![2.into(), 1.into()]);
        assert_eq!(hash_value(&a), hash_value(&b));
        let c = AdmValue::OrderedList(vec![1.into(), 2.into()]);
        let d = AdmValue::OrderedList(vec![2.into(), 1.into()]);
        assert_ne!(hash_value(&c), hash_value(&d));
    }

    #[test]
    fn partitioning_is_stable_and_in_range() {
        for i in 0..100 {
            let key = AdmValue::string(format!("key{i}"));
            let p = partition_for(&key, 7);
            assert!(p < 7);
            assert_eq!(p, partition_for(&key, 7), "stable across calls");
        }
    }

    #[test]
    fn partitions_spread_keys() {
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[partition_for(&AdmValue::string(format!("k{i}")), 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 150, "partition starved: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        partition_for(&AdmValue::Int(1), 0);
    }
}
