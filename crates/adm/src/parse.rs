//! ADM text parser.
//!
//! A hand-written recursive-descent parser for the textual form of ADM. The
//! grammar is JSON plus the ADM extensions the paper uses:
//!
//! * `missing` literal;
//! * unordered lists (bags): `{{ v, v, ... }}`;
//! * `point(x, y)` and `point("x,y")` spatial constructors;
//! * `datetime(millis)` and `datetime("YYYY-MM-DDTHH:MM:SS[.mmm][Z]")`
//!   temporal constructors;
//! * bare identifiers as record field names (`{ id: 1 }`).
//!
//! `parse_value(to_adm_string(v)) == v` for any value with finite doubles —
//! verified by a proptest round-trip suite.

use crate::value::AdmValue;
use asterix_common::metrics::Counter;
use asterix_common::{IngestError, IngestResult};
use std::sync::OnceLock;

/// Process-wide count of text-parser invocations, as a typed [`Counter`].
///
/// The parse-once pipeline tests read this to assert that a record flowing
/// adaptor → intake → assign → store is parsed exactly once; benchmarks use
/// it to attribute cost. Incremented by every [`parse_value`] call.
fn parse_counter() -> &'static Counter {
    static PARSE_CALLS: OnceLock<Counter> = OnceLock::new();
    PARSE_CALLS.get_or_init(Counter::new)
}

/// Current value of the global parse counter.
pub fn parse_calls() -> u64 {
    parse_counter().get()
}

/// Parse a complete ADM value; trailing non-whitespace is an error.
pub fn parse_value(input: &str) -> IngestResult<AdmValue> {
    parse_counter().inc();
    let mut p = Parser::new(input);
    let v = p.value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> IngestError {
        IngestError::Parse(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> IngestResult<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> IngestResult<AdmValue> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => {
                // distinguish `{{` bag from `{` record
                if self.src.get(self.pos + 1) == Some(&b'{') {
                    self.bag()
                } else {
                    self.record()
                }
            }
            Some(b'[') => self.ordered_list(),
            Some(b'"') => Ok(AdmValue::String(self.string_literal()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.keyword_or_ctor(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn ordered_list(&mut self) -> IngestResult<AdmValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.try_eat(b']') {
            return Ok(AdmValue::OrderedList(items));
        }
        loop {
            items.push(self.value()?);
            if self.try_eat(b',') {
                continue;
            }
            self.eat(b']')?;
            return Ok(AdmValue::OrderedList(items));
        }
    }

    fn bag(&mut self) -> IngestResult<AdmValue> {
        self.eat(b'{')?;
        self.eat(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') && self.src.get(self.pos + 1) == Some(&b'}') {
            self.pos += 2;
            return Ok(AdmValue::UnorderedList(items));
        }
        loop {
            items.push(self.value()?);
            if self.try_eat(b',') {
                continue;
            }
            self.eat(b'}')?;
            self.eat(b'}')?;
            return Ok(AdmValue::UnorderedList(items));
        }
    }

    fn record(&mut self) -> IngestResult<AdmValue> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.try_eat(b'}') {
            return Ok(AdmValue::Record(fields));
        }
        loop {
            self.skip_ws();
            let key = match self.peek() {
                Some(b'"') => self.string_literal()?,
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.identifier(),
                _ => return Err(self.err("expected field name")),
            };
            self.eat(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            if self.try_eat(b',') {
                continue;
            }
            self.eat(b'}')?;
            return Ok(AdmValue::Record(fields));
        }
    }

    fn identifier(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn keyword_or_ctor(&mut self) -> IngestResult<AdmValue> {
        let word = self.identifier();
        match word.as_str() {
            "null" => Ok(AdmValue::Null),
            "missing" => Ok(AdmValue::Missing),
            "true" => Ok(AdmValue::Boolean(true)),
            "false" => Ok(AdmValue::Boolean(false)),
            "point" => self.point_ctor(),
            "datetime" => self.datetime_ctor(),
            other => Err(self.err(format!("unknown keyword '{other}'"))),
        }
    }

    fn point_ctor(&mut self) -> IngestResult<AdmValue> {
        self.eat(b'(')?;
        self.skip_ws();
        let (x, y) = if self.peek() == Some(b'"') {
            // point("x,y") form
            let s = self.string_literal()?;
            let mut parts = s.splitn(2, ',');
            let x = parts
                .next()
                .and_then(|p| p.trim().parse::<f64>().ok())
                .ok_or_else(|| self.err("bad point x coordinate"))?;
            let y = parts
                .next()
                .and_then(|p| p.trim().parse::<f64>().ok())
                .ok_or_else(|| self.err("bad point y coordinate"))?;
            (x, y)
        } else {
            let x = self.f64_literal()?;
            self.eat(b',')?;
            let y = self.f64_literal()?;
            (x, y)
        };
        self.eat(b')')?;
        Ok(AdmValue::Point(x, y))
    }

    fn datetime_ctor(&mut self) -> IngestResult<AdmValue> {
        self.eat(b'(')?;
        self.skip_ws();
        let millis = if self.peek() == Some(b'"') {
            let s = self.string_literal()?;
            parse_iso_datetime(&s).ok_or_else(|| self.err("bad ISO datetime"))?
        } else {
            match self.number()? {
                AdmValue::Int(i) => i,
                _ => return Err(self.err("datetime(millis) requires an integer")),
            }
        };
        self.eat(b')')?;
        Ok(AdmValue::DateTime(millis))
    }

    fn f64_literal(&mut self) -> IngestResult<f64> {
        match self.number()? {
            AdmValue::Int(i) => Ok(i as f64),
            AdmValue::Double(d) => Ok(d),
            _ => unreachable!("number() returns Int or Double"),
        }
    }

    fn number(&mut self) -> IngestResult<AdmValue> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_double = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_double = true;
                    self.pos += 1;
                    // allow exponent sign
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if is_double {
            text.parse::<f64>()
                .map(AdmValue::Double)
                .map_err(|_| self.err(format!("bad double '{text}'")))
        } else {
            text.parse::<i64>()
                .map(AdmValue::Int)
                .map_err(|_| self.err(format!("bad integer '{text}'")))
        }
    }

    fn string_literal(&mut self) -> IngestResult<String> {
        self.skip_ws();
        if self.bump() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            let d = (c as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit in \\u"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?,
                        );
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // multi-byte UTF-8: copy the full sequence
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf8 byte in string")),
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated utf8"))?;
                    }
                    let s = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid utf8 sequence"))?;
                    out.push_str(s);
                }
            }
        }
    }
}

/// Days-from-civil epoch conversion (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp as i64 + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parse `YYYY-MM-DD[THH:MM:SS[.mmm]][Z]` to epoch milliseconds.
pub fn parse_iso_datetime(s: &str) -> Option<i64> {
    let s = s.trim().trim_end_matches('Z');
    let (date, time) = match s.split_once('T') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.splitn(3, '-');
    // negative years unsupported; fine for tweets
    let y: i64 = dp.next()?.parse().ok()?;
    let m: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut millis = days_from_civil(y, m, d) * 86_400_000;
    if let Some(t) = time {
        let (hms, frac) = match t.split_once('.') {
            Some((a, b)) => (a, Some(b)),
            None => (t, None),
        };
        let mut tp = hms.splitn(3, ':');
        let h: i64 = tp.next()?.parse().ok()?;
        let mi: i64 = tp.next()?.parse().ok()?;
        let se: i64 = tp.next().unwrap_or("0").parse().ok()?;
        if !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&se) {
            return None;
        }
        millis += ((h * 60 + mi) * 60 + se) * 1000;
        if let Some(f) = frac {
            let padded = format!("{f:0<3}");
            millis += padded[..3].parse::<i64>().ok()?;
        }
    }
    Some(millis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_value("null").unwrap(), AdmValue::Null);
        assert_eq!(parse_value("missing").unwrap(), AdmValue::Missing);
        assert_eq!(parse_value("true").unwrap(), AdmValue::Boolean(true));
        assert_eq!(parse_value(" false ").unwrap(), AdmValue::Boolean(false));
        assert_eq!(parse_value("42").unwrap(), AdmValue::Int(42));
        assert_eq!(parse_value("-7").unwrap(), AdmValue::Int(-7));
        assert_eq!(parse_value("2.5").unwrap(), AdmValue::Double(2.5));
        assert_eq!(parse_value("1e3").unwrap(), AdmValue::Double(1000.0));
        assert_eq!(parse_value("-1.5e-2").unwrap(), AdmValue::Double(-0.015));
        assert_eq!(
            parse_value("\"hi\"").unwrap(),
            AdmValue::String("hi".into())
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse_value(r#""a\"b\\c\ndA""#).unwrap(),
            AdmValue::String("a\"b\\c\ndA".into())
        );
        assert_eq!(
            parse_value("\"héllo π\"").unwrap(),
            AdmValue::String("héllo π".into())
        );
    }

    #[test]
    fn collections() {
        assert_eq!(
            parse_value("[1, 2, 3]").unwrap(),
            AdmValue::OrderedList(vec![1.into(), 2.into(), 3.into()])
        );
        assert_eq!(parse_value("[]").unwrap(), AdmValue::OrderedList(vec![]));
        assert_eq!(
            parse_value("{{\"a\", \"b\"}}").unwrap(),
            AdmValue::UnorderedList(vec!["a".into(), "b".into()])
        );
        assert_eq!(
            parse_value("{{}}").unwrap(),
            AdmValue::UnorderedList(vec![])
        );
    }

    #[test]
    fn records() {
        let v = parse_value(r#"{ "id": "t1", count: 3, "nested": { "x": [1] } }"#).unwrap();
        assert_eq!(v.field("id").and_then(AdmValue::as_str), Some("t1"));
        assert_eq!(v.field("count").and_then(AdmValue::as_int), Some(3));
        assert!(v.field("nested").unwrap().field("x").is_some());
        assert_eq!(parse_value("{}").unwrap(), AdmValue::Record(vec![]));
    }

    #[test]
    fn point_forms() {
        assert_eq!(
            parse_value("point(33.1, -117.8)").unwrap(),
            AdmValue::Point(33.1, -117.8)
        );
        assert_eq!(
            parse_value("point(\"33.1,-117.8\")").unwrap(),
            AdmValue::Point(33.1, -117.8)
        );
        assert_eq!(
            parse_value("point(1, 2)").unwrap(),
            AdmValue::Point(1.0, 2.0)
        );
    }

    #[test]
    fn datetime_forms() {
        assert_eq!(parse_value("datetime(0)").unwrap(), AdmValue::DateTime(0));
        assert_eq!(
            parse_value("datetime(\"1970-01-01T00:00:00Z\")").unwrap(),
            AdmValue::DateTime(0)
        );
        assert_eq!(
            parse_value("datetime(\"1970-01-02\")").unwrap(),
            AdmValue::DateTime(86_400_000)
        );
        assert_eq!(
            parse_value("datetime(\"2015-01-01T00:00:00\")").unwrap(),
            AdmValue::DateTime(1_420_070_400_000)
        );
        assert_eq!(
            parse_value("datetime(\"1970-01-01T00:00:01.5\")").unwrap(),
            AdmValue::DateTime(1500)
        );
    }

    #[test]
    fn iso_rejects_garbage() {
        assert!(parse_iso_datetime("not a date").is_none());
        assert!(parse_iso_datetime("2015-13-01").is_none());
        assert!(parse_iso_datetime("2015-01-01T25:00:00").is_none());
    }

    #[test]
    fn errors() {
        assert!(parse_value("").is_err());
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("bogus").is_err());
        assert!(parse_value("1 2").is_err()); // trailing
        assert!(parse_value("{{1}").is_err());
        assert!(parse_value("point(1)").is_err());
        assert!(parse_value("datetime(1.5)").is_err());
        assert!(parse_value("-").is_err());
        assert!(parse_value("99999999999999999999999").is_err()); // i64 overflow
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse_value(" {\n \"a\" :\t[ 1 ,2 ] ,\r\n b : {{ }} } ").unwrap();
        assert_eq!(v.field("a").unwrap().as_list().unwrap().len(), 2);
        assert!(v.field("b").is_some());
    }
}
