#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The AsterixDB Data Model (ADM), reproduced in Rust.
//!
//! ADM (§3.1.2 of the paper) is a superset of JSON designed for
//! semi-structured data: records may be *open* (instances can carry extra
//! fields beyond the declared schema) or *closed*, fields may be optional,
//! and the scalar types include spatial (`point`) and temporal (`datetime`)
//! primitives alongside the usual numbers and strings. Collections come in
//! ordered (`[...]`) and unordered (`{{...}}`) flavours.
//!
//! This crate provides:
//!
//! * [`value::AdmValue`] — the runtime value tree;
//! * [`types`] — datatype definitions and conformance checking, including
//!   open/closed records and optional fields;
//! * [`parse`] — a hand-written recursive-descent parser for ADM text
//!   (JSON-compatible, plus `point(...)`, `datetime(...)` and `{{ }}` bags);
//! * [`mod@print`] — the canonical serializer (parse ∘ print = identity, checked
//!   by property tests);
//! * [`binary`] — a compact length-prefixed binary codec (`AdmValue` ↔
//!   bytes), the analogue of AsterixDB's binary ADM format, used by the
//!   write-ahead log and external-system glue;
//! * [`schema`] — single-pass schema inference over open records (per-field
//!   type lattice with counts), feeding the compacted storage layout;
//! * [`compact`] — the compacted columnar-ish component codec (schema
//!   header + per-field columns + sparse residual), plus the uncompacted
//!   [`compact::OpenBlock`] fallback;
//! * [`payload`] — typed access to the shared lazy parse cache carried by
//!   every [`asterix_common::RecordPayload`], the heart of the parse-once
//!   ingestion pipeline;
//! * [`functions`] — the builtin scalar functions the feeds chapters use
//!   (`word-tokens`, `starts-with`, `spatial-cell`, `spatial-intersect`, ...);
//! * [`hash`] — a stable 64-bit value hash used for hash-partitioning
//!   records across a dataset's nodegroup.

pub mod binary;
pub mod compact;
pub mod functions;
pub mod hash;
pub mod parse;
pub mod payload;
pub mod print;
pub mod schema;
pub mod types;
pub mod value;

pub use binary::{decode_field_at, decode_value, encode_value, record_field_slice};
pub use compact::{CompactedBlock, OpenBlock};
pub use parse::{parse_calls, parse_value};
pub use payload::{payload_from_value, AdmPayloadExt};
pub use print::to_adm_string;
pub use schema::{InferredSchema, SchemaBuilder};
pub use types::{AdmType, Field, RecordType, TypeRegistry};
pub use value::AdmValue;
