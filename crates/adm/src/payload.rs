//! Typed access to the shared parse cache of a [`RecordPayload`].
//!
//! `asterix-common` keeps the payload's parse cell type-erased so it does
//! not depend on this crate; here the erased value is pinned to
//! [`AdmValue`]. Every pipeline stage that needs the structured form of a
//! record goes through [`AdmPayloadExt::adm_value`]: the first caller pays
//! for one text parse, everyone after that (and every clone of the record,
//! e.g. in the ack tracker or behind a feed joint) gets the cached
//! `Arc<AdmValue>` back.

use crate::parse::parse_value;
use crate::print::to_adm_string;
use crate::value::AdmValue;
use asterix_common::{IngestError, IngestResult, RecordPayload};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed accessors over a payload's shared parse cache.
pub trait AdmPayloadExt {
    /// The payload's ADM value, parsing the bytes on first use and reusing
    /// the shared cache on every later call.
    fn adm_value(&self) -> IngestResult<Arc<AdmValue>>;

    /// Like [`AdmPayloadExt::adm_value`], but bumps `misses` when this call
    /// actually ran the parser (i.e. the cache was cold). Feed metrics use
    /// this to count parses per feed.
    fn adm_value_counted(&self, misses: &AtomicU64) -> IngestResult<Arc<AdmValue>>;
}

fn parse_erased(bytes: &[u8]) -> Result<Arc<dyn Any + Send + Sync>, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    match parse_value(text) {
        Ok(v) => Ok(Arc::new(v)),
        // store the bare message; `adm_value` re-wraps it as a parse error
        Err(IngestError::Parse(m)) => Err(m),
        Err(e) => Err(e.to_string()),
    }
}

fn downcast(erased: Result<Arc<dyn Any + Send + Sync>, String>) -> IngestResult<Arc<AdmValue>> {
    match erased {
        Ok(any) => any
            .downcast::<AdmValue>()
            .map_err(|_| IngestError::Parse("payload cache holds a non-ADM value".into())),
        Err(m) => Err(IngestError::Parse(m)),
    }
}

impl AdmPayloadExt for RecordPayload {
    fn adm_value(&self) -> IngestResult<Arc<AdmValue>> {
        downcast(self.parse_with(parse_erased))
    }

    fn adm_value_counted(&self, misses: &AtomicU64) -> IngestResult<Arc<AdmValue>> {
        downcast(self.parse_with(|bytes| {
            // relaxed-ok: standalone cache-miss counter, nothing synchronises
            // through it (the parsed value is published by parse_with)
            misses.fetch_add(1, Ordering::Relaxed);
            parse_erased(bytes)
        }))
    }
}

/// Build a payload from an already-known value: the bytes are the canonical
/// ADM text and the parse cache is pre-seeded, so no downstream stage ever
/// parses this record.
pub fn payload_from_value(value: AdmValue) -> RecordPayload {
    let text = to_adm_string(&value);
    RecordPayload::with_parsed(text, Arc::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_calls;

    #[test]
    fn adm_value_parses_once_across_clones() {
        let p = RecordPayload::new(r#"{ "id": 1, "name": "x" }"#);
        let clone = p.clone();
        let before = parse_calls();
        let v1 = p.adm_value().unwrap();
        let v2 = clone.adm_value().unwrap();
        let v3 = p.adm_value().unwrap();
        assert_eq!(parse_calls() - before, 1);
        assert!(Arc::ptr_eq(&v1, &v2) && Arc::ptr_eq(&v2, &v3));
        assert_eq!(v1.field("id").and_then(AdmValue::as_int), Some(1));
    }

    #[test]
    fn adm_value_counted_counts_only_misses() {
        let misses = AtomicU64::new(0);
        let p = RecordPayload::new("42");
        p.adm_value_counted(&misses).unwrap();
        p.adm_value_counted(&misses).unwrap();
        p.adm_value().unwrap();
        assert_eq!(misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parse_errors_are_cached() {
        let p = RecordPayload::new("{ not valid");
        let before = parse_calls();
        assert!(p.adm_value().is_err());
        assert!(p.adm_value().is_err());
        assert_eq!(parse_calls() - before, 1);
    }

    #[test]
    fn payload_from_value_never_reparses() {
        let v = AdmValue::record(vec![("k", AdmValue::Int(9))]);
        let p = payload_from_value(v.clone());
        assert!(p.is_parsed());
        let before = parse_calls();
        assert_eq!(*p.adm_value().unwrap(), v);
        assert_eq!(parse_calls(), before);
        // bytes are the canonical text form
        assert_eq!(p.as_str().unwrap(), to_adm_string(&v));
    }
}
