//! Compact length-prefixed binary codec for ADM values.
//!
//! AsterixDB stores and ships records in a binary ADM format rather than
//! re-printing and re-parsing text at every boundary. This module is the
//! analogue for this codebase: a tag byte per value, little-endian fixed
//! width scalars, and `u32` length prefixes for strings and collections.
//! It is used where a value must be materialized as bytes but text is
//! wasteful — write-ahead-log records and the stormsim Mongo glue.
//!
//! Layout (`tag` byte first):
//!
//! | tag | type          | body                                        |
//! |-----|---------------|---------------------------------------------|
//! | 0   | null          | —                                           |
//! | 1   | missing       | —                                           |
//! | 2   | boolean       | 1 byte (0/1)                                |
//! | 3   | int64         | 8 bytes LE                                  |
//! | 4   | double        | 8 bytes LE (IEEE-754 bits)                  |
//! | 5   | string        | u32 LE length + UTF-8 bytes                 |
//! | 6   | point         | 2 × 8 bytes LE (x, y)                       |
//! | 7   | datetime      | 8 bytes LE (millis since epoch)             |
//! | 8   | ordered list  | u32 LE count + encoded items                |
//! | 9   | unordered list| u32 LE count + encoded items                |
//! | 10  | record        | u32 LE count + (string name, value) pairs   |
//!
//! `decode_value(&encode_value(v)) == v` for every `AdmValue`, including
//! non-finite doubles (bit-exact, unlike the text round-trip) — verified by
//! a proptest suite sharing the generator with the text round-trip tests.

use crate::value::AdmValue;
use asterix_common::{IngestError, IngestResult};

const TAG_NULL: u8 = 0;
const TAG_MISSING: u8 = 1;
const TAG_BOOLEAN: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_STRING: u8 = 5;
const TAG_POINT: u8 = 6;
const TAG_DATETIME: u8 = 7;
const TAG_ORDERED_LIST: u8 = 8;
const TAG_UNORDERED_LIST: u8 = 9;
const TAG_RECORD: u8 = 10;

/// Encode a value into a fresh buffer.
pub fn encode_value(v: &AdmValue) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(v, &mut out);
    out
}

/// Encode a value, appending to `out`.
pub fn encode_into(v: &AdmValue, out: &mut Vec<u8>) {
    match v {
        AdmValue::Null => out.push(TAG_NULL),
        AdmValue::Missing => out.push(TAG_MISSING),
        AdmValue::Boolean(b) => {
            out.push(TAG_BOOLEAN);
            out.push(*b as u8);
        }
        AdmValue::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        AdmValue::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        AdmValue::String(s) => {
            out.push(TAG_STRING);
            encode_str(s, out);
        }
        AdmValue::Point(x, y) => {
            out.push(TAG_POINT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
            out.extend_from_slice(&y.to_bits().to_le_bytes());
        }
        AdmValue::DateTime(ms) => {
            out.push(TAG_DATETIME);
            out.extend_from_slice(&ms.to_le_bytes());
        }
        AdmValue::OrderedList(items) => {
            out.push(TAG_ORDERED_LIST);
            encode_seq(items, out);
        }
        AdmValue::UnorderedList(items) => {
            out.push(TAG_UNORDERED_LIST);
            encode_seq(items, out);
        }
        AdmValue::Record(fields) => {
            out.push(TAG_RECORD);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (name, value) in fields {
                encode_str(name, out);
                encode_into(value, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_seq(items: &[AdmValue], out: &mut Vec<u8>) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        encode_into(item, out);
    }
}

/// Decode a single value occupying the whole input.
pub fn decode_value(input: &[u8]) -> IngestResult<AdmValue> {
    let mut r = Reader { buf: input, pos: 0 };
    let v = r.value()?;
    if r.pos != input.len() {
        return Err(IngestError::Parse(format!(
            "binary ADM: {} trailing bytes after value",
            input.len() - r.pos
        )));
    }
    Ok(v)
}

/// Decode a value from the front of `input`; returns it and the rest.
pub fn decode_prefix(input: &[u8]) -> IngestResult<(AdmValue, &[u8])> {
    let mut r = Reader { buf: input, pos: 0 };
    let v = r.value()?;
    Ok((v, &input[r.pos..]))
}

/// Zero-copy field lookup: return the encoded byte slice of `field` inside an
/// encoded record, without materializing any `AdmValue`.
///
/// The scan path uses this to pull one column out of an uncompacted record:
/// every sibling field is *skipped* (length arithmetic only, no allocation),
/// so the cost is proportional to the record's byte length, not its value
/// tree. Returns `Ok(None)` when the record does not carry the field, and an
/// error when `record` is not an encoded record at all.
pub fn record_field_slice<'a>(record: &'a [u8], field: &str) -> IngestResult<Option<&'a [u8]>> {
    let mut r = Reader {
        buf: record,
        pos: 0,
    };
    if r.u8()? != TAG_RECORD {
        return Err(r.err("field lookup on non-record value"));
    }
    let n = r.count()?;
    for _ in 0..n {
        let name = r.str_slice()?;
        let start = r.pos;
        r.skip_value()?;
        if name == field.as_bytes() {
            return Ok(Some(&record[start..r.pos]));
        }
    }
    Ok(None)
}

/// Decode a single field out of an encoded record without decoding the rest.
///
/// `decode_field_at(&encode_value(&v), f)` equals `v.field(f).cloned()` for
/// every record `v` whose first occurrence of `f` is at any position — only
/// the requested field's value is materialized. Returns `Ok(None)` for an
/// absent field and an error for a non-record input.
pub fn decode_field_at(record: &[u8], field: &str) -> IngestResult<Option<AdmValue>> {
    match record_field_slice(record, field)? {
        Some(slice) => decode_value(slice).map(Some),
        None => Ok(None),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, msg: &str) -> IngestError {
        IngestError::Parse(format!("binary ADM: {msg} at byte {}", self.pos))
    }

    fn take(&mut self, n: usize) -> IngestResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err("truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> IngestResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> IngestResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> IngestResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> IngestResult<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    fn string(&mut self) -> IngestResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8 in string"))
    }

    /// Raw bytes of a length-prefixed string, without UTF-8 validation or
    /// allocation — used for name comparisons on the zero-copy scan path.
    fn str_slice(&mut self) -> IngestResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Advance past one encoded value without materializing it.
    fn skip_value(&mut self) -> IngestResult<()> {
        match self.u8()? {
            TAG_NULL | TAG_MISSING => Ok(()),
            TAG_BOOLEAN => self.take(1).map(|_| ()),
            TAG_INT | TAG_DOUBLE | TAG_DATETIME => self.take(8).map(|_| ()),
            TAG_POINT => self.take(16).map(|_| ()),
            TAG_STRING => self.str_slice().map(|_| ()),
            TAG_ORDERED_LIST | TAG_UNORDERED_LIST => {
                let n = self.count()?;
                for _ in 0..n {
                    self.skip_value()?;
                }
                Ok(())
            }
            TAG_RECORD => {
                let n = self.count()?;
                for _ in 0..n {
                    self.str_slice()?;
                    self.skip_value()?;
                }
                Ok(())
            }
            _ => Err(self.err("unknown type tag")),
        }
    }

    /// Guard collection counts against allocating on garbage: a count can
    /// never exceed the bytes remaining (every element is ≥ 1 byte).
    fn count(&mut self) -> IngestResult<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(self.err("collection count exceeds input"));
        }
        Ok(n)
    }

    fn value(&mut self) -> IngestResult<AdmValue> {
        match self.u8()? {
            TAG_NULL => Ok(AdmValue::Null),
            TAG_MISSING => Ok(AdmValue::Missing),
            TAG_BOOLEAN => match self.u8()? {
                0 => Ok(AdmValue::Boolean(false)),
                1 => Ok(AdmValue::Boolean(true)),
                _ => Err(self.err("invalid boolean byte")),
            },
            TAG_INT => Ok(AdmValue::Int(self.i64()?)),
            TAG_DOUBLE => Ok(AdmValue::Double(self.f64()?)),
            TAG_STRING => Ok(AdmValue::String(self.string()?)),
            TAG_POINT => Ok(AdmValue::Point(self.f64()?, self.f64()?)),
            TAG_DATETIME => Ok(AdmValue::DateTime(self.i64()?)),
            TAG_ORDERED_LIST => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(AdmValue::OrderedList(items))
            }
            TAG_UNORDERED_LIST => {
                let n = self.count()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(AdmValue::UnorderedList(items))
            }
            TAG_RECORD => {
                let n = self.count()?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = self.string()?;
                    let value = self.value()?;
                    fields.push((name, value));
                }
                Ok(AdmValue::Record(fields))
            }
            _ => Err(self.err("unknown type tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet() -> AdmValue {
        AdmValue::record(vec![
            ("id", "t-42".into()),
            ("user", AdmValue::record(vec![("name", "alice".into())])),
            ("location", AdmValue::Point(-71.1, 42.3)),
            ("created_at", AdmValue::DateTime(1_400_000_000_000)),
            ("tags", AdmValue::OrderedList(vec!["a".into(), "b".into()])),
            ("retweets", AdmValue::Int(7)),
            ("score", AdmValue::Double(0.25)),
            ("verified", AdmValue::Boolean(false)),
            ("maybe", AdmValue::Null),
        ])
    }

    #[test]
    fn round_trip_nested_record() {
        let v = tweet();
        let bytes = encode_value(&v);
        assert_eq!(decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn round_trip_preserves_nan_and_infinity() {
        for d in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let bytes = encode_value(&AdmValue::Double(d));
            match decode_value(&bytes).unwrap() {
                AdmValue::Double(back) => assert_eq!(back.to_bits(), d.to_bits()),
                other => panic!("expected double, got {other:?}"),
            }
        }
    }

    #[test]
    fn binary_is_smaller_than_text_for_tweet_sized_records() {
        // a tweet-sized message body: quotes and newlines cost an escape
        // byte each in text but nothing in binary
        let body = "\"hello\"\n".repeat(18);
        let mut v = tweet();
        v.set_field("message_text", AdmValue::string(body));
        let text = crate::print::to_adm_string(&v);
        let bin = encode_value(&v);
        assert!(
            bin.len() < text.len(),
            "binary {} >= text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn decode_rejects_truncation_anywhere() {
        let bytes = encode_value(&tweet());
        for cut in 0..bytes.len() {
            assert!(
                decode_value(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut bytes = encode_value(&AdmValue::Int(1));
        bytes.push(0);
        assert!(decode_value(&bytes).is_err());
        assert!(decode_value(&[0xFF]).is_err());
        assert!(decode_value(&[]).is_err());
        // huge collection count with no elements behind it
        let mut garbage = vec![TAG_ORDERED_LIST];
        garbage.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_value(&garbage).is_err());
    }

    #[test]
    fn decode_field_at_matches_full_decode() {
        let v = tweet();
        let bytes = encode_value(&v);
        let fields = match &v {
            AdmValue::Record(fields) => fields,
            _ => unreachable!(),
        };
        for (name, value) in fields {
            assert_eq!(
                decode_field_at(&bytes, name).unwrap().as_ref(),
                Some(value),
                "field {name}"
            );
        }
        assert_eq!(decode_field_at(&bytes, "absent").unwrap(), None);
    }

    #[test]
    fn decode_field_at_returns_first_occurrence_of_duplicate() {
        let v = AdmValue::Record(vec![
            ("a".into(), AdmValue::Int(1)),
            ("a".into(), AdmValue::Int(2)),
        ]);
        let bytes = encode_value(&v);
        assert_eq!(
            decode_field_at(&bytes, "a").unwrap(),
            Some(AdmValue::Int(1))
        );
    }

    #[test]
    fn decode_field_at_rejects_non_records_and_truncation() {
        assert!(decode_field_at(&encode_value(&AdmValue::Int(3)), "f").is_err());
        let bytes = encode_value(&tweet());
        for cut in 1..bytes.len() {
            // either a clean "absent" (cut before the field) or an error,
            // never a panic or a bogus value
            let _ = decode_field_at(&bytes[..cut], "score");
        }
        assert!(decode_field_at(&bytes[..bytes.len() - 1], "maybe").is_err());
    }

    #[test]
    fn record_field_slice_is_a_subslice() {
        let v = tweet();
        let bytes = encode_value(&v);
        let slice = record_field_slice(&bytes, "user").unwrap().unwrap();
        assert_eq!(
            decode_value(slice).unwrap(),
            AdmValue::record(vec![("name", "alice".into())])
        );
        // zero-copy: the slice points into the original buffer
        let base = bytes.as_ptr() as usize;
        let p = slice.as_ptr() as usize;
        assert!(p >= base && p + slice.len() <= base + bytes.len());
    }

    #[test]
    fn decode_prefix_returns_rest() {
        let mut bytes = encode_value(&AdmValue::Int(5));
        bytes.extend_from_slice(b"rest");
        let (v, rest) = decode_prefix(&bytes).unwrap();
        assert_eq!(v, AdmValue::Int(5));
        assert_eq!(rest, b"rest");
    }
}
