//! The feed pipeline operators.
//!
//! * [`CollectDesc`] — *FeedCollect* (§5.3.1): hosts a feed adaptor
//!   instance, manages its lifecycle, and deposits collected frames into
//!   the feed joint registered at its output. Adaptor creation is deferred
//!   "until there is a request for the operator's output data".
//! * [`IntakeDesc`] — *FeedIntake*: co-located with a joint, subscribes
//!   through the local Feed Manager's search API, and pushes frames
//!   downstream through the policy-governed [`FlowController`]. Hosts the
//!   at-least-once tracker when the policy demands it.
//! * [`AssignDesc`] — *Assign* (the compute stage): applies the
//!   pre-processing UDF to every record and deposits results into the
//!   feed's output joint.
//! * [`StoreDesc`] — the store stage (*IndexInsert*): co-located with a
//!   partition of the target dataset; validates, upserts (WAL first),
//!   meters, and acks.
//!
//! Every unary operator is wrapped in [`MetaFeed`] (§6.1): the sandbox that
//! catches record-level runtime exceptions, logs them, skips the offending
//! record (the frame-slicing recovery of §6.1.1) and terminates the feed
//! only after too many consecutive failures.

use crate::ack::{AckBatch, AckSender, AckTracker};
use crate::adaptor::{AdaptorConfig, AdaptorFactory};
use crate::flow::{ElasticRequest, FlowController};
use crate::joint::{FeedJoint, JointRecv, JointSubscription};
use crate::manager::FeedManager;
use crate::metrics::FeedMetrics;
use crate::policy::IngestionPolicy;
use crate::udf::Udf;
use asterix_adm::{payload_from_value, AdmPayloadExt, AdmType, TypeRegistry};
use asterix_common::sync::{thread as sync_thread, Mutex};
use asterix_common::{
    Counter, DataFrame, FaultKind, FaultPlan, FeedId, FrameBuilder, IngestError, IngestResult,
    NodeId, Record, SimDuration, SimInstant,
};
use asterix_hyracks::executor::{SourceHost, TaskContext, UnaryHost};
use asterix_hyracks::job::{Constraint, OperatorDescriptor};
use asterix_hyracks::operator::{
    FrameWriter, OperatorRuntime, SourceOperator, SourcePoll, StopToken, UnaryOperator,
};
use asterix_storage::Dataset;
use crossbeam_channel::{Receiver, Sender};
use std::sync::Arc;

/// One logged soft failure (§6.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SoftFailureEntry {
    /// When it happened.
    pub at: SimInstant,
    /// Which operator caught it.
    pub operator: String,
    /// The exception message.
    pub message: String,
    /// The offending record's payload, if identifiable.
    pub payload: Option<String>,
}

/// The in-memory error log ("appended to the standard AsterixDB error log
/// file").
pub type SoftFailureLog = Arc<Mutex<Vec<SoftFailureEntry>>>;

/// Empty log.
pub fn new_soft_failure_log() -> SoftFailureLog {
    Arc::new(Mutex::new(Vec::new()))
}

// ---------------------------------------------------------------------------
// Sandbox + MetaFeed
// ---------------------------------------------------------------------------

/// The record-level failure sandbox (§6.1), factored out of [`MetaFeed`] so
/// frame-granular operators (the batch store path) share the exact same
/// semantics: log the exception, skip the offending record, and terminate
/// the feed only after too many *consecutive* failures.
pub struct Sandbox {
    name: String,
    policy: IngestionPolicy,
    metrics: Arc<FeedMetrics>,
    log: SoftFailureLog,
    log_dataset: Option<Arc<Dataset>>,
    clock: asterix_common::SimClock,
    consecutive_failures: usize,
}

impl Sandbox {
    /// A sandbox reporting as operator `name`.
    pub fn new(
        name: impl Into<String>,
        policy: IngestionPolicy,
        metrics: Arc<FeedMetrics>,
        log: SoftFailureLog,
        log_dataset: Option<Arc<Dataset>>,
        clock: asterix_common::SimClock,
    ) -> Self {
        Sandbox {
            name: name.into(),
            policy,
            metrics,
            log,
            log_dataset,
            clock,
            consecutive_failures: 0,
        }
    }

    /// Does the policy allow skipping this error?
    pub fn recoverable(&self, err: &IngestError) -> bool {
        err.is_soft() && self.policy.recover_soft_failure
    }

    /// A record made it through: the consecutive-failure streak is broken.
    pub fn record_ok(&mut self) {
        self.consecutive_failures = 0;
    }

    /// A record failed softly: log it and skip it (the frame-slicing
    /// recovery of §6.1.1), or terminate the feed if the streak is too long.
    pub fn record_soft(&mut self, err: &IngestError, record: &Record) -> IngestResult<()> {
        self.log_soft(err, record);
        self.consecutive_failures += 1;
        if self.consecutive_failures > self.policy.max_consecutive_soft_failures {
            return Err(IngestError::FeedTerminated {
                feed: asterix_common::FeedId(0),
                reason: format!(
                    "{}: {} consecutive soft failures",
                    self.name, self.consecutive_failures
                ),
            });
        }
        Ok(())
    }

    fn log_soft(&mut self, err: &IngestError, record: &Record) {
        self.metrics.soft_failures.add(1);
        let entry = SoftFailureEntry {
            at: self.clock.now(),
            operator: self.name.clone(),
            message: err.to_string(),
            payload: record.payload_str().map(str::to_string),
        };
        // at minimum, append to the error log
        self.log.lock().push(entry.clone());
        // optionally persist to a dedicated dataset
        if self.policy.log_soft_failures_to_dataset {
            if let Some(ds) = &self.log_dataset {
                let rec = asterix_adm::AdmValue::record(vec![
                    (
                        "id",
                        format!(
                            "sf-{}-{}",
                            self.name,
                            self.metrics.get(&self.metrics.soft_failures)
                        )
                        .into(),
                    ),
                    ("at_millis", asterix_adm::AdmValue::Int(entry.at.0 as i64)),
                    ("operator", entry.operator.clone().into()),
                    ("message", entry.message.clone().into()),
                    (
                        "payload",
                        entry
                            .payload
                            .clone()
                            .map(asterix_adm::AdmValue::String)
                            .unwrap_or(asterix_adm::AdmValue::Null),
                    ),
                ]);
                let _ = ds.upsert(&rec);
            }
        }
    }
}

/// The sandbox wrapper (§6.1). Drives a per-record processing function,
/// surviving soft failures by skipping the offending record — the runtime
/// equivalent of slicing the input frame around it.
pub struct MetaFeed<F>
where
    F: FnMut(&Record) -> IngestResult<Option<Record>> + Send,
{
    sandbox: Sandbox,
    process: F,
    on_close: Option<Box<dyn FnMut() + Send>>,
}

impl<F> MetaFeed<F>
where
    F: FnMut(&Record) -> IngestResult<Option<Record>> + Send,
{
    /// Wrap `process` in the sandbox.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        policy: IngestionPolicy,
        metrics: Arc<FeedMetrics>,
        log: SoftFailureLog,
        log_dataset: Option<Arc<Dataset>>,
        clock: asterix_common::SimClock,
        process: F,
        on_close: Option<Box<dyn FnMut() + Send>>,
    ) -> Self {
        MetaFeed {
            sandbox: Sandbox::new(name, policy, metrics, log, log_dataset, clock),
            process,
            on_close,
        }
    }
}

impl<F> UnaryOperator for MetaFeed<F>
where
    F: FnMut(&Record) -> IngestResult<Option<Record>> + Send,
{
    fn next_frame(&mut self, frame: DataFrame, output: &mut dyn FrameWriter) -> IngestResult<()> {
        let mut out = Vec::new();
        for record in frame.records() {
            match (self.process)(record) {
                Ok(Some(r)) => {
                    self.sandbox.record_ok();
                    out.push(r);
                }
                Ok(None) => {
                    self.sandbox.record_ok();
                }
                Err(e) if self.sandbox.recoverable(&e) => {
                    // sandbox: skip past the exception-generating record
                    self.sandbox.record_soft(&e, record)?;
                }
                Err(e) => return Err(e),
            }
        }
        if !out.is_empty() {
            output.next_frame(DataFrame::from_records(out))?;
        }
        Ok(())
    }

    fn close(&mut self, _output: &mut dyn FrameWriter) -> IngestResult<()> {
        if let Some(f) = &mut self.on_close {
            f();
        }
        Ok(())
    }

    fn fail(&mut self) {
        if let Some(f) = &mut self.on_close {
            f();
        }
    }
}

// ---------------------------------------------------------------------------
// FeedCollect
// ---------------------------------------------------------------------------

/// Descriptor for the FeedCollect operator.
pub struct CollectDesc {
    /// The joint id records are published under (the feed's name).
    pub joint_id: String,
    /// Adaptor factory.
    pub factory: Arc<dyn AdaptorFactory>,
    /// Adaptor configuration.
    pub config: AdaptorConfig,
    /// Pinned locations (the controller resolves Count constraints up front
    /// so that failure recovery can substitute individual nodes).
    pub locations: Vec<NodeId>,
    /// Registered `parse.malformed_lines` counter the adaptor instances
    /// count skipped unparseable input into.
    pub malformed_lines: Counter,
}

impl OperatorDescriptor for CollectDesc {
    fn name(&self) -> String {
        format!("FeedCollect({})", self.joint_id)
    }

    fn constraints(&self) -> Constraint {
        Constraint::Locations(self.locations.clone())
    }

    fn instantiate(
        &self,
        ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        let fm = FeedManager::on(&ctx.node);
        let joint = fm.register_joint(&self.joint_id);
        let adaptor = self.factory.create(
            &self.config,
            ctx.partition,
            &ctx.clock,
            &self.malformed_lines,
        )?;
        let source = CollectSource {
            adaptor: Some(adaptor),
            joint,
            node: ctx.node.clone(),
        };
        Ok(OperatorRuntime::Source(Box::new(SourceHost::new(
            Box::new(source),
            output,
        ))))
    }
}

struct CollectSource {
    adaptor: Option<Box<dyn crate::adaptor::FeedAdaptor>>,
    joint: Arc<FeedJoint>,
    node: asterix_hyracks::cluster::NodeHandle,
}

impl SourceOperator for CollectSource {
    fn run(&mut self, _output: &mut dyn FrameWriter, stop: &StopToken) -> IngestResult<()> {
        // defer adaptor use until the output is requested
        while !self.joint.has_subscribers() {
            if stop.is_stopped() || !self.node.is_alive() {
                return Ok(());
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut adaptor = self.adaptor.take().expect("collect runs once");
        let joint = Arc::clone(&self.joint);
        // the builder is shared with a flusher thread so partial frames
        // reach the joint even when the source goes quiet (low-rate feeds)
        let builder = Arc::new(Mutex::new(FrameBuilder::default()));
        let flusher_builder = Arc::clone(&builder);
        let flusher_joint = Arc::clone(&joint);
        let flusher_stop = StopToken::new();
        let flusher_stop2 = flusher_stop.clone();
        let flusher = sync_thread::spawn_named("collect-flusher", move || {
            while !flusher_stop2.is_stopped() {
                std::thread::sleep(std::time::Duration::from_millis(20));
                let partial = flusher_builder.lock().flush();
                if let Some(f) = partial {
                    if flusher_joint.deposit(f).is_err() {
                        return;
                    }
                }
            }
        })
        .map_err(|e| IngestError::Plan(format!("spawn flusher: {e}")))?;
        let emit_builder = Arc::clone(&builder);
        let emit_joint = Arc::clone(&joint);
        let mut emit = |rec: Record| -> IngestResult<()> {
            let full = emit_builder.lock().push(rec);
            if let Some(full) = full {
                emit_joint.deposit(full)?;
            }
            Ok(())
        };
        let result = adaptor.run(&mut emit, stop);
        flusher_stop.stop();
        let _ = flusher.join();
        let rest = builder.lock().flush();
        if let Some(rest) = rest {
            let _ = self.joint.deposit(rest);
        }
        result
    }
}

// ---------------------------------------------------------------------------
// FeedIntake
// ---------------------------------------------------------------------------

/// At-least-once plumbing for an intake partition.
pub struct AckPlumbing {
    /// Per-intake-partition ack receivers.
    pub rxs: Vec<Receiver<AckBatch>>,
    /// Replay timeout.
    pub timeout: SimDuration,
}

/// Descriptor for the FeedIntake operator.
pub struct IntakeDesc {
    /// Joint to subscribe to.
    pub joint_id: String,
    /// Stable subscription key prefix (per-partition keys derive from it).
    pub sub_key: String,
    /// Pinned locations — must coincide with the joint's host nodes.
    pub locations: Vec<NodeId>,
    /// The connection's ingestion policy.
    pub policy: IngestionPolicy,
    /// Shared connection metrics.
    pub metrics: Arc<FeedMetrics>,
    /// Elastic scale-out signal channel.
    pub elastic_tx: Option<Sender<ElasticRequest>>,
    /// Hand-off queue depth (congestion sensor).
    pub flow_capacity: usize,
    /// At-least-once plumbing, when the policy enables it.
    pub ack: Option<Arc<AckPlumbing>>,
    /// Connection key (for elastic requests and zombie state).
    pub connection_key: String,
    /// The owning feed's catalog id (error attribution).
    pub feed: FeedId,
    /// Chaos schedule; due operator-panic events make this intake die hard
    /// (§6.2.3 runtime-exception injection).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl OperatorDescriptor for IntakeDesc {
    fn name(&self) -> String {
        format!("FeedIntake({})", self.joint_id)
    }

    fn constraints(&self) -> Constraint {
        Constraint::Locations(self.locations.clone())
    }

    fn instantiate(
        &self,
        ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        let fm = FeedManager::on(&ctx.node);
        let sub_key = format!("{}#p{}", self.sub_key, ctx.partition);
        let mut flow = FlowController::new(
            self.policy.clone(),
            Arc::clone(&self.metrics),
            output,
            self.flow_capacity,
            self.feed,
            self.connection_key.clone(),
            self.elastic_tx.clone(),
        );
        // adopt any zombie state parked by a previous incarnation (§6.2.2)
        let zombie = fm.take_zombie_state(&sub_key);
        if !zombie.is_empty() {
            flow.adopt_deferred(zombie)?;
        }
        let tracker = match &self.ack {
            Some(plumbing) => {
                let rx = plumbing
                    .rxs
                    .get(ctx.partition)
                    .cloned()
                    .ok_or_else(|| IngestError::Plan("missing ack receiver".into()))?;
                Some(AckTracker::new(
                    ctx.partition as u32,
                    rx,
                    plumbing.timeout,
                    ctx.clock.clone(),
                ))
            }
            None => None,
        };
        Ok(OperatorRuntime::Source(Box::new(IntakeSource {
            joint_id: self.joint_id.clone(),
            sub_key,
            node: ctx.node.clone(),
            clock: ctx.clock.clone(),
            metrics: Arc::clone(&self.metrics),
            flow: Some(flow),
            tracker,
            fault_plan: self.fault_plan.clone(),
            sub: None,
        })))
    }
}

struct IntakeSource {
    joint_id: String,
    sub_key: String,
    node: asterix_hyracks::cluster::NodeHandle,
    clock: asterix_common::SimClock,
    metrics: Arc<FeedMetrics>,
    flow: Option<FlowController>,
    tracker: Option<AckTracker>,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Lazily created on the first scheduler poll (cooperative mode).
    sub: Option<JointSubscription>,
}

/// Frames an intake task pulls off its joint per scheduler slice.
const INTAKE_FRAMES_PER_SLICE: usize = 8;

impl IntakeSource {
    fn fail_with_zombie(&mut self, fm: &Arc<FeedManager>) {
        if let Some(flow) = self.flow.take() {
            let mut deferred = flow.fail();
            // The tracker's unacked records were in the hand-off queue or in
            // flight toward the store when we died — without parking them the
            // successor would never re-emit them and at-least-once would only
            // hold for records the flow controller still had by value.
            if let Some(t) = &self.tracker {
                let pending = t.drain_pending();
                if !pending.is_empty() {
                    deferred.push(DataFrame::from_records(pending));
                }
            }
            fm.save_zombie_state(&self.sub_key, deferred);
        }
    }

    /// Fire any due injected operator panic (§6.2.3): park deferred state
    /// exactly like a real runtime exception unwinding this operator, then
    /// surface a hard error so the job sees the instance die.
    fn chaos_panic_due(&self) -> bool {
        match &self.fault_plan {
            Some(plan) => !plan.take_due(FaultKind::is_operator_event).is_empty(),
            None => false,
        }
    }

    fn track_frame(&self, frame: DataFrame) -> DataFrame {
        match &self.tracker {
            Some(t) => {
                DataFrame::from_records(frame.records().iter().map(|r| t.track(r)).collect())
            }
            None => frame,
        }
    }

    /// Adopt zombie state parked *after* this instance was instantiated.
    ///
    /// Instantiate-time adoption (§6.2.2) only sees frames the predecessor
    /// had already parked. During an elastic rebuild the old job is aborted
    /// asynchronously, so it can park its deferred work after the successor
    /// started — and the repartitioning sweep re-parks migrated frames under
    /// this key once the old job has fully exited. Polling from the quiet
    /// paths closes both windows without any cross-job handshake.
    fn adopt_late_zombies(&mut self, fm: &Arc<FeedManager>) -> IngestResult<()> {
        if !fm.has_zombie_state(&self.sub_key) {
            return Ok(());
        }
        let zombie = fm.take_zombie_state(&self.sub_key);
        if zombie.is_empty() {
            return Ok(());
        }
        let flow = self.flow.as_mut().expect("flow active");
        flow.adopt_deferred(zombie)
    }

    fn handle_acks_and_replays(&mut self) -> IngestResult<()> {
        let due = match &self.tracker {
            Some(t) => {
                t.process_acks();
                t.due_replays()
            }
            None => return Ok(()),
        };
        if !due.is_empty() {
            self.metrics.records_replayed.add(due.len() as u64);
            let flow = self.flow.as_mut().expect("flow active");
            flow.offer(DataFrame::from_records(due))?;
        }
        Ok(())
    }
}

impl SourceOperator for IntakeSource {
    fn run(&mut self, _output: &mut dyn FrameWriter, stop: &StopToken) -> IngestResult<()> {
        let fm = FeedManager::on(&self.node);
        let joint = fm.search_joint(&self.joint_id).ok_or_else(|| {
            IngestError::Plan(format!(
                "no joint '{}' on node {}",
                self.joint_id,
                self.node.id()
            ))
        })?;
        let sub = joint.subscribe(self.sub_key.clone());
        let poll = SimDuration::from_millis(100);
        loop {
            if !self.node.is_alive() {
                // hard failure of this node: vanish (state on this node is
                // lost with the node)
                self.flow = None;
                return Err(IngestError::NodeFailed(self.node.id()));
            }
            match stop.mode() {
                asterix_hyracks::operator::StopMode::Running => {}
                asterix_hyracks::operator::StopMode::Graceful => {
                    // graceful disconnect: drain and leave
                    sub.unsubscribe();
                    let flow = self.flow.take().expect("flow active");
                    return flow.finish();
                }
                asterix_hyracks::operator::StopMode::Abandon => {
                    // pipeline rebuild: park deferred work and exit while
                    // the subscription keeps buffering for the successor
                    self.fail_with_zombie(&fm);
                    return Ok(());
                }
            }
            if self.chaos_panic_due() {
                self.fail_with_zombie(&fm);
                return Err(IngestError::Disconnected(
                    "chaos: injected operator panic".into(),
                ));
            }
            // adopt re-parked state every iteration, busy or not: migrated
            // frames must not wait for the stream to dry up
            if let Err(e) = self.adopt_late_zombies(&fm) {
                self.fail_with_zombie(&fm);
                return Err(e);
            }
            match sub.recv(&self.clock, poll) {
                JointRecv::Frame(frame) => {
                    self.metrics.records_in.add(frame.len() as u64);
                    let frame = self.track_frame(frame);
                    let flow = self.flow.as_mut().expect("flow active");
                    match flow.offer(frame) {
                        Ok(()) => {}
                        Err(e @ IngestError::FeedTerminated { .. }) => {
                            sub.unsubscribe();
                            self.flow = None;
                            return Err(e);
                        }
                        Err(e) => {
                            // downstream died: park state, keep the
                            // subscription buffering for the rebuild
                            self.fail_with_zombie(&fm);
                            return Err(e);
                        }
                    }
                }
                JointRecv::Timeout => {
                    let flow = self.flow.as_mut().expect("flow active");
                    if let Err(e) = flow.drain_deferred() {
                        self.fail_with_zombie(&fm);
                        return Err(e);
                    }
                    if let Err(e) = self.handle_acks_and_replays() {
                        self.fail_with_zombie(&fm);
                        return Err(e);
                    }
                }
                JointRecv::Retired => {
                    let flow = self.flow.take().expect("flow active");
                    return flow.finish();
                }
            }
        }
    }

    fn cooperative(&self) -> bool {
        true
    }

    /// One scheduler slice of intake work: pull a bounded batch of frames
    /// off the joint subscription and offer them to the flow controller.
    /// Replaces the thread-parking loop in [`IntakeSource::run`] — an idle
    /// intake costs a queued task, not a blocked OS thread.
    fn poll_produce(
        &mut self,
        _output: &mut dyn FrameWriter,
        stop: &StopToken,
    ) -> IngestResult<SourcePoll> {
        let fm = FeedManager::on(&self.node);
        if self.sub.is_none() {
            let joint = fm.search_joint(&self.joint_id).ok_or_else(|| {
                IngestError::Plan(format!(
                    "no joint '{}' on node {}",
                    self.joint_id,
                    self.node.id()
                ))
            })?;
            self.sub = Some(joint.subscribe(self.sub_key.clone()));
        }
        if !self.node.is_alive() {
            // hard failure of this node: vanish (state on this node is
            // lost with the node)
            self.flow = None;
            return Err(IngestError::NodeFailed(self.node.id()));
        }
        match stop.mode() {
            asterix_hyracks::operator::StopMode::Running => {}
            asterix_hyracks::operator::StopMode::Graceful => {
                // graceful disconnect: drain and leave
                if let Some(sub) = self.sub.take() {
                    sub.unsubscribe();
                }
                let flow = self.flow.take().expect("flow active");
                flow.finish()?;
                return Ok(SourcePoll::Done);
            }
            asterix_hyracks::operator::StopMode::Abandon => {
                // pipeline rebuild: park deferred work and exit while
                // the subscription keeps buffering for the successor
                self.fail_with_zombie(&fm);
                return Ok(SourcePoll::Done);
            }
        }
        if self.chaos_panic_due() {
            self.fail_with_zombie(&fm);
            return Err(IngestError::Disconnected(
                "chaos: injected operator panic".into(),
            ));
        }
        // adopt re-parked state on every slice, busy or quiet: under a
        // sustained load a successor intake may not see a quiet slice for
        // the lifetime of the ramp, and migrated frames must not wait for
        // the stream to dry up (the probe is one map lookup)
        if let Err(e) = self.adopt_late_zombies(&fm) {
            self.fail_with_zombie(&fm);
            return Err(e);
        }
        let mut produced = false;
        for _ in 0..INTAKE_FRAMES_PER_SLICE {
            let recv = self.sub.as_ref().expect("subscribed above").try_recv();
            match recv {
                Some(JointRecv::Frame(frame)) => {
                    produced = true;
                    self.metrics.records_in.add(frame.len() as u64);
                    let frame = self.track_frame(frame);
                    let flow = self.flow.as_mut().expect("flow active");
                    match flow.offer(frame) {
                        Ok(()) => {}
                        Err(e @ IngestError::FeedTerminated { .. }) => {
                            if let Some(sub) = self.sub.take() {
                                sub.unsubscribe();
                            }
                            self.flow = None;
                            return Err(e);
                        }
                        Err(e) => {
                            // downstream died: park state, keep the
                            // subscription buffering for the rebuild
                            self.fail_with_zombie(&fm);
                            return Err(e);
                        }
                    }
                }
                Some(JointRecv::Retired) => {
                    let flow = self.flow.take().expect("flow active");
                    flow.finish()?;
                    return Ok(SourcePoll::Done);
                }
                Some(JointRecv::Timeout) | None => break,
            }
        }
        if produced {
            return Ok(SourcePoll::Produced);
        }
        // quiet slice: the same housekeeping the thread loop did on timeout
        let flow = self.flow.as_mut().expect("flow active");
        if let Err(e) = flow.drain_deferred() {
            self.fail_with_zombie(&fm);
            return Err(e);
        }
        if let Err(e) = self.handle_acks_and_replays() {
            self.fail_with_zombie(&fm);
            return Err(e);
        }
        Ok(SourcePoll::Idle)
    }
}

// ---------------------------------------------------------------------------
// Assign (compute stage)
// ---------------------------------------------------------------------------

/// Descriptor for the Assign operator applying a UDF.
pub struct AssignDesc {
    /// The UDF to apply per record.
    pub udf: Udf,
    /// Joint id registered at the operator's output
    /// (`<feed>:f1:...:fN`).
    pub out_joint_id: String,
    /// Pinned compute locations.
    pub locations: Vec<NodeId>,
    /// Connection policy (sandbox settings).
    pub policy: IngestionPolicy,
    /// Shared metrics.
    pub metrics: Arc<FeedMetrics>,
    /// Soft-failure log.
    pub log: SoftFailureLog,
    /// Optional dataset for persisted failure logging.
    pub log_dataset: Option<Arc<Dataset>>,
    /// Busy-spin iterations added per record (models the §7.1 "expensive
    /// UDF" knob orthogonally to the UDF itself; usually 0).
    pub extra_spin: u64,
    /// Sleep (µs) added per record: models a fixed per-node processing
    /// capacity of `1e6/extra_delay_us` records/s *without* consuming host
    /// CPU, so capacity scales with instance count even on few physical
    /// cores (the Fig 5.16 scalability substitution — see DESIGN.md).
    pub extra_delay_us: u64,
}

impl OperatorDescriptor for AssignDesc {
    fn name(&self) -> String {
        format!("Assign({})", self.udf.name)
    }

    fn constraints(&self) -> Constraint {
        Constraint::Locations(self.locations.clone())
    }

    fn instantiate(
        &self,
        ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        let fm = FeedManager::on(&ctx.node);
        let joint = fm.register_joint(&self.out_joint_id);
        let udf = self.udf.clone();
        let metrics = Arc::clone(&self.metrics);
        let extra_spin = self.extra_spin;
        let extra_delay_us = self.extra_delay_us;
        let process = move |rec: &Record| -> IngestResult<Option<Record>> {
            // shared parse: a cache hit when the adaptor seeded the payload,
            // an attributed miss for despilled or externally-built records
            let value = rec
                .payload
                .adm_value_counted(metrics.parse_calls.as_atomic())
                .map_err(|e| IngestError::soft(e.to_string()))?;
            if extra_delay_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(extra_delay_us));
            }
            if extra_spin > 0 {
                let mut acc = 0u64;
                for i in 0..extra_spin {
                    acc = acc.wrapping_add(i).rotate_left(1);
                }
                std::hint::black_box(acc);
            }
            let out = udf.apply(&value)?;
            // a UDF returning `missing` filters the record out — the basis
            // of the publish-subscribe use case (§8.2), where subscriptions
            // are predicate feeds
            if matches!(out, asterix_adm::AdmValue::Missing) {
                return Ok(None);
            }
            metrics.records_computed.add(1);
            // UDF output is a true materialization boundary: serialize the
            // new value once, seeding the cache so the store never re-parses
            Ok(Some(Record {
                id: rec.id,
                adaptor: rec.adaptor,
                gen_at: rec.gen_at,
                payload: payload_from_value(out),
            }))
        };
        let meta = MetaFeed::new(
            self.name(),
            self.policy.clone(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.log),
            self.log_dataset.clone(),
            ctx.clock.clone(),
            process,
            None,
        );
        // data goes to the joint; the job edge carries only the close signal
        let writer = JointWriter {
            joint,
            close_path: output,
        };
        Ok(OperatorRuntime::Unary(Box::new(UnaryHost::new(
            Box::new(meta),
            Box::new(writer),
        ))))
    }
}

/// Writer depositing frames into a joint while propagating lifecycle events
/// down the job edge.
struct JointWriter {
    joint: Arc<FeedJoint>,
    close_path: Box<dyn FrameWriter>,
}

impl FrameWriter for JointWriter {
    fn open(&mut self) -> IngestResult<()> {
        self.close_path.open()
    }

    fn next_frame(&mut self, frame: DataFrame) -> IngestResult<()> {
        self.joint.deposit(frame)
    }

    fn close(&mut self) -> IngestResult<()> {
        self.close_path.close()
    }

    fn fail(&mut self) {
        self.close_path.fail();
    }
}

// ---------------------------------------------------------------------------
// Route stage (ingestion plans)
// ---------------------------------------------------------------------------

/// Descriptor for the routing operator of a multi-sink ingestion plan: it
/// subscribes (through an [`IntakeDesc`] upstream) to the plan's tail feed
/// joint, evaluates every sink's routing predicate **once** per record
/// against the lazy parse cache, and deposits each record into the joints
/// of the sinks it matched. Each out joint is consumed by an independent
/// store pipeline with its own policy, flow control and custody.
pub struct RouteDesc {
    /// The compiled plan whose [`IngestPlan::route_record`] drives fan-out.
    ///
    /// [`IngestPlan::route_record`]: crate::plan::IngestPlan::route_record
    pub plan: Arc<crate::plan::IngestPlan>,
    /// Joint ids registered at the operator's outputs, one per sink
    /// (`plan:<plan>:<dataset>`), index-aligned with the plan's sinks.
    pub out_joints: Vec<String>,
    /// Pinned locations (the in-joint's nodes; routing never repartitions).
    pub locations: Vec<NodeId>,
    /// Trunk metrics (parse-cache miss attribution).
    pub metrics: Arc<FeedMetrics>,
    /// Per-sink `plan.sink.records_routed` counters, index-aligned with
    /// `out_joints`.
    pub routed: Vec<asterix_common::Counter>,
    /// `plan.route.no_match_total`: records that matched no sink (possible
    /// only without an `otherwise` arm) or whose payload failed to parse.
    pub no_match: asterix_common::Counter,
}

impl OperatorDescriptor for RouteDesc {
    fn name(&self) -> String {
        format!("Route({})", self.plan.name)
    }

    fn constraints(&self) -> Constraint {
        Constraint::Locations(self.locations.clone())
    }

    fn instantiate(
        &self,
        ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        let fm = FeedManager::on(&ctx.node);
        let outputs: Vec<Box<dyn FrameWriter>> = self
            .out_joints
            .iter()
            .zip(&self.routed)
            .map(|(oj, routed)| {
                Box::new(CountingJointWriter {
                    joint: fm.register_joint(oj),
                    routed: routed.clone(),
                }) as Box<dyn FrameWriter>
            })
            .collect();
        let plan = Arc::clone(&self.plan);
        let parse_calls = self.metrics.parse_calls.clone();
        let no_match = self.no_match.clone();
        let route_fn = Arc::new(move |rec: &Record| -> Vec<usize> {
            // one predicate evaluation pass per record, against the shared
            // parse cache (a hit when the adaptor seeded the payload)
            match rec.payload.adm_value_counted(parse_calls.as_atomic()) {
                Ok(value) => {
                    let targets = plan.route_record(&value, rec.gen_at);
                    if targets.is_empty() {
                        no_match.inc();
                    }
                    targets
                }
                Err(_) => {
                    // unparseable records cannot be routed; count them with
                    // the no-match family rather than killing the trunk
                    no_match.inc();
                    Vec::new()
                }
            }
        });
        let router = asterix_hyracks::operator::RouterOperator::new(route_fn, outputs);
        Ok(OperatorRuntime::Unary(Box::new(UnaryHost::new(
            Box::new(router),
            output,
        ))))
    }
}

/// Writer depositing frames into one sink's joint while metering routed
/// records. Unlike [`JointWriter`] there is no close path: the router's
/// host output carries the job-edge lifecycle, and the out joints are
/// retired by the controller when the plan is dismantled.
struct CountingJointWriter {
    joint: Arc<FeedJoint>,
    routed: asterix_common::Counter,
}

impl FrameWriter for CountingJointWriter {
    fn open(&mut self) -> IngestResult<()> {
        Ok(())
    }

    fn next_frame(&mut self, frame: DataFrame) -> IngestResult<()> {
        self.routed.add(frame.len() as u64);
        self.joint.deposit(frame)
    }

    fn close(&mut self) -> IngestResult<()> {
        Ok(())
    }

    fn fail(&mut self) {}
}

// ---------------------------------------------------------------------------
// Store stage
// ---------------------------------------------------------------------------

/// Ack emission plumbing for the store stage.
pub struct StoreAck {
    /// Per-intake-partition ack senders.
    pub txs: Vec<Sender<AckBatch>>,
    /// Grouping window.
    pub window: SimDuration,
}

/// Descriptor for the store (IndexInsert) operator.
pub struct StoreDesc {
    /// Target dataset.
    pub dataset: Arc<Dataset>,
    /// Type registry for record validation; `None` skips validation.
    pub registry: Option<Arc<TypeRegistry>>,
    /// Connection policy.
    pub policy: IngestionPolicy,
    /// Shared metrics.
    pub metrics: Arc<FeedMetrics>,
    /// Soft-failure log.
    pub log: SoftFailureLog,
    /// Optional dataset for persisted failure logging.
    pub log_dataset: Option<Arc<Dataset>>,
    /// At-least-once ack plumbing.
    pub ack: Option<Arc<StoreAck>>,
}

impl OperatorDescriptor for StoreDesc {
    fn name(&self) -> String {
        format!("IndexInsert({})", self.dataset.config.name)
    }

    fn constraints(&self) -> Constraint {
        // each store instance is co-located with its dataset partition
        Constraint::Locations(self.dataset.config.nodegroup.clone())
    }

    fn instantiate(
        &self,
        ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        let expected = self.dataset.partition_node(ctx.partition);
        if expected != ctx.node.id() {
            return Err(IngestError::Plan(format!(
                "store partition {} must run on {expected}, scheduled on {}",
                ctx.partition,
                ctx.node.id()
            )));
        }
        let store = StoreFeed {
            sandbox: Sandbox::new(
                self.name(),
                self.policy.clone(),
                Arc::clone(&self.metrics),
                Arc::clone(&self.log),
                self.log_dataset.clone(),
                ctx.clock.clone(),
            ),
            partition: self.dataset.partition(ctx.partition),
            datatype: AdmType::Named(self.dataset.config.datatype.clone()),
            registry: self.registry.clone(),
            metrics: Arc::clone(&self.metrics),
            ack_sender: self
                .ack
                .as_ref()
                .map(|a| AckSender::new(a.txs.clone(), a.window, ctx.clock.clone())),
        };
        Ok(OperatorRuntime::Unary(Box::new(UnaryHost::new(
            Box::new(store),
            output,
        ))))
    }
}

/// What became of one record of a store frame before the batch write.
enum StoreFate {
    /// Parse or typecheck rejected it (soft).
    Rejected(IngestError),
    /// Valid; its position in the batch handed to the partition.
    Batched(usize),
}

/// The frame-granular store operator. Per frame: parse + typecheck every
/// record (reusing the shared parse cache), then hand the survivors to the
/// partition in **one** `upsert_batch` call — one partition lock, one
/// multi-entry WAL append — and finally run the §6.1 sandbox bookkeeping
/// over the merged per-record outcomes in arrival order, so soft-failure
/// logging and the consecutive-failure cutoff behave exactly like the old
/// record-at-a-time path.
struct StoreFeed {
    sandbox: Sandbox,
    partition: Arc<asterix_storage::DatasetPartition>,
    datatype: AdmType,
    registry: Option<Arc<TypeRegistry>>,
    metrics: Arc<FeedMetrics>,
    ack_sender: Option<AckSender>,
}

impl UnaryOperator for StoreFeed {
    fn next_frame(&mut self, frame: DataFrame, _output: &mut dyn FrameWriter) -> IngestResult<()> {
        let records = frame.records();
        let mut fates: Vec<StoreFate> = Vec::with_capacity(records.len());
        let mut batch: Vec<Arc<asterix_adm::AdmValue>> = Vec::with_capacity(records.len());
        for rec in records {
            // reuses the parse seeded at the adaptor (or by assign's UDF
            // output); only despilled/externally-built records miss here
            let parsed = rec
                .payload
                .adm_value_counted(self.metrics.parse_calls.as_atomic())
                .map_err(|e| IngestError::soft(e.to_string()))
                .and_then(|value| {
                    if let Some(reg) = &self.registry {
                        reg.check(&value, &self.datatype)
                            .map_err(|e| IngestError::soft(e.to_string()))?;
                    }
                    Ok(value)
                });
            match parsed {
                Ok(value) => {
                    fates.push(StoreFate::Batched(batch.len()));
                    batch.push(value);
                }
                Err(e) => fates.push(StoreFate::Rejected(e)),
            }
        }
        // the group commit: WAL first (one block), then primary + secondary
        // updates, all under one acquisition of the partition lock
        let outcome = self.partition.upsert_batch(&batch)?;
        let mut batch_soft: Vec<Option<IngestError>> = Vec::new();
        batch_soft.resize_with(batch.len(), || None);
        for (j, e) in outcome.soft {
            batch_soft[j] = Some(e);
        }
        for (rec, fate) in records.iter().zip(fates) {
            let soft = match fate {
                StoreFate::Rejected(e) => Some(e),
                StoreFate::Batched(j) => batch_soft[j].take(),
            };
            match soft {
                None => {
                    self.sandbox.record_ok();
                    // the record is durable (post-group-commit): close the
                    // end-to-end lag measurement opened at generation time
                    if let Some(gen_at) = rec.gen_at {
                        self.metrics.lag_from(gen_at);
                    }
                    if let Some(s) = &mut self.ack_sender {
                        s.ack(rec);
                    }
                }
                Some(e) if self.sandbox.recoverable(&e) => {
                    self.sandbox.record_soft(&e, rec)?;
                }
                Some(e) => return Err(e),
            }
        }
        self.metrics.persisted(outcome.committed as u64);
        self.metrics.frames_stored.add(1);
        Ok(())
    }

    fn close(&mut self, _output: &mut dyn FrameWriter) -> IngestResult<()> {
        Ok(())
    }

    fn fail(&mut self) {}
}

/// The hash-partitioning key function for the store connector: hash of the
/// record's primary key (falls back to hashing raw bytes on unparseable
/// payloads — the store's sandbox reports those as soft failures).
///
/// Uses the payload's shared parse cache, so routing a record costs no parse
/// beyond the adaptor's (and caches the parse for the store if the record
/// somehow arrives cold).
pub fn store_key_fn(primary_key: String) -> Arc<dyn Fn(&Record) -> u64 + Send + Sync> {
    Arc::new(move |rec: &Record| {
        match rec.payload.adm_value().ok() {
            Some(v) => match v.field(&primary_key) {
                Some(k) => asterix_adm::hash::hash_value(k),
                None => asterix_adm::hash::hash_value(&v),
            },
            None => {
                // raw-byte hash keeps routing deterministic
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &b in rec.payload.iter() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_common::{RecordId, SimClock};

    fn metrics() -> Arc<FeedMetrics> {
        FeedMetrics::with_default_bucket(SimClock::fast())
    }

    type MetaRig<F> = (MetaFeed<F>, Arc<FeedMetrics>, SoftFailureLog);

    fn meta_with<F>(policy: IngestionPolicy, process: F) -> MetaRig<F>
    where
        F: FnMut(&Record) -> IngestResult<Option<Record>> + Send,
    {
        let m = metrics();
        let log = new_soft_failure_log();
        let meta = MetaFeed::new(
            "test-op",
            policy,
            Arc::clone(&m),
            Arc::clone(&log),
            None,
            SimClock::fast(),
            process,
            None,
        );
        (meta, m, log)
    }

    fn frame_of(payloads: &[&str]) -> DataFrame {
        DataFrame::from_records(
            payloads
                .iter()
                .enumerate()
                .map(|(i, p)| Record::tracked(RecordId(i as u64), 0, p.to_string()))
                .collect(),
        )
    }

    struct CaptureWriter(Vec<DataFrame>);
    impl FrameWriter for CaptureWriter {
        fn open(&mut self) -> IngestResult<()> {
            Ok(())
        }
        fn next_frame(&mut self, f: DataFrame) -> IngestResult<()> {
            self.0.push(f);
            Ok(())
        }
        fn close(&mut self) -> IngestResult<()> {
            Ok(())
        }
        fn fail(&mut self) {}
    }

    #[test]
    fn metafeed_skips_soft_failures_and_logs() {
        let (mut meta, m, log) = meta_with(IngestionPolicy::basic(), |r: &Record| {
            if r.payload_str() == Some("bad") {
                Err(IngestError::soft("cannot parse"))
            } else {
                Ok(Some(r.clone()))
            }
        });
        let mut out = CaptureWriter(Vec::new());
        meta.next_frame(frame_of(&["a", "bad", "b", "bad", "c"]), &mut out)
            .unwrap();
        assert_eq!(out.0[0].len(), 3);
        assert_eq!(m.soft_failures.get(), 2);
        let entries = log.lock();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].operator, "test-op");
        assert_eq!(entries[0].payload.as_deref(), Some("bad"));
    }

    #[test]
    fn metafeed_terminates_after_consecutive_limit() {
        let mut policy = IngestionPolicy::basic();
        policy.max_consecutive_soft_failures = 3;
        let (mut meta, _m, _log) =
            meta_with(policy, |_r: &Record| Err(IngestError::soft("always fails")));
        let mut out = CaptureWriter(Vec::new());
        let err = meta
            .next_frame(frame_of(&["a", "b", "c", "d", "e"]), &mut out)
            .unwrap_err();
        assert!(matches!(err, IngestError::FeedTerminated { .. }), "{err}");
    }

    #[test]
    fn metafeed_success_resets_consecutive_count() {
        let mut policy = IngestionPolicy::basic();
        policy.max_consecutive_soft_failures = 2;
        let (mut meta, _m, _log) = meta_with(policy, |r: &Record| {
            if r.payload_str() == Some("bad") {
                Err(IngestError::soft("x"))
            } else {
                Ok(Some(r.clone()))
            }
        });
        let mut out = CaptureWriter(Vec::new());
        // alternating failures never hit the consecutive limit
        meta.next_frame(
            frame_of(&["bad", "ok", "bad", "ok", "bad", "ok", "bad"]),
            &mut out,
        )
        .unwrap();
    }

    #[test]
    fn metafeed_propagates_soft_error_when_recovery_disabled() {
        let mut policy = IngestionPolicy::basic();
        policy.recover_soft_failure = false;
        let (mut meta, _m, _log) = meta_with(policy, |_r: &Record| Err(IngestError::soft("boom")));
        let mut out = CaptureWriter(Vec::new());
        let err = meta.next_frame(frame_of(&["a"]), &mut out).unwrap_err();
        assert!(err.is_soft());
    }

    #[test]
    fn metafeed_hard_errors_pass_through() {
        let (mut meta, _m, _log) = meta_with(IngestionPolicy::basic(), |_r: &Record| {
            Err(IngestError::Storage("disk on fire".into()))
        });
        let mut out = CaptureWriter(Vec::new());
        let err = meta.next_frame(frame_of(&["a"]), &mut out).unwrap_err();
        assert!(matches!(err, IngestError::Storage(_)));
    }

    #[test]
    fn store_key_fn_routes_by_primary_key() {
        let key_fn = store_key_fn("id".into());
        let r1 = Record::tracked(RecordId(0), 0, "{\"id\":\"a\",\"x\":1}");
        let r2 = Record::tracked(RecordId(1), 0, "{\"id\":\"a\",\"x\":2}");
        let r3 = Record::tracked(RecordId(2), 0, "{\"id\":\"b\",\"x\":1}");
        assert_eq!(key_fn(&r1), key_fn(&r2), "same key, same route");
        assert_ne!(key_fn(&r1), key_fn(&r3));
        // unparseable payloads still route deterministically
        let bad = Record::tracked(RecordId(3), 0, "}{");
        assert_eq!(key_fn(&bad), key_fn(&bad));
    }
}
