//! Declarative ingestion plans: the typed plan IR and its fluent builder.
//!
//! The paper's feeds are strictly linear — one adaptor, one pipeline, one
//! target dataset. An [`IngestPlan`] generalizes that cascade into a DAG
//! (INGESTBASE / the IDEA system's predicate routing): one source, an
//! optional chain of UDF enrichment stages, then a *routing stage* that
//! evaluates per-sink predicates once per record and fans frames out to N
//! sinks, each carrying its own dataset, ingestion policy and durability
//! knobs.
//!
//! The IR is runtime-agnostic: [`IngestPlan::route_record`] is a pure
//! function shared by the routing operator, the `exp_fanout` bench's
//! expected-set computation, and the partition proptests — one evaluator,
//! no drift between what the pipeline does and what the tests assert.
//!
//! Construction goes through [`IngestPlanBuilder`] (the fluent surface;
//! [`crate::builder::FeedBuilder`] is a thin single-sink shim over it) or
//! through the extended AQL DDL (`create feed F ... route to A where
//! <pred>, to B otherwise with policy {...}`), which the `aql` crate
//! compiles into this same IR. The [`crate::controller::FeedController`]
//! compiles a registered plan into a fan-out joint with per-sink store
//! pipelines.

use crate::adaptor::AdaptorConfig;
use crate::catalog::{FeedCatalog, FeedDef, FeedKind};
use crate::controller::{ConnectionId, FeedController};
use asterix_adm::AdmValue;
use asterix_common::{IngestError, SimInstant};
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// PlanError
// ---------------------------------------------------------------------------

/// Typed error taxonomy of the plan API — a superset of the ingestion-policy
/// errors, replacing the `String`-y `IngestError::Metadata` soup the old
/// `FeedBuilder` surface returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan (or feed) name is empty.
    EmptyName,
    /// Neither an adaptor nor a parent feed sources the plan.
    NoSource(String),
    /// Both an adaptor and a parent feed were given.
    TwoSources(String),
    /// Adaptor parameters were given for a parent-sourced plan.
    ParamsOnSecondary(String),
    /// A UDF chain longer than one function reached a single-definition
    /// context (`build()`); `register()` materializes chains instead.
    ChainNeedsRegister {
        /// The plan being built.
        plan: String,
        /// How many functions the chain carries.
        udfs: usize,
    },
    /// The plan routes to no sinks.
    NoSinks(String),
    /// Two sinks target the same dataset.
    DuplicateSink {
        /// The plan being built.
        plan: String,
        /// The dataset named twice.
        dataset: String,
    },
    /// In first-match routing, an arm listed after the catch-all
    /// `otherwise` arm can never fire.
    UnreachableArm {
        /// The plan being built.
        plan: String,
        /// The dataset of the unreachable arm.
        dataset: String,
    },
    /// `connect()` was called on the single-sink surface without a target
    /// dataset.
    NoDataset(String),
    /// A sink names an ingestion policy the catalog does not know.
    UnknownPolicy(String),
    /// An ingestion-policy parameter name no policy understands
    /// (mirrors [`IngestError::PolicyUnknownParam`]).
    UnknownPolicyParam(String),
    /// An ingestion-policy parameter whose value failed validation
    /// (mirrors [`IngestError::PolicyInvalidValue`]).
    InvalidPolicyValue {
        /// The parameter key (Table 4.1 name).
        key: String,
        /// The rejected value, verbatim.
        value: String,
        /// What a valid value would have looked like.
        expected: String,
    },
    /// Catalog lookup or registration failed (unknown dataset / adaptor /
    /// function / feed, duplicate feed, ...).
    Metadata(String),
    /// Any other runtime error surfaced while compiling or connecting the
    /// plan.
    Runtime(IngestError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyName => write!(f, "plan name must be non-empty"),
            PlanError::NoSource(p) => {
                write!(f, "plan '{p}' needs an adaptor or a parent feed")
            }
            PlanError::TwoSources(p) => {
                write!(
                    f,
                    "plan '{p}' cannot have both an adaptor and a parent feed"
                )
            }
            PlanError::ParamsOnSecondary(p) => write!(
                f,
                "plan '{p}': adaptor parameters make no sense on a parent-sourced plan"
            ),
            PlanError::ChainNeedsRegister { plan, udfs } => write!(
                f,
                "plan '{plan}': a single FeedDef carries at most one UDF; \
                 register() materializes a {udfs}-function chain as secondary feeds"
            ),
            PlanError::NoSinks(p) => write!(f, "plan '{p}' routes to no sinks"),
            PlanError::DuplicateSink { plan, dataset } => {
                write!(f, "plan '{plan}' routes to dataset '{dataset}' twice")
            }
            PlanError::UnreachableArm { plan, dataset } => write!(
                f,
                "plan '{plan}': arm for '{dataset}' follows the otherwise arm and can never match"
            ),
            PlanError::NoDataset(p) => {
                write!(f, "feed '{p}': connect() needs into_dataset(...)")
            }
            PlanError::UnknownPolicy(p) => write!(f, "unknown policy '{p}'"),
            PlanError::UnknownPolicyParam(k) => write!(f, "unknown policy parameter '{k}'"),
            PlanError::InvalidPolicyValue {
                key,
                value,
                expected,
            } => write!(
                f,
                "policy parameter {key}: expected {expected}, got '{value}'"
            ),
            PlanError::Metadata(m) => write!(f, "metadata error: {m}"),
            PlanError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<IngestError> for PlanError {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::PolicyUnknownParam(k) => PlanError::UnknownPolicyParam(k),
            IngestError::PolicyInvalidValue {
                key,
                value,
                expected,
            } => PlanError::InvalidPolicyValue {
                key,
                value,
                expected,
            },
            IngestError::Metadata(m) => PlanError::Metadata(m),
            other => PlanError::Runtime(other),
        }
    }
}

impl From<PlanError> for IngestError {
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::UnknownPolicyParam(k) => IngestError::PolicyUnknownParam(k),
            PlanError::InvalidPolicyValue {
                key,
                value,
                expected,
            } => IngestError::PolicyInvalidValue {
                key,
                value,
                expected,
            },
            PlanError::Metadata(m) => IngestError::Metadata(m),
            PlanError::Runtime(e) => e,
            other => IngestError::Metadata(other.to_string()),
        }
    }
}

/// Result alias for the plan API.
pub type PlanResult<T> = Result<T, PlanError>;

// ---------------------------------------------------------------------------
// Routing predicates
// ---------------------------------------------------------------------------

/// A comparison operator of a [`RoutePredicate::Compare`] leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering of `lhs` relative to `rhs`.
    fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with swapped operand sides (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// AQL spelling (`=`, `!=`, `<`, `<=`, `>`, `>=`).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A routing predicate evaluated against a record's parsed ADM value (and,
/// for windowed arms, its generation timestamp). Field paths are nested:
/// `["user", "followers_count"]` descends into sub-records.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutePredicate {
    /// `field <op> literal` — false when the field is absent.
    Compare {
        /// Nested field path.
        field: Vec<String>,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against (total order over ADM values).
        value: AdmValue,
    },
    /// The field path resolves to a value (attribute routing on presence).
    Exists {
        /// Nested field path.
        field: Vec<String>,
    },
    /// Every sub-predicate holds (empty = true).
    All(Vec<RoutePredicate>),
    /// At least one sub-predicate holds (empty = false).
    Any(Vec<RoutePredicate>),
    /// The sub-predicate does not hold.
    Not(Box<RoutePredicate>),
    /// Windowed routing on the record's generation timestamp: matches when
    /// `gen_at mod period < open` — the arm is "open" for the first
    /// `open_millis` of every `period_millis` cycle. Records with no
    /// timestamp never match.
    Window {
        /// Cycle length in sim-milliseconds.
        period_millis: u64,
        /// Open prefix of each cycle in sim-milliseconds.
        open_millis: u64,
    },
}

/// Split a dotted path (`"user.followers_count"`) into path segments.
fn split_path(path: &str) -> Vec<String> {
    path.split('.').map(str::to_string).collect()
}

impl RoutePredicate {
    /// `field <op> value` over a dotted field path.
    pub fn compare(path: &str, op: CmpOp, value: impl Into<AdmValue>) -> RoutePredicate {
        RoutePredicate::Compare {
            field: split_path(path),
            op,
            value: value.into(),
        }
    }

    /// `field = value`.
    pub fn eq(path: &str, value: impl Into<AdmValue>) -> RoutePredicate {
        RoutePredicate::compare(path, CmpOp::Eq, value)
    }

    /// `field < value`.
    pub fn lt(path: &str, value: impl Into<AdmValue>) -> RoutePredicate {
        RoutePredicate::compare(path, CmpOp::Lt, value)
    }

    /// `field > value`.
    pub fn gt(path: &str, value: impl Into<AdmValue>) -> RoutePredicate {
        RoutePredicate::compare(path, CmpOp::Gt, value)
    }

    /// The dotted field path resolves to a value.
    pub fn exists(path: &str) -> RoutePredicate {
        RoutePredicate::Exists {
            field: split_path(path),
        }
    }

    /// Windowed arm: open for the first `open_millis` of every
    /// `period_millis`.
    pub fn window(period_millis: u64, open_millis: u64) -> RoutePredicate {
        RoutePredicate::Window {
            period_millis,
            open_millis,
        }
    }

    /// Conjunction.
    pub fn all(preds: Vec<RoutePredicate>) -> RoutePredicate {
        RoutePredicate::All(preds)
    }

    /// Disjunction.
    pub fn any(preds: Vec<RoutePredicate>) -> RoutePredicate {
        RoutePredicate::Any(preds)
    }

    /// Negation.
    pub fn negate(self) -> RoutePredicate {
        RoutePredicate::Not(Box::new(self))
    }

    /// Walk a nested field path down the value.
    fn lookup<'a>(value: &'a AdmValue, path: &[String]) -> Option<&'a AdmValue> {
        let mut cur = value;
        for seg in path {
            cur = cur.field(seg)?;
        }
        Some(cur)
    }

    /// Does the predicate hold for `value` (generated at `gen_at`)?
    ///
    /// This is *the* evaluator: the routing operator, the bench
    /// expected-set computation and the proptests all call it, so runtime
    /// behaviour and test oracles cannot drift apart.
    pub fn matches(&self, value: &AdmValue, gen_at: Option<SimInstant>) -> bool {
        match self {
            RoutePredicate::Compare {
                field,
                op,
                value: rhs,
            } => match RoutePredicate::lookup(value, field) {
                Some(lhs) => op.holds(lhs.total_cmp(rhs)),
                None => false,
            },
            RoutePredicate::Exists { field } => RoutePredicate::lookup(value, field).is_some(),
            RoutePredicate::All(ps) => ps.iter().all(|p| p.matches(value, gen_at)),
            RoutePredicate::Any(ps) => ps.iter().any(|p| p.matches(value, gen_at)),
            RoutePredicate::Not(p) => !p.matches(value, gen_at),
            RoutePredicate::Window {
                period_millis,
                open_millis,
            } => match gen_at {
                Some(at) if *period_millis > 0 => (at.0 % period_millis) < *open_millis,
                _ => false,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks and routing modes
// ---------------------------------------------------------------------------

/// How arms are combined when several predicates could match one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Arms are evaluated in order and the first matching arm wins; an arm
    /// with no predicate is the catch-all `otherwise`. With an `otherwise`
    /// arm present the arms partition the stream (exhaustive and
    /// non-overlapping).
    #[default]
    FirstMatch,
    /// Every matching arm receives the record (replication); an arm with no
    /// predicate matches everything.
    Multicast,
}

/// One sink of a plan: a target dataset plus the routing arm and the
/// per-sink ingestion policy (with optional durability-knob overrides)
/// delivering into it.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkSpec {
    /// Target dataset name.
    pub dataset: String,
    /// The routing arm; `None` is the catch-all `otherwise` (first-match)
    /// or match-everything (multicast) arm.
    pub predicate: Option<RoutePredicate>,
    /// Ingestion-policy name (built-in or catalog-registered).
    pub policy: String,
    /// Per-sink policy parameter overrides (Table 4.1 keys, e.g.
    /// `at.least.once.enabled`, `max.spill.size.on.disk`).
    pub policy_params: BTreeMap<String, String>,
}

impl SinkSpec {
    /// A sink delivering every record reaching it into `dataset` under the
    /// `Basic` policy.
    pub fn to(dataset: impl Into<String>) -> SinkSpec {
        SinkSpec {
            dataset: dataset.into(),
            predicate: None,
            policy: "Basic".into(),
            policy_params: BTreeMap::new(),
        }
    }

    /// Attach the routing predicate of this arm.
    pub fn route(mut self, predicate: RoutePredicate) -> SinkSpec {
        self.predicate = Some(predicate);
        self
    }

    /// Mark this arm as the catch-all (`otherwise`) arm. A readability
    /// no-op: an arm without a predicate is already the catch-all.
    pub fn otherwise(mut self) -> SinkSpec {
        self.predicate = None;
        self
    }

    /// Choose the sink's ingestion policy.
    pub fn policy(mut self, name: impl Into<String>) -> SinkSpec {
        self.policy = name.into();
        self
    }

    /// Override one policy parameter for this sink only (durability knobs
    /// like `at.least.once.enabled` ride here).
    pub fn policy_param(mut self, key: impl Into<String>, value: impl Into<String>) -> SinkSpec {
        self.policy_params.insert(key.into(), value.into());
        self
    }
}

// ---------------------------------------------------------------------------
// The plan IR
// ---------------------------------------------------------------------------

/// What sources the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanSource {
    /// An external source through a registered adaptor.
    Adaptor {
        /// Adaptor alias in the `DatasourceAdapter` registry.
        alias: String,
        /// Adaptor configuration parameters.
        config: AdaptorConfig,
    },
    /// Another feed (the plan extends an existing cascade).
    Feed(String),
}

/// The typed ingestion-plan IR: source → UDF stages → routing → N sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestPlan {
    /// Plan name — doubles as the head feed's name.
    pub name: String,
    /// The source.
    pub source: PlanSource,
    /// UDF names applied in order before routing.
    pub stages: Vec<String>,
    /// First-match or multicast arm combination.
    pub mode: RoutingMode,
    /// The sinks, in arm order.
    pub sinks: Vec<SinkSpec>,
}

impl IngestPlan {
    /// Structural validation: non-empty name, exactly one source, at least
    /// one sink, no duplicate sink datasets, and (first-match) no arm after
    /// the catch-all.
    pub fn validate(&self) -> PlanResult<()> {
        if self.name.trim().is_empty() {
            return Err(PlanError::EmptyName);
        }
        if self.sinks.is_empty() {
            return Err(PlanError::NoSinks(self.name.clone()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.sinks {
            if !seen.insert(s.dataset.clone()) {
                return Err(PlanError::DuplicateSink {
                    plan: self.name.clone(),
                    dataset: s.dataset.clone(),
                });
            }
        }
        if self.mode == RoutingMode::FirstMatch {
            if let Some(otherwise_at) = self.sinks.iter().position(|s| s.predicate.is_none()) {
                if let Some(after) = self.sinks.get(otherwise_at + 1) {
                    return Err(PlanError::UnreachableArm {
                        plan: self.name.clone(),
                        dataset: after.dataset.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Indices of the sinks a record routes to. First-match returns at most
    /// one index; multicast returns every matching arm. An empty result
    /// means the record matches no arm (dropped by the router, counted).
    pub fn route_record(&self, value: &AdmValue, gen_at: Option<SimInstant>) -> Vec<usize> {
        match self.mode {
            RoutingMode::FirstMatch => self
                .sinks
                .iter()
                .position(|s| {
                    s.predicate
                        .as_ref()
                        .map(|p| p.matches(value, gen_at))
                        .unwrap_or(true)
                })
                .into_iter()
                .collect(),
            RoutingMode::Multicast => self
                .sinks
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.predicate
                        .as_ref()
                        .map(|p| p.matches(value, gen_at))
                        .unwrap_or(true)
                })
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// True when the plan carries an `otherwise` arm (first-match) — the
    /// condition under which the arms partition the stream.
    pub fn has_otherwise(&self) -> bool {
        self.sinks.iter().any(|s| s.predicate.is_none())
    }

    /// A degenerate plan is the old linear feed: exactly one sink and no
    /// routing predicate. The controller compiles it through the unchanged
    /// single-connection path — zero behavior change for the legacy
    /// `FeedBuilder` surface.
    pub fn is_degenerate(&self) -> bool {
        self.sinks.len() == 1 && self.sinks[0].predicate.is_none()
    }

    /// The name of the tail feed of the materialized UDF chain — the feed
    /// the routing stage (or, degenerate, the store stage) consumes.
    pub fn tail_feed_name(&self) -> String {
        if self.stages.len() > 1 {
            format!("{}#{}", self.name, self.stages.len())
        } else {
            self.name.clone()
        }
    }

    /// The symbolic joint id of sink `i`'s fan-out joint.
    pub fn sink_joint_id(&self, i: usize) -> String {
        format!("plan:{}:{}", self.name, self.sinks[i].dataset)
    }

    /// The metric label of sink `i` (`<plan>:<dataset>`, the `conn` label of
    /// the `plan.sink.*` family).
    pub fn sink_label(&self, i: usize) -> String {
        format!("{}:{}", self.name, self.sinks[i].dataset)
    }
}

// ---------------------------------------------------------------------------
// The fluent builder
// ---------------------------------------------------------------------------

/// Fluent construction of an [`IngestPlan`].
///
/// ```
/// use asterix_feeds::plan::{IngestPlanBuilder, RoutePredicate, SinkSpec};
///
/// let plan = IngestPlanBuilder::new("TweetPlan")
///     .adaptor("TweetGenAdaptor")
///     .param("datasource", "twitter:1")
///     .sink(
///         SinkSpec::to("USTweets")
///             .route(RoutePredicate::eq("country", "US"))
///             .policy("Spill"),
///     )
///     .sink(SinkSpec::to("RestTweets"))
///     .build()
///     .unwrap();
/// assert_eq!(plan.sinks.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IngestPlanBuilder {
    name: String,
    adaptor: Option<String>,
    params: AdaptorConfig,
    parent: Option<String>,
    udfs: Vec<String>,
    mode: RoutingMode,
    sinks: Vec<SinkSpec>,
}

impl IngestPlanBuilder {
    /// Start defining a plan called `name`.
    pub fn new(name: impl Into<String>) -> IngestPlanBuilder {
        IngestPlanBuilder {
            name: name.into(),
            adaptor: None,
            params: AdaptorConfig::new(),
            parent: None,
            udfs: Vec::new(),
            mode: RoutingMode::FirstMatch,
            sinks: Vec::new(),
        }
    }

    /// Source the plan from the named adaptor; mutually exclusive with
    /// [`parent`](IngestPlanBuilder::parent).
    pub fn adaptor(mut self, alias: impl Into<String>) -> IngestPlanBuilder {
        self.adaptor = Some(alias.into());
        self
    }

    /// Add one adaptor configuration parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> IngestPlanBuilder {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Source the plan from another feed; mutually exclusive with
    /// [`adaptor`](IngestPlanBuilder::adaptor).
    pub fn parent(mut self, feed: impl Into<String>) -> IngestPlanBuilder {
        self.parent = Some(feed.into());
        self
    }

    /// Apply a UDF to every record before routing. May be called repeatedly
    /// to build a chain (materialized as secondary feeds by
    /// [`register`](IngestPlanBuilder::register)).
    pub fn udf(mut self, function: impl Into<String>) -> IngestPlanBuilder {
        self.udfs.push(function.into());
        self
    }

    /// Switch routing to multicast (every matching arm receives the
    /// record). Default is first-match.
    pub fn multicast(mut self) -> IngestPlanBuilder {
        self.mode = RoutingMode::Multicast;
        self
    }

    /// Add one sink arm (arm order is evaluation order in first-match
    /// routing).
    pub fn sink(mut self, sink: SinkSpec) -> IngestPlanBuilder {
        self.sinks.push(sink);
        self
    }

    /// The plan name chosen at [`new`](IngestPlanBuilder::new).
    pub fn plan_name(&self) -> &str {
        &self.name
    }

    /// Reconstruct a builder from an existing plan IR (used to register a
    /// plan's feed chain without re-specifying it).
    pub fn from_plan(plan: &IngestPlan) -> IngestPlanBuilder {
        let (adaptor, params, parent) = match &plan.source {
            PlanSource::Adaptor { alias, config } => (Some(alias.clone()), config.clone(), None),
            PlanSource::Feed(parent) => (None, AdaptorConfig::new(), Some(parent.clone())),
        };
        IngestPlanBuilder {
            name: plan.name.clone(),
            adaptor,
            params,
            parent,
            udfs: plan.stages.clone(),
            mode: plan.mode,
            sinks: plan.sinks.clone(),
        }
    }

    fn validate_source(&self) -> PlanResult<()> {
        if self.name.trim().is_empty() {
            return Err(PlanError::EmptyName);
        }
        match (&self.adaptor, &self.parent) {
            (None, None) => Err(PlanError::NoSource(self.name.clone())),
            (Some(_), Some(_)) => Err(PlanError::TwoSources(self.name.clone())),
            (None, Some(_)) if !self.params.is_empty() => {
                Err(PlanError::ParamsOnSecondary(self.name.clone()))
            }
            _ => Ok(()),
        }
    }

    fn source(&self) -> PlanSource {
        match &self.adaptor {
            Some(alias) => PlanSource::Adaptor {
                alias: alias.clone(),
                config: self.params.clone(),
            },
            None => PlanSource::Feed(self.parent.clone().expect("validated")),
        }
    }

    fn head_kind(&self) -> FeedKind {
        match self.source() {
            PlanSource::Adaptor { alias, config } => FeedKind::Primary {
                adaptor: alias,
                config,
            },
            PlanSource::Feed(parent) => FeedKind::Secondary { parent },
        }
    }

    /// Validate and produce the plan IR (without touching any catalog).
    pub fn build(self) -> PlanResult<IngestPlan> {
        self.validate_source()?;
        let source = self.source();
        let plan = IngestPlan {
            name: self.name,
            source,
            stages: self.udfs,
            mode: self.mode,
            sinks: self.sinks,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Validate and produce a single [`FeedDef`] — the legacy `FeedBuilder`
    /// build surface. Rejects UDF chains longer than one function, which a
    /// single definition cannot carry.
    pub fn build_feed_def(self) -> PlanResult<FeedDef> {
        self.validate_source()?;
        if self.udfs.len() > 1 {
            return Err(PlanError::ChainNeedsRegister {
                plan: self.name.clone(),
                udfs: self.udfs.len(),
            });
        }
        let kind = self.head_kind();
        Ok(FeedDef {
            name: self.name,
            kind,
            udf: self.udfs.into_iter().next(),
        })
    }

    /// Register the plan's feed chain in `catalog` (the named head feed plus
    /// `<name>#2..#N` secondaries for a chain of N UDFs) and return the
    /// *tail* definition — the feed the routing or store stage consumes.
    pub fn register_feeds(&self, catalog: &FeedCatalog) -> PlanResult<FeedDef> {
        self.validate_source()?;
        let head = FeedDef {
            name: self.name.clone(),
            kind: self.head_kind(),
            udf: self.udfs.first().cloned(),
        };
        catalog.create_feed(head.clone())?;
        let mut tail = head;
        for (i, udf) in self.udfs.iter().enumerate().skip(1) {
            let link = FeedDef {
                name: format!("{}#{}", self.name, i + 1),
                kind: FeedKind::Secondary {
                    parent: tail.name.clone(),
                },
                udf: Some(udf.clone()),
            };
            catalog.create_feed(link.clone())?;
            tail = link;
        }
        Ok(tail)
    }

    /// Build the plan, register its feed chain and the plan itself in
    /// `catalog`, and return the plan.
    pub fn register(self, catalog: &FeedCatalog) -> PlanResult<IngestPlan> {
        let plan = self.clone().build()?;
        self.register_feeds(catalog)?;
        catalog.register_plan(plan.clone())?;
        Ok(plan)
    }

    /// Register in `catalog`, then compile and connect the plan through the
    /// controller: one fan-out joint, one store pipeline per sink, each with
    /// its own policy, flow control and at-least-once custody. Returns the
    /// per-sink connection ids in arm order.
    pub fn connect(
        self,
        catalog: &FeedCatalog,
        controller: &FeedController,
    ) -> PlanResult<Vec<ConnectionId>> {
        let plan = self.register(catalog)?;
        controller.connect_plan(&plan).map_err(PlanError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(country: &str, followers: i64) -> AdmValue {
        AdmValue::record(vec![
            ("id", "1-1".into()),
            ("country", country.into()),
            (
                "user",
                AdmValue::record(vec![("followers_count", AdmValue::Int(followers))]),
            ),
        ])
    }

    fn three_sink_plan(mode: RoutingMode) -> IngestPlan {
        IngestPlan {
            name: "P".into(),
            source: PlanSource::Adaptor {
                alias: "TweetGenAdaptor".into(),
                config: AdaptorConfig::new(),
            },
            stages: vec![],
            mode,
            sinks: vec![
                SinkSpec::to("US").route(RoutePredicate::eq("country", "US")),
                SinkSpec::to("Popular").route(RoutePredicate::gt("user.followers_count", 1000)),
                SinkSpec::to("Rest"),
            ],
        }
    }

    #[test]
    fn first_match_routes_to_exactly_one_sink() {
        let plan = three_sink_plan(RoutingMode::FirstMatch);
        plan.validate().unwrap();
        assert_eq!(plan.route_record(&tweet("US", 5000), None), vec![0]);
        assert_eq!(plan.route_record(&tweet("DE", 5000), None), vec![1]);
        assert_eq!(plan.route_record(&tweet("DE", 10), None), vec![2]);
        assert!(plan.has_otherwise());
    }

    #[test]
    fn multicast_routes_to_every_matching_sink() {
        let plan = three_sink_plan(RoutingMode::Multicast);
        plan.validate().unwrap();
        // the unconditional arm matches everything in multicast
        assert_eq!(plan.route_record(&tweet("US", 5000), None), vec![0, 1, 2]);
        assert_eq!(plan.route_record(&tweet("DE", 10), None), vec![2]);
    }

    #[test]
    fn missing_fields_never_match_compare() {
        let p = RoutePredicate::gt("user.followers_count", 10);
        let rec = AdmValue::record(vec![("id", "x".into())]);
        assert!(!p.matches(&rec, None));
        assert!(!RoutePredicate::exists("user.lang").matches(&rec, None));
        assert!(RoutePredicate::exists("id").matches(&rec, None));
    }

    #[test]
    fn window_predicate_follows_gen_at() {
        let p = RoutePredicate::window(1000, 250);
        assert!(p.matches(&AdmValue::Null, Some(SimInstant(0))));
        assert!(p.matches(&AdmValue::Null, Some(SimInstant(1249))));
        assert!(!p.matches(&AdmValue::Null, Some(SimInstant(250))));
        assert!(!p.matches(&AdmValue::Null, None), "no timestamp, no match");
    }

    #[test]
    fn boolean_combinators_compose() {
        let p = RoutePredicate::all(vec![
            RoutePredicate::eq("country", "US"),
            RoutePredicate::gt("user.followers_count", 100).negate(),
        ]);
        assert!(p.matches(&tweet("US", 50), None));
        assert!(!p.matches(&tweet("US", 500), None));
        assert!(!p.matches(&tweet("DE", 50), None));
        let q = RoutePredicate::any(vec![
            RoutePredicate::eq("country", "US"),
            RoutePredicate::eq("country", "DE"),
        ]);
        assert!(q.matches(&tweet("DE", 0), None));
        assert!(!q.matches(&tweet("FR", 0), None));
    }

    #[test]
    fn validation_catches_structural_errors() {
        let mut plan = three_sink_plan(RoutingMode::FirstMatch);
        plan.name = " ".into();
        assert_eq!(plan.validate(), Err(PlanError::EmptyName));

        let mut plan = three_sink_plan(RoutingMode::FirstMatch);
        plan.sinks.clear();
        assert!(matches!(plan.validate(), Err(PlanError::NoSinks(_))));

        let mut plan = three_sink_plan(RoutingMode::FirstMatch);
        plan.sinks[1].dataset = "US".into();
        assert!(matches!(
            plan.validate(),
            Err(PlanError::DuplicateSink { .. })
        ));

        // an arm after otherwise is unreachable in first-match...
        let mut plan = three_sink_plan(RoutingMode::FirstMatch);
        plan.sinks
            .push(SinkSpec::to("Late").route(RoutePredicate::eq("country", "FR")));
        assert!(matches!(
            plan.validate(),
            Err(PlanError::UnreachableArm { .. })
        ));
        // ...but fine in multicast
        let mut plan = three_sink_plan(RoutingMode::Multicast);
        plan.sinks
            .push(SinkSpec::to("Late").route(RoutePredicate::eq("country", "FR")));
        plan.validate().unwrap();
    }

    #[test]
    fn builder_validates_sources() {
        assert_eq!(
            IngestPlanBuilder::new("").adaptor("A").build().unwrap_err(),
            PlanError::EmptyName
        );
        assert!(matches!(
            IngestPlanBuilder::new("P")
                .sink(SinkSpec::to("D"))
                .build()
                .unwrap_err(),
            PlanError::NoSource(_)
        ));
        assert!(matches!(
            IngestPlanBuilder::new("P")
                .adaptor("A")
                .parent("F")
                .sink(SinkSpec::to("D"))
                .build()
                .unwrap_err(),
            PlanError::TwoSources(_)
        ));
        assert!(matches!(
            IngestPlanBuilder::new("P")
                .parent("F")
                .param("k", "v")
                .sink(SinkSpec::to("D"))
                .build()
                .unwrap_err(),
            PlanError::ParamsOnSecondary(_)
        ));
    }

    #[test]
    fn degenerate_and_tail_naming() {
        let plan = IngestPlanBuilder::new("F")
            .adaptor("A")
            .sink(SinkSpec::to("D"))
            .build()
            .unwrap();
        assert!(plan.is_degenerate());
        assert_eq!(plan.tail_feed_name(), "F");

        let plan = IngestPlanBuilder::new("F")
            .adaptor("A")
            .udf("f")
            .udf("g")
            .udf("h")
            .sink(SinkSpec::to("D"))
            .build()
            .unwrap();
        assert_eq!(plan.tail_feed_name(), "F#3");
        assert_eq!(plan.sink_joint_id(0), "plan:F:D");
        assert_eq!(plan.sink_label(0), "F:D");
    }

    #[test]
    fn plan_error_round_trips_policy_errors() {
        let e = IngestError::PolicyUnknownParam("frobnicate".into());
        let p: PlanError = e.clone().into();
        assert_eq!(p, PlanError::UnknownPolicyParam("frobnicate".into()));
        assert_eq!(IngestError::from(p), e);

        let e = IngestError::PolicyInvalidValue {
            key: "k".into(),
            value: "v".into(),
            expected: "bool".into(),
        };
        let p: PlanError = e.clone().into();
        assert_eq!(IngestError::from(p), e);

        // structural plan errors surface as metadata errors downstream
        let m: IngestError = PlanError::EmptyName.into();
        assert!(matches!(m, IngestError::Metadata(_)));
    }
}
