//! Feed adaptors (Ch. 4.1).
//!
//! "The functionality of establishing a connection with an external data
//! source, receiving, parsing, and translating data into ADM records is
//! contained in a Feed Adaptor ... the Feed Adaptor is treated by the rest
//! of the system as a black box that outputs ADM records." An adaptor's
//! *factory* tells AsterixDB the adaptor's parallelism (the `getConstraints`
//! API of §5.3.1) and builds configured instances.
//!
//! Built-ins:
//! * [`TweetGenAdaptorFactory`] (`TweetGenAdaptor`) — connects to TweetGen
//!   instances at the socket addresses listed in its `datasource`
//!   parameter, one adaptor instance per address (parallel ingestion,
//!   Listing 5.19);
//! * [`SocketAdaptorFactory`] (`socket_adaptor`) — the "generic socket-based
//!   feed adaptor that can be used to ingest data that is directed at a
//!   specified socket address" (§4.1), backed by an in-process channel
//!   registry;
//! * [`FileAdaptorFactory`] (`file_based_feed`) — reads ADM/JSON records
//!   (one per line) from a file, the §5.7.1 "simulated feed" used to compare
//!   batch inserts against feed ingestion;
//! * [`TraceAdaptorFactory`] (`trace_adaptor`) — replays a recorded trace
//!   file of `offset_millis<TAB>payload` lines on the simulation clock,
//!   re-emitting each record at its original offset with its original
//!   generation stamp, so a captured workload reruns deterministically.
//!
//! Adaptors that *skip* unparseable input instead of failing the feed count
//! every skipped line in the connection's registered
//! `parse.malformed_lines` counter (handed to [`AdaptorFactory::create`]),
//! so silent drops at the front door are observable in metrics snapshots.

use asterix_adm::{parse_value, payload_from_value};
use asterix_common::sync::Mutex;
use asterix_common::{
    Counter, FaultKind, FaultPlan, IngestError, IngestResult, Record, SimClock, SimDuration,
};
use asterix_hyracks::job::Constraint;
use asterix_hyracks::operator::StopToken;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Adaptor configuration: the `("key"="value")` pairs of `create feed`.
pub type AdaptorConfig = BTreeMap<String, String>;

/// Emission callback handed to a running adaptor.
pub type EmitFn<'a> = &'a mut dyn FnMut(Record) -> IngestResult<()>;

/// A configured adaptor instance.
pub trait FeedAdaptor: Send {
    /// Fetch/receive records and emit them until the source is exhausted or
    /// `stop` fires. Returning `Ok` ends the feed gracefully; returning an
    /// error signals that reconnection proved futile (§6.2.3, "External
    /// Source Failure") and terminates the feed.
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()>;
}

/// Factory for a named adaptor.
pub trait AdaptorFactory: Send + Sync {
    /// The alias used in `create feed ... using <alias>`.
    fn alias(&self) -> &str;

    /// The §5.3.1 `getConstraints()` API: how many instances, where.
    fn constraints(&self, config: &AdaptorConfig) -> IngestResult<Constraint>;

    /// Build the instance for `partition`. `malformed_lines` is the
    /// connection's registered `parse.malformed_lines` counter: an adaptor
    /// that skips unparseable input rather than failing the feed must count
    /// every skipped line there.
    fn create(
        &self,
        config: &AdaptorConfig,
        partition: usize,
        clock: &SimClock,
        malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>>;
}

fn parse_datasource_list(config: &AdaptorConfig, key: &str) -> IngestResult<Vec<String>> {
    let raw = config
        .get(key)
        .ok_or_else(|| IngestError::Config(format!("adaptor requires '{key}' parameter")))?;
    let addrs: Vec<String> = raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(IngestError::Config(format!("'{key}' lists no addresses")));
    }
    Ok(addrs)
}

/// Translate one external JSON/ADM line into a canonical ADM record
/// payload. Malformed input yields a parse error the adaptor may skip.
///
/// This is the *one* parse on the happy path: the payload's shared cache is
/// seeded with the parsed value here, so assign, the partitioner key
/// function, type checking and the store all reuse it instead of re-parsing.
fn translate(line: &str, adaptor_instance: u32) -> IngestResult<Record> {
    let value = parse_value(line)?;
    Ok(Record::untracked(
        adaptor_instance,
        payload_from_value(value),
    ))
}

// ---------------------------------------------------------------------------
// TweetGen adaptor
// ---------------------------------------------------------------------------

/// Factory for the TweetGen adaptor.
#[derive(Debug, Default)]
pub struct TweetGenAdaptorFactory;

impl AdaptorFactory for TweetGenAdaptorFactory {
    fn alias(&self) -> &str {
        "TweetGenAdaptor"
    }

    fn constraints(&self, config: &AdaptorConfig) -> IngestResult<Constraint> {
        Ok(Constraint::Count(
            parse_datasource_list(config, "datasource")?.len(),
        ))
    }

    fn create(
        &self,
        config: &AdaptorConfig,
        partition: usize,
        _clock: &SimClock,
        malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>> {
        let addrs = parse_datasource_list(config, "datasource")?;
        let addr = addrs
            .get(partition)
            .ok_or_else(|| {
                IngestError::Plan(format!(
                    "adaptor partition {partition} exceeds datasource list of {}",
                    addrs.len()
                ))
            })?
            .clone();
        Ok(Box::new(TweetGenAdaptor {
            addr,
            instance: partition as u32,
            malformed_lines: malformed_lines.clone(),
        }))
    }
}

struct TweetGenAdaptor {
    addr: String,
    instance: u32,
    malformed_lines: Counter,
}

impl FeedAdaptor for TweetGenAdaptor {
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()> {
        // the initial handshake; a failure here is fatal for the feed
        let rx = tweetgen::connect(&self.addr)?;
        let poll = Duration::from_millis(10);
        loop {
            if stop.is_stopped() {
                return Ok(());
            }
            match rx.recv_timeout(poll) {
                // the wire carries the generation stamp; it rides on the
                // record so the store can derive end-to-end ingestion lag
                Ok(tweet) => match translate(&tweet.json, self.instance) {
                    Ok(rec) => emit(rec.stamped(tweet.gen_at))?,
                    Err(_) => self.malformed_lines.inc(),
                },
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // TweetGen closes the push channel when its pattern
                    // completes (or it was stopped): the feed's data is
                    // exhausted, end gracefully. Recovery from a *transient*
                    // source outage (§6.2.3) is adaptor-specific; TweetGen
                    // has no such failure mode, so no reconnect is attempted
                    // — reconnecting would restart the pattern from zero.
                    return Ok(());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generic socket adaptor
// ---------------------------------------------------------------------------

static SOCKETS: Mutex<Option<HashMap<String, Receiver<String>>>> = Mutex::new(None);

/// Bind an in-process "socket" at `addr` that external producers can push
/// lines into; the generic socket adaptor consumes it.
pub fn bind_socket(addr: &str, capacity: usize) -> IngestResult<Sender<String>> {
    let (tx, rx) = crossbeam_channel::bounded(capacity);
    let mut reg = SOCKETS.lock();
    let map = reg.get_or_insert_with(HashMap::new);
    if map.contains_key(addr) {
        return Err(IngestError::Config(format!("socket {addr} already bound")));
    }
    map.insert(addr.to_string(), rx);
    Ok(tx)
}

/// Remove a socket binding.
pub fn unbind_socket(addr: &str) {
    if let Some(map) = SOCKETS.lock().as_mut() {
        map.remove(addr);
    }
}

/// Factory for the generic socket adaptor.
#[derive(Debug, Default)]
pub struct SocketAdaptorFactory;

impl AdaptorFactory for SocketAdaptorFactory {
    fn alias(&self) -> &str {
        "socket_adaptor"
    }

    fn constraints(&self, config: &AdaptorConfig) -> IngestResult<Constraint> {
        Ok(Constraint::Count(
            parse_datasource_list(config, "sockets")?.len(),
        ))
    }

    fn create(
        &self,
        config: &AdaptorConfig,
        partition: usize,
        _clock: &SimClock,
        malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>> {
        let addrs = parse_datasource_list(config, "sockets")?;
        let addr = addrs
            .get(partition)
            .ok_or_else(|| IngestError::Plan("socket partition out of range".into()))?;
        let rx = SOCKETS
            .lock()
            .as_ref()
            .and_then(|m| m.get(addr))
            .cloned()
            .ok_or_else(|| IngestError::Disconnected(format!("no socket bound at {addr}")))?;
        Ok(Box::new(SocketAdaptor {
            rx,
            instance: partition as u32,
            malformed_lines: malformed_lines.clone(),
        }))
    }
}

struct SocketAdaptor {
    rx: Receiver<String>,
    instance: u32,
    malformed_lines: Counter,
}

impl FeedAdaptor for SocketAdaptor {
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()> {
        let poll = Duration::from_millis(10);
        loop {
            if stop.is_stopped() {
                return Ok(());
            }
            match self.rx.recv_timeout(poll) {
                Ok(line) => match translate(&line, self.instance) {
                    Ok(rec) => emit(rec)?,
                    Err(_) => self.malformed_lines.inc(),
                },
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// File adaptor
// ---------------------------------------------------------------------------

/// Factory for the file-based adaptor (Listing 5.16's `file_based_feed`).
#[derive(Debug, Default)]
pub struct FileAdaptorFactory;

impl AdaptorFactory for FileAdaptorFactory {
    fn alias(&self) -> &str {
        "file_based_feed"
    }

    fn constraints(&self, _config: &AdaptorConfig) -> IngestResult<Constraint> {
        Ok(Constraint::Count(1))
    }

    fn create(
        &self,
        config: &AdaptorConfig,
        _partition: usize,
        _clock: &SimClock,
        _malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>> {
        let path = config
            .get("path")
            .ok_or_else(|| IngestError::Config("file_based_feed requires 'path'".into()))?
            .clone();
        Ok(Box::new(FileAdaptor { path }))
    }
}

struct FileAdaptor {
    path: String,
}

impl FeedAdaptor for FileAdaptor {
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()> {
        use std::io::BufRead;
        let file = std::fs::File::open(&self.path)
            .map_err(|e| IngestError::Config(format!("open {}: {e}", self.path)))?;
        let mut reader = std::io::BufReader::new(file);
        let mut line = String::new();
        loop {
            if stop.is_stopped() {
                return Ok(());
            }
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| IngestError::Config(format!("read {}: {e}", self.path)))?;
            if n == 0 {
                return Ok(());
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match translate(trimmed, 0) {
                Ok(rec) => emit(rec)?,
                Err(e) => return Err(e), // a corrupt file is not survivable
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace replay adaptor
// ---------------------------------------------------------------------------

/// Factory for the trace-replay adaptor (`trace_adaptor`).
///
/// A trace file holds one record per line as `offset_millis<TAB>payload`:
/// the sim-milliseconds since replay start at which the record originally
/// arrived, then its JSON/ADM text. Replay walks the file on the
/// *simulation clock* — each record is emitted once the clock reaches
/// `start + offset` and is stamped with that instant as its generation
/// time, so ingestion-lag histograms and windowed routing predicates see
/// the recorded timeline, not the replay wall clock. Capturing a live
/// workload into this format ([`write_trace`]) turns any one-off incident
/// into a deterministic, rerunnable experiment.
#[derive(Debug, Default)]
pub struct TraceAdaptorFactory;

impl AdaptorFactory for TraceAdaptorFactory {
    fn alias(&self) -> &str {
        "trace_adaptor"
    }

    fn constraints(&self, config: &AdaptorConfig) -> IngestResult<Constraint> {
        if !config.contains_key("path") {
            return Err(IngestError::Config("trace_adaptor requires 'path'".into()));
        }
        Ok(Constraint::Count(1))
    }

    fn create(
        &self,
        config: &AdaptorConfig,
        partition: usize,
        clock: &SimClock,
        malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>> {
        let path = config
            .get("path")
            .ok_or_else(|| IngestError::Config("trace_adaptor requires 'path'".into()))?
            .clone();
        Ok(Box::new(TraceAdaptor {
            path,
            instance: partition as u32,
            clock: clock.clone(),
            malformed_lines: malformed_lines.clone(),
        }))
    }
}

/// Write `(offset_millis, payload)` pairs as a trace file the
/// [`TraceAdaptorFactory`] can replay. Payloads must be single-line.
pub fn write_trace<'a>(
    path: &std::path::Path,
    records: impl IntoIterator<Item = (u64, &'a str)>,
) -> IngestResult<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(
        std::fs::File::create(path)
            .map_err(|e| IngestError::Config(format!("create {}: {e}", path.display())))?,
    );
    for (offset, payload) in records {
        if payload.contains('\n') {
            return Err(IngestError::Config(
                "trace payloads must be single-line".into(),
            ));
        }
        writeln!(out, "{offset}\t{payload}")
            .map_err(|e| IngestError::Config(format!("write {}: {e}", path.display())))?;
    }
    out.flush()
        .map_err(|e| IngestError::Config(format!("flush {}: {e}", path.display())))
}

struct TraceAdaptor {
    path: String,
    instance: u32,
    clock: SimClock,
    malformed_lines: Counter,
}

impl FeedAdaptor for TraceAdaptor {
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()> {
        use std::io::BufRead;
        let file = std::fs::File::open(&self.path)
            .map_err(|e| IngestError::Config(format!("open {}: {e}", self.path)))?;
        let reader = std::io::BufReader::new(file);
        let start = self.clock.now();
        for line in reader.lines() {
            let line = line.map_err(|e| IngestError::Config(format!("read {}: {e}", self.path)))?;
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            // a line without the offset frame means the *trace* is corrupt
            // (not merely one recorded payload) — that is not survivable
            let (offset, payload) = trimmed.split_once('\t').ok_or_else(|| {
                IngestError::Config(format!("trace {}: line lacks offset<TAB>", self.path))
            })?;
            let offset: u64 = offset.parse().map_err(|_| {
                IngestError::Config(format!("trace {}: bad offset '{offset}'", self.path))
            })?;
            let due = start.plus(SimDuration(offset));
            // sleep toward the record's instant in short slices so a stop
            // request interrupts long recorded gaps promptly
            loop {
                if stop.is_stopped() {
                    return Ok(());
                }
                let now = self.clock.now();
                if now.0 >= due.0 {
                    break;
                }
                self.clock.sleep(SimDuration(due.since(now).0.min(20)));
            }
            // a recorded payload that never parsed is replayed faithfully:
            // skipped and counted, exactly as the live adaptor treated it
            match translate(payload, self.instance) {
                Ok(rec) => emit(rec.stamped(due))?,
                Err(_) => self.malformed_lines.inc(),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chaos wrapper
// ---------------------------------------------------------------------------

/// Decorator installing a [`FaultPlan`] around any adaptor: every emitted
/// record advances the plan's shared record counter (the clock the whole
/// chaos schedule runs on), and a due [`FaultKind::AdaptorDisconnect`]
/// makes the wrapped adaptor stop emitting — the external source hanging
/// up, §6.2.3's "External Source Failure" without a viable reconnect.
///
/// Registered under `chaos:<inner alias>` so chaos experiments opt in per
/// feed while the plain alias keeps working untouched.
pub struct ChaosAdaptorFactory {
    inner: Arc<dyn AdaptorFactory>,
    plan: Arc<FaultPlan>,
    alias: String,
}

impl ChaosAdaptorFactory {
    /// Wrap `inner`, driving (and driven by) `plan`.
    pub fn new(inner: Arc<dyn AdaptorFactory>, plan: Arc<FaultPlan>) -> ChaosAdaptorFactory {
        let alias = format!("chaos:{}", inner.alias());
        ChaosAdaptorFactory { inner, plan, alias }
    }
}

impl AdaptorFactory for ChaosAdaptorFactory {
    fn alias(&self) -> &str {
        &self.alias
    }

    fn constraints(&self, config: &AdaptorConfig) -> IngestResult<Constraint> {
        self.inner.constraints(config)
    }

    fn create(
        &self,
        config: &AdaptorConfig,
        partition: usize,
        clock: &SimClock,
        malformed_lines: &Counter,
    ) -> IngestResult<Box<dyn FeedAdaptor>> {
        Ok(Box::new(ChaosAdaptor {
            inner: self
                .inner
                .create(config, partition, clock, malformed_lines)?,
            plan: Arc::clone(&self.plan),
        }))
    }
}

struct ChaosAdaptor {
    inner: Box<dyn FeedAdaptor>,
    plan: Arc<FaultPlan>,
}

impl FeedAdaptor for ChaosAdaptor {
    fn run(&mut self, emit: EmitFn<'_>, stop: &StopToken) -> IngestResult<()> {
        let plan = Arc::clone(&self.plan);
        let disconnected = std::cell::Cell::new(false);
        let mut wrapped = |rec: Record| -> IngestResult<()> {
            emit(rec)?;
            plan.tick_records(1);
            if !plan.take_due(FaultKind::is_adaptor_event).is_empty() {
                disconnected.set(true);
                // surfacing an error makes any inner adaptor stop promptly
                return Err(IngestError::Disconnected("chaos: source hung up".into()));
            }
            Ok(())
        };
        let result = self.inner.run(&mut wrapped, stop);
        if disconnected.get() {
            // the injected hang-up is an exhausted source, not a feed error
            return Ok(());
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Registry of adaptor factories (the DatasourceAdapter metadata dataset,
/// pre-populated with the built-ins — §5.1).
#[derive(Clone)]
pub struct AdaptorRegistry {
    factories: Arc<Mutex<HashMap<String, Arc<dyn AdaptorFactory>>>>,
}

impl AdaptorRegistry {
    /// Registry holding the built-in adaptors.
    pub fn with_builtins() -> AdaptorRegistry {
        let reg = AdaptorRegistry {
            factories: Arc::new(Mutex::new(HashMap::new())),
        };
        reg.register(Arc::new(TweetGenAdaptorFactory));
        reg.register(Arc::new(SocketAdaptorFactory));
        reg.register(Arc::new(FileAdaptorFactory));
        reg.register(Arc::new(TraceAdaptorFactory));
        reg
    }

    /// Install a (custom) adaptor factory.
    pub fn register(&self, factory: Arc<dyn AdaptorFactory>) {
        self.factories
            .lock()
            .insert(factory.alias().to_string(), factory);
    }

    /// Look up by alias.
    pub fn get(&self, alias: &str) -> IngestResult<Arc<dyn AdaptorFactory>> {
        self.factories
            .lock()
            .get(alias)
            .cloned()
            .ok_or_else(|| IngestError::Metadata(format!("unknown adaptor '{alias}'")))
    }

    /// Registered aliases.
    pub fn aliases(&self) -> Vec<String> {
        self.factories.lock().keys().cloned().collect()
    }
}

impl std::fmt::Debug for AdaptorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AdaptorRegistry({:?})", self.aliases())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tweetgen::{PatternDescriptor, TweetGen, TweetGenConfig};

    fn collect_run(adaptor: &mut dyn FeedAdaptor) -> Vec<Record> {
        let mut out = Vec::new();
        let stop = StopToken::new();
        let mut emit = |r: Record| {
            out.push(r);
            Ok(())
        };
        adaptor.run(&mut emit, &stop).unwrap();
        out
    }

    #[test]
    fn registry_has_builtins() {
        let reg = AdaptorRegistry::with_builtins();
        assert!(reg.get("TweetGenAdaptor").is_ok());
        assert!(reg.get("socket_adaptor").is_ok());
        assert!(reg.get("file_based_feed").is_ok());
        assert!(reg.get("trace_adaptor").is_ok());
        assert!(matches!(
            reg.get("CNNAdaptor"),
            Err(IngestError::Metadata(_))
        ));
    }

    #[test]
    fn tweetgen_adaptor_constraints_follow_datasource_list() {
        let f = TweetGenAdaptorFactory;
        let mut cfg = AdaptorConfig::new();
        cfg.insert("datasource".into(), "a:1, b:2 ,c:3".into());
        assert_eq!(f.constraints(&cfg).unwrap(), Constraint::Count(3));
        assert!(f.constraints(&AdaptorConfig::new()).is_err());
        let mut empty = AdaptorConfig::new();
        empty.insert("datasource".into(), " , ".into());
        assert!(f.constraints(&empty).is_err());
    }

    #[test]
    fn tweetgen_adaptor_receives_and_translates() {
        let clock = SimClock::with_scale(10.0);
        let g = TweetGen::bind(
            TweetGenConfig::new("adap:9000", 0, PatternDescriptor::constant(200, 2)),
            clock.clone(),
        )
        .unwrap();
        let mut cfg = AdaptorConfig::new();
        cfg.insert("datasource".into(), "adap:9000".into());
        let mut adaptor = TweetGenAdaptorFactory
            .create(&cfg, 0, &clock, &Counter::new())
            .unwrap();
        let records = collect_run(adaptor.as_mut());
        assert!(records.len() > 100, "got {}", records.len());
        // payload is canonical ADM, reparseable, with an id field
        let v = parse_value(records[0].payload_str().unwrap()).unwrap();
        assert!(v.field("id").is_some());
        assert!(!records[0].is_tracked());
        g.stop();
    }

    #[test]
    fn socket_adaptor_skips_and_counts_malformed_lines() {
        let tx = bind_socket("sock:1", 16).unwrap();
        tx.send("{\"id\":\"a\"}".into()).unwrap();
        tx.send("not adm at all {{{".into()).unwrap();
        tx.send("{\"id\":\"b\"}".into()).unwrap();
        drop(tx);
        let mut cfg = AdaptorConfig::new();
        cfg.insert("sockets".into(), "sock:1".into());
        let malformed = Counter::new();
        let mut adaptor = SocketAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &malformed)
            .unwrap();
        let records = collect_run(adaptor.as_mut());
        assert_eq!(records.len(), 2);
        // the skipped line is visible, not silently dropped
        assert_eq!(malformed.get(), 1);
        unbind_socket("sock:1");
    }

    #[test]
    fn socket_double_bind_rejected() {
        let _tx = bind_socket("sock:2", 4).unwrap();
        assert!(bind_socket("sock:2", 4).is_err());
        unbind_socket("sock:2");
    }

    #[test]
    fn file_adaptor_reads_records() {
        let dir = std::env::temp_dir();
        let path = dir.join("asterix_file_adaptor_test.adm");
        std::fs::write(&path, "{\"id\":\"a\",\"x\":1}\n\n{\"id\":\"b\",\"x\":2}\n").unwrap();
        let mut cfg = AdaptorConfig::new();
        cfg.insert("path".into(), path.to_string_lossy().into_owned());
        let mut adaptor = FileAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        let records = collect_run(adaptor.as_mut());
        assert_eq!(records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_adaptor_missing_file_errors() {
        let mut cfg = AdaptorConfig::new();
        cfg.insert("path".into(), "/definitely/not/here.adm".into());
        let mut adaptor = FileAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        let stop = StopToken::new();
        let mut emit = |_r: Record| Ok(());
        assert!(adaptor.run(&mut emit, &stop).is_err());
    }

    #[test]
    fn chaos_adaptor_disconnects_after_scheduled_record() {
        use asterix_common::fault::FaultEvent;
        let tx = bind_socket("sock:chaos", 64).unwrap();
        for i in 0..20 {
            tx.send(format!("{{\"id\":\"r{i}\"}}")).unwrap();
        }
        drop(tx);
        let plan = Arc::new(FaultPlan::from_events(
            0,
            vec![FaultEvent {
                at_record: 5,
                kind: FaultKind::AdaptorDisconnect,
            }],
        ));
        let factory = ChaosAdaptorFactory::new(Arc::new(SocketAdaptorFactory), Arc::clone(&plan));
        assert_eq!(factory.alias(), "chaos:socket_adaptor");
        let mut cfg = AdaptorConfig::new();
        cfg.insert("sockets".into(), "sock:chaos".into());
        let mut adaptor = factory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        let records = collect_run(adaptor.as_mut()); // unwraps Ok: graceful
        assert_eq!(records.len(), 5, "stops exactly at the scheduled record");
        assert_eq!(plan.records_seen(), 5);
        unbind_socket("sock:chaos");
    }

    #[test]
    fn trace_adaptor_replays_records_on_the_sim_clock() {
        let path = std::env::temp_dir().join("asterix_trace_adaptor_test.trace");
        write_trace(
            &path,
            [
                (0u64, "{\"id\":\"a\"}"),
                (150, "{\"id\":\"b\"}"),
                (150, "not adm {{{"),
                (400, "{\"id\":\"c\"}"),
            ],
        )
        .unwrap();
        let clock = SimClock::with_scale(10.0);
        let mut cfg = AdaptorConfig::new();
        cfg.insert("path".into(), path.to_string_lossy().into_owned());
        assert_eq!(
            TraceAdaptorFactory.constraints(&cfg).unwrap(),
            Constraint::Count(1)
        );
        let malformed = Counter::new();
        let start = clock.now();
        let mut adaptor = TraceAdaptorFactory
            .create(&cfg, 0, &clock, &malformed)
            .unwrap();
        let records = collect_run(adaptor.as_mut());
        std::fs::remove_file(&path).ok();
        // the well-formed payloads arrive in order, the recorded junk line
        // is skipped and counted
        assert_eq!(records.len(), 3);
        assert_eq!(malformed.get(), 1);
        let ids: Vec<String> = records
            .iter()
            .map(|r| {
                parse_value(r.payload_str().unwrap())
                    .unwrap()
                    .field("id")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ids, ["a", "b", "c"]);
        // generation stamps reproduce the recorded offsets (relative to the
        // replay's own start instant), and replay really waited out the
        // last offset on the sim clock
        let stamps: Vec<u64> = records
            .iter()
            .map(|r| r.gen_at.unwrap().as_millis())
            .collect();
        let relative: Vec<u64> = stamps.iter().map(|s| s - stamps[0]).collect();
        assert_eq!(relative, [0, 150, 400]);
        assert!(clock.now().since(start).0 >= 400);
    }

    #[test]
    fn trace_adaptor_rejects_corrupt_frames() {
        let path = std::env::temp_dir().join("asterix_trace_adaptor_corrupt.trace");
        std::fs::write(&path, "no tab here\n").unwrap();
        let mut cfg = AdaptorConfig::new();
        cfg.insert("path".into(), path.to_string_lossy().into_owned());
        let mut adaptor = TraceAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        let stop = StopToken::new();
        let mut emit = |_r: Record| Ok(());
        assert!(adaptor.run(&mut emit, &stop).is_err());
        std::fs::write(&path, "xyz\t{\"id\":\"a\"}\n").unwrap();
        let mut adaptor = TraceAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        assert!(adaptor.run(&mut emit, &stop).is_err());
        std::fs::remove_file(&path).ok();
        assert!(TraceAdaptorFactory
            .constraints(&AdaptorConfig::new())
            .is_err());
    }

    #[test]
    fn stop_token_halts_adaptor() {
        let _tx = bind_socket("sock:3", 4).unwrap();
        let mut cfg = AdaptorConfig::new();
        cfg.insert("sockets".into(), "sock:3".into());
        let mut adaptor = SocketAdaptorFactory
            .create(&cfg, 0, &SimClock::fast(), &Counter::new())
            .unwrap();
        let stop = StopToken::new();
        stop.stop();
        let mut emit = |_r: Record| Ok(());
        adaptor.run(&mut emit, &stop).unwrap(); // returns promptly
        unbind_socket("sock:3");
    }
}
