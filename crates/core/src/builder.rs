//! Fluent construction of feed definitions.
//!
//! Hand-rolling a [`FeedDef`] struct literal forces every call site to spell
//! out the [`FeedKind`] enum and leaves validation to whatever the catalog
//! happens to check at `create_feed` time. [`FeedBuilder`] is the fluent
//! front door: name the feed, pick an adaptor (or a parent feed), chain
//! UDFs, choose a policy and a target dataset, and let [`FeedBuilder::build`]
//! validate the combination before anything touches the catalog.
//!
//! ```
//! use asterix_feeds::builder::FeedBuilder;
//!
//! let def = FeedBuilder::new("TwitterFeed")
//!     .adaptor("TweetGenAdaptor")
//!     .param("datasource", "twitter:9000")
//!     .build()
//!     .unwrap();
//! assert_eq!(def.name, "TwitterFeed");
//! ```

use crate::adaptor::AdaptorConfig;
use crate::catalog::{FeedCatalog, FeedDef, FeedKind};
use crate::controller::{ConnectionId, FeedController};
use asterix_common::{IngestError, IngestResult};

/// Fluent builder for feed definitions (and, optionally, their connection).
///
/// The terminal operations escalate in scope:
///
/// * [`build`](FeedBuilder::build) — validate and return a [`FeedDef`];
/// * [`register`](FeedBuilder::register) — build and `create_feed` it in a
///   catalog, materializing a UDF *chain* as secondary feeds when more than
///   one UDF was requested;
/// * [`connect`](FeedBuilder::connect) — register, then connect the feed to
///   its target dataset under the chosen policy.
#[derive(Debug, Clone)]
pub struct FeedBuilder {
    name: String,
    adaptor: Option<String>,
    params: AdaptorConfig,
    parent: Option<String>,
    udfs: Vec<String>,
    policy: Option<String>,
    dataset: Option<String>,
}

impl FeedBuilder {
    /// Start defining a feed called `name`.
    pub fn new(name: impl Into<String>) -> FeedBuilder {
        FeedBuilder {
            name: name.into(),
            adaptor: None,
            params: AdaptorConfig::new(),
            parent: None,
            udfs: Vec::new(),
            policy: None,
            dataset: None,
        }
    }

    /// Source the feed from the named adaptor (`create feed ... using X`).
    /// Makes this a primary feed; mutually exclusive with
    /// [`parent`](FeedBuilder::parent).
    pub fn adaptor(mut self, alias: impl Into<String>) -> FeedBuilder {
        self.adaptor = Some(alias.into());
        self
    }

    /// Add one adaptor configuration parameter (the parenthesised
    /// `("key"="value")` pairs of the AQL statement).
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> FeedBuilder {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Source the feed from another feed (`create secondary feed ... from
    /// feed P`). Mutually exclusive with [`adaptor`](FeedBuilder::adaptor).
    pub fn parent(mut self, feed: impl Into<String>) -> FeedBuilder {
        self.parent = Some(feed.into());
        self
    }

    /// Apply a UDF to every record. May be called repeatedly to build a
    /// chain; a chain longer than one function is materialized as secondary
    /// feeds by [`register`](FeedBuilder::register) (a single [`FeedDef`]
    /// carries at most one function, so [`build`](FeedBuilder::build)
    /// rejects longer chains).
    pub fn udf(mut self, function: impl Into<String>) -> FeedBuilder {
        self.udfs.push(function.into());
        self
    }

    /// Ingestion policy used by [`connect`](FeedBuilder::connect)
    /// (defaults to `Basic`).
    pub fn policy(mut self, name: impl Into<String>) -> FeedBuilder {
        self.policy = Some(name.into());
        self
    }

    /// Target dataset used by [`connect`](FeedBuilder::connect).
    pub fn into_dataset(mut self, name: impl Into<String>) -> FeedBuilder {
        self.dataset = Some(name.into());
        self
    }

    fn validate(&self) -> IngestResult<()> {
        if self.name.trim().is_empty() {
            return Err(IngestError::Metadata("feed name must be non-empty".into()));
        }
        match (&self.adaptor, &self.parent) {
            (None, None) => Err(IngestError::Metadata(format!(
                "feed '{}' needs an adaptor or a parent feed",
                self.name
            ))),
            (Some(_), Some(_)) => Err(IngestError::Metadata(format!(
                "feed '{}' cannot have both an adaptor and a parent feed",
                self.name
            ))),
            (None, Some(_)) if !self.params.is_empty() => Err(IngestError::Metadata(format!(
                "feed '{}': adaptor parameters make no sense on a secondary feed",
                self.name
            ))),
            _ => Ok(()),
        }
    }

    fn kind(&self) -> FeedKind {
        match &self.adaptor {
            Some(alias) => FeedKind::Primary {
                adaptor: alias.clone(),
                config: self.params.clone(),
            },
            None => FeedKind::Secondary {
                parent: self.parent.clone().expect("validated"),
            },
        }
    }

    /// Validate and produce the [`FeedDef`]. Fails on a missing/ambiguous
    /// source or a UDF chain longer than one function (which a single
    /// definition cannot carry — use [`register`](FeedBuilder::register)).
    pub fn build(self) -> IngestResult<FeedDef> {
        self.validate()?;
        if self.udfs.len() > 1 {
            return Err(IngestError::Metadata(format!(
                "feed '{}': a single FeedDef carries at most one UDF; \
                 register() materializes a {}-function chain as secondary feeds",
                self.name,
                self.udfs.len()
            )));
        }
        let kind = self.kind();
        Ok(FeedDef {
            name: self.name,
            kind,
            udf: self.udfs.into_iter().next(),
        })
    }

    /// Build and `create_feed` in `catalog`. A UDF chain of N > 1 functions
    /// becomes the named feed (carrying the first function) plus N-1
    /// secondary feeds named `<name>#2..#N`; the returned [`FeedDef`] is the
    /// *tail* of the chain — the one to connect to a dataset.
    pub fn register(self, catalog: &FeedCatalog) -> IngestResult<FeedDef> {
        self.validate()?;
        let name = self.name.clone();
        let udfs = self.udfs.clone();
        let head = FeedDef {
            name: name.clone(),
            kind: self.kind(),
            udf: udfs.first().cloned(),
        };
        catalog.create_feed(head.clone())?;
        let mut tail = head;
        for (i, udf) in udfs.iter().enumerate().skip(1) {
            let link = FeedDef {
                name: format!("{name}#{}", i + 1),
                kind: FeedKind::Secondary {
                    parent: tail.name.clone(),
                },
                udf: Some(udf.clone()),
            };
            catalog.create_feed(link.clone())?;
            tail = link;
        }
        Ok(tail)
    }

    /// Register in `catalog`, then connect the (tail of the) feed to the
    /// dataset chosen with [`into_dataset`](FeedBuilder::into_dataset) under
    /// the chosen [`policy`](FeedBuilder::policy).
    pub fn connect(
        self,
        catalog: &FeedCatalog,
        controller: &FeedController,
    ) -> IngestResult<ConnectionId> {
        let dataset = self.dataset.clone().ok_or_else(|| {
            IngestError::Metadata(format!(
                "feed '{}': connect() needs into_dataset(...)",
                self.name
            ))
        })?;
        let policy = self.policy.clone().unwrap_or_else(|| "Basic".into());
        let tail = self.register(catalog)?;
        controller.connect_feed(&tail.name, &dataset, &policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::Udf;
    use asterix_adm::types::paper_registry;

    #[test]
    fn builds_primary_and_secondary_defs() {
        let def = FeedBuilder::new("TwitterFeed")
            .adaptor("TweetGenAdaptor")
            .param("datasource", "twitter:9000")
            .build()
            .unwrap();
        assert_eq!(def.name, "TwitterFeed");
        match def.kind {
            FeedKind::Primary { adaptor, config } => {
                assert_eq!(adaptor, "TweetGenAdaptor");
                assert_eq!(config.get("datasource").unwrap(), "twitter:9000");
            }
            other => panic!("expected primary, got {other:?}"),
        }

        let def = FeedBuilder::new("Child")
            .parent("TwitterFeed")
            .udf("addHashTags")
            .build()
            .unwrap();
        assert!(matches!(def.kind, FeedKind::Secondary { parent } if parent == "TwitterFeed"));
        assert_eq!(def.udf.as_deref(), Some("addHashTags"));
    }

    #[test]
    fn invalid_combinations_fail_at_build() {
        assert!(
            FeedBuilder::new("").adaptor("X").build().is_err(),
            "empty name"
        );
        assert!(FeedBuilder::new("F").build().is_err(), "no source");
        assert!(
            FeedBuilder::new("F")
                .adaptor("A")
                .parent("P")
                .build()
                .is_err(),
            "two sources"
        );
        assert!(
            FeedBuilder::new("F")
                .parent("P")
                .param("k", "v")
                .build()
                .is_err(),
            "params on secondary"
        );
        assert!(
            FeedBuilder::new("F")
                .adaptor("A")
                .udf("f")
                .udf("g")
                .build()
                .is_err(),
            "chain needs register()"
        );
    }

    #[test]
    fn register_materializes_udf_chains() {
        let catalog = FeedCatalog::new(paper_registry());
        catalog.create_function(Udf::add_hash_tags()).unwrap();
        catalog.create_function(Udf::sentiment_analysis()).unwrap();
        let tail = FeedBuilder::new("TwitterFeed")
            .adaptor("TweetGenAdaptor")
            .param("datasource", "twitter:9000")
            .udf("addHashTags")
            .udf("tweetlib#sentimentAnalysis")
            .register(&catalog)
            .unwrap();
        assert_eq!(tail.name, "TwitterFeed#2");
        assert_eq!(
            catalog.joint_id_for(&tail.name).unwrap(),
            "TwitterFeed:addHashTags:tweetlib#sentimentAnalysis"
        );
    }
}
