//! Fluent construction of feed definitions — the legacy single-sink surface.
//!
//! [`FeedBuilder`] predates ingestion plans and is kept as *the* front door
//! for the common case of one feed flowing into one dataset. It is now a
//! thin shim over [`IngestPlanBuilder`](crate::plan::IngestPlanBuilder):
//! `connect` compiles to a *degenerate* plan (one sink, no routing
//! predicate), which the controller recognizes and runs through the exact
//! single-connection pipeline it always built — zero behavior change, but
//! one construction path and one typed error taxonomy
//! ([`PlanError`](crate::plan::PlanError)) for both surfaces.
//!
//! ```
//! use asterix_feeds::builder::FeedBuilder;
//!
//! let def = FeedBuilder::new("TwitterFeed")
//!     .adaptor("TweetGenAdaptor")
//!     .param("datasource", "twitter:9000")
//!     .build()
//!     .unwrap();
//! assert_eq!(def.name, "TwitterFeed");
//! ```

use crate::catalog::{FeedCatalog, FeedDef};
use crate::controller::{ConnectionId, FeedController};
use crate::plan::{IngestPlanBuilder, PlanError, PlanResult, SinkSpec};

/// Fluent builder for feed definitions (and, optionally, their connection).
///
/// The terminal operations escalate in scope:
///
/// * [`build`](FeedBuilder::build) — validate and return a [`FeedDef`];
/// * [`register`](FeedBuilder::register) — build and `create_feed` it in a
///   catalog, materializing a UDF *chain* as secondary feeds when more than
///   one UDF was requested;
/// * [`connect`](FeedBuilder::connect) — register, then connect the feed to
///   its target dataset under the chosen policy (internally: a degenerate
///   single-sink ingestion plan).
///
/// All terminal operations return [`PlanResult`]; [`PlanError`] converts
/// into `IngestError` so existing `?` call sites keep working.
#[derive(Debug, Clone)]
pub struct FeedBuilder {
    inner: IngestPlanBuilder,
    policy: Option<String>,
    dataset: Option<String>,
}

impl FeedBuilder {
    /// Start defining a feed called `name`.
    pub fn new(name: impl Into<String>) -> FeedBuilder {
        FeedBuilder {
            inner: IngestPlanBuilder::new(name),
            policy: None,
            dataset: None,
        }
    }

    /// Source the feed from the named adaptor (`create feed ... using X`).
    /// Makes this a primary feed; mutually exclusive with
    /// [`parent`](FeedBuilder::parent).
    pub fn adaptor(mut self, alias: impl Into<String>) -> FeedBuilder {
        self.inner = self.inner.adaptor(alias);
        self
    }

    /// Add one adaptor configuration parameter (the parenthesised
    /// `("key"="value")` pairs of the AQL statement).
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> FeedBuilder {
        self.inner = self.inner.param(key, value);
        self
    }

    /// Source the feed from another feed (`create secondary feed ... from
    /// feed P`). Mutually exclusive with [`adaptor`](FeedBuilder::adaptor).
    pub fn parent(mut self, feed: impl Into<String>) -> FeedBuilder {
        self.inner = self.inner.parent(feed);
        self
    }

    /// Apply a UDF to every record. May be called repeatedly to build a
    /// chain; a chain longer than one function is materialized as secondary
    /// feeds by [`register`](FeedBuilder::register) (a single [`FeedDef`]
    /// carries at most one function, so [`build`](FeedBuilder::build)
    /// rejects longer chains).
    pub fn udf(mut self, function: impl Into<String>) -> FeedBuilder {
        self.inner = self.inner.udf(function);
        self
    }

    /// Ingestion policy used by [`connect`](FeedBuilder::connect)
    /// (defaults to `Basic`).
    pub fn policy(mut self, name: impl Into<String>) -> FeedBuilder {
        self.policy = Some(name.into());
        self
    }

    /// Target dataset used by [`connect`](FeedBuilder::connect).
    pub fn into_dataset(mut self, name: impl Into<String>) -> FeedBuilder {
        self.dataset = Some(name.into());
        self
    }

    /// Validate and produce the [`FeedDef`]. Fails on a missing/ambiguous
    /// source or a UDF chain longer than one function (which a single
    /// definition cannot carry — use [`register`](FeedBuilder::register)).
    pub fn build(self) -> PlanResult<FeedDef> {
        self.inner.build_feed_def()
    }

    /// Build and `create_feed` in `catalog`. A UDF chain of N > 1 functions
    /// becomes the named feed (carrying the first function) plus N-1
    /// secondary feeds named `<name>#2..#N`; the returned [`FeedDef`] is the
    /// *tail* of the chain — the one to connect to a dataset.
    pub fn register(self, catalog: &FeedCatalog) -> PlanResult<FeedDef> {
        self.inner.register_feeds(catalog)
    }

    /// Register in `catalog`, then connect the (tail of the) feed to the
    /// dataset chosen with [`into_dataset`](FeedBuilder::into_dataset) under
    /// the chosen [`policy`](FeedBuilder::policy) — compiled as a degenerate
    /// single-sink ingestion plan.
    pub fn connect(
        self,
        catalog: &FeedCatalog,
        controller: &FeedController,
    ) -> PlanResult<ConnectionId> {
        let name = self.inner.plan_name().to_string();
        let dataset = self.dataset.clone().ok_or(PlanError::NoDataset(name))?;
        let policy = self.policy.clone().unwrap_or_else(|| "Basic".into());
        let plan = self
            .inner
            .sink(SinkSpec::to(dataset).policy(policy))
            .build()?;
        // legacy surface: feeds enter the catalog, the degenerate plan does
        // not (it is an implementation detail of this one connection)
        let builder_for_feeds = IngestPlanBuilder::from_plan(&plan);
        builder_for_feeds.register_feeds(catalog)?;
        let ids = controller.connect_plan(&plan).map_err(PlanError::from)?;
        Ok(ids[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::FeedKind;
    use crate::udf::Udf;
    use asterix_adm::types::paper_registry;

    #[test]
    fn builds_primary_and_secondary_defs() {
        let def = FeedBuilder::new("TwitterFeed")
            .adaptor("TweetGenAdaptor")
            .param("datasource", "twitter:9000")
            .build()
            .unwrap();
        assert_eq!(def.name, "TwitterFeed");
        match def.kind {
            FeedKind::Primary { adaptor, config } => {
                assert_eq!(adaptor, "TweetGenAdaptor");
                assert_eq!(config.get("datasource").unwrap(), "twitter:9000");
            }
            other => panic!("expected primary, got {other:?}"),
        }

        let def = FeedBuilder::new("Child")
            .parent("TwitterFeed")
            .udf("addHashTags")
            .build()
            .unwrap();
        assert!(matches!(def.kind, FeedKind::Secondary { parent } if parent == "TwitterFeed"));
        assert_eq!(def.udf.as_deref(), Some("addHashTags"));
    }

    #[test]
    fn invalid_combinations_fail_at_build() {
        assert_eq!(
            FeedBuilder::new("").adaptor("X").build().unwrap_err(),
            PlanError::EmptyName
        );
        assert!(
            matches!(
                FeedBuilder::new("F").build().unwrap_err(),
                PlanError::NoSource(_)
            ),
            "no source"
        );
        assert!(
            matches!(
                FeedBuilder::new("F")
                    .adaptor("A")
                    .parent("P")
                    .build()
                    .unwrap_err(),
                PlanError::TwoSources(_)
            ),
            "two sources"
        );
        assert!(
            matches!(
                FeedBuilder::new("F")
                    .parent("P")
                    .param("k", "v")
                    .build()
                    .unwrap_err(),
                PlanError::ParamsOnSecondary(_)
            ),
            "params on secondary"
        );
        assert!(
            matches!(
                FeedBuilder::new("F")
                    .adaptor("A")
                    .udf("f")
                    .udf("g")
                    .build()
                    .unwrap_err(),
                PlanError::ChainNeedsRegister { udfs: 2, .. }
            ),
            "chain needs register()"
        );
    }

    #[test]
    fn connect_without_dataset_is_a_typed_error() {
        use crate::controller::ControllerConfig;
        use asterix_common::SimClock;
        use asterix_hyracks::cluster::{Cluster, ClusterConfig};
        let catalog = FeedCatalog::new(paper_registry());
        let cluster = Cluster::start(1, SimClock::fast(), ClusterConfig::default());
        let controller = FeedController::start(
            cluster.clone(),
            std::sync::Arc::clone(&catalog),
            ControllerConfig::default(),
        );
        let err = FeedBuilder::new("F")
            .adaptor("TweetGenAdaptor")
            .connect(&catalog, &controller)
            .unwrap_err();
        assert_eq!(err, PlanError::NoDataset("F".into()));
        controller.shutdown();
        cluster.shutdown();
    }

    #[test]
    fn register_materializes_udf_chains() {
        let catalog = FeedCatalog::new(paper_registry());
        catalog.create_function(Udf::add_hash_tags()).unwrap();
        catalog.create_function(Udf::sentiment_analysis()).unwrap();
        let tail = FeedBuilder::new("TwitterFeed")
            .adaptor("TweetGenAdaptor")
            .param("datasource", "twitter:9000")
            .udf("addHashTags")
            .udf("tweetlib#sentimentAnalysis")
            .register(&catalog)
            .unwrap();
        assert_eq!(tail.name, "TwitterFeed#2");
        assert_eq!(
            catalog.joint_id_for(&tail.name).unwrap(),
            "TwitterFeed:addHashTags:tweetlib#sentimentAnalysis"
        );
    }
}
