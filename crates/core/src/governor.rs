//! The closed-loop scaling governor (§7.3.5 elasticity, made continuous).
//!
//! The paper's Elastic policy is open-loop: a congested flow controller
//! fires a single scale-out request and never revisits the decision. This
//! module closes the loop. A periodic control task owned by the
//! [`FeedController`](crate::controller::FeedController) samples the
//! metrics registry — the ingestion-lag histogram, the intake hand-off
//! queue backlog, and the spill/throttle pressure counters — and issues
//! scale-out *and* scale-in decisions for both the intake and compute
//! partitions of each live feed connection.
//!
//! Stability comes from three classic control elements:
//!
//! * **Hysteresis bands** — scale-out triggers above the `high_*`
//!   thresholds, scale-in only below the strictly lower `low_*` thresholds;
//!   the band between them is a dead zone where the governor holds.
//! * **Cooldown** — after any scaling action the governor holds for
//!   [`GovernorConfig::cooldown`], giving the repartitioned pipeline time to
//!   show its new steady state before the next decision.
//! * **Quiet-tick counting** — scale-in additionally requires
//!   [`GovernorConfig::scale_in_quiet_ticks`] *consecutive* calm samples, so
//!   a single lull between bursts does not shed capacity.
//!
//! The decision function itself is pure ([`decide`]): it sees one
//! [`GovernorSample`] plus the per-connection [`GovernorState`] and returns
//! a [`ScaleDecision`]. All the messy parts — windowing histogram
//! snapshots, harvesting frames from abandoned partitions, re-spawning
//! jobs — live in the controller; this keeps the control law unit-testable
//! without a cluster.

use asterix_common::{SimDuration, SimInstant};

/// Tuning for the per-feed scaling governor. Disabled by default — the
/// legacy open-loop behaviour (one `scale_compute(+1)` per elastic request)
/// is preserved unless a deployment opts in.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Master switch. When false the controller neither spawns the control
    /// task nor intercepts elastic requests.
    pub enabled: bool,
    /// Sampling period of the control loop, in sim-time.
    pub interval: SimDuration,
    /// Minimum sim-time between two scaling actions on the same connection.
    pub cooldown: SimDuration,
    /// Scale-out when the windowed ingestion-lag p99 exceeds this (sim-ms).
    pub high_lag_millis: u64,
    /// A sample only counts as calm when lag p99 is at or below this.
    /// Must be `< high_lag_millis` — the gap is the hysteresis band.
    pub low_lag_millis: u64,
    /// Scale-out when buffered + spilled backlog exceeds this many bytes.
    pub high_backlog_bytes: u64,
    /// Calm requires backlog at or below this many bytes.
    pub low_backlog_bytes: u64,
    /// Scale-out when the hand-off queue holds at least this many frames.
    pub high_queue_frames: u64,
    /// Calm requires the hand-off queue at or below this many frames.
    pub low_queue_frames: u64,
    /// Consecutive calm samples required before scaling in.
    pub scale_in_quiet_ticks: u32,
    /// Compute partition-count floor the governor will not shrink below.
    pub min_compute: usize,
    /// Compute partition-count ceiling the governor will not grow past.
    pub max_compute: usize,
    /// Intake width floor (distinct nodes running collect instances).
    pub min_intake: usize,
    /// Intake width ceiling.
    pub max_intake: usize,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            enabled: false,
            interval: SimDuration::from_secs(1),
            cooldown: SimDuration::from_secs(4),
            high_lag_millis: 2_000,
            low_lag_millis: 500,
            high_backlog_bytes: 256 * 1024,
            low_backlog_bytes: 16 * 1024,
            high_queue_frames: 4,
            low_queue_frames: 1,
            scale_in_quiet_ticks: 3,
            min_compute: 1,
            max_compute: 8,
            min_intake: 1,
            max_intake: 8,
        }
    }
}

/// One sampled observation of a connection's health, assembled by the
/// controller from a registry snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct GovernorSample {
    /// p99 of the ingestion-lag histogram over the last sampling window
    /// (via [`HistogramSnapshot::delta`](asterix_common::HistogramSnapshot::delta)),
    /// in sim-ms. 0 when nothing was persisted in the window.
    pub lag_p99_millis: u64,
    /// In-memory excess buffer plus spill file bytes, summed over the
    /// connection's store and compute stages.
    pub backlog_bytes: u64,
    /// Hand-off queue depth in frames, max over the connection's stages.
    pub queue_frames: u64,
    /// Pressure events since the previous sample: records throttled,
    /// discarded or spilled, plus open-loop elastic requests routed to the
    /// governor. Any non-zero value marks the sample hot.
    pub pressure_delta: u64,
}

/// Mutable per-connection control state carried between ticks.
#[derive(Debug, Clone, Copy, Default)]
pub struct GovernorState {
    /// When the last scale-out/in was issued (cooldown anchor).
    pub last_action_at: Option<SimInstant>,
    /// Consecutive calm samples observed so far.
    pub quiet_ticks: u32,
}

/// What the control law wants done this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add a partition to the hot stage(s).
    Out,
    /// Remove a partition.
    In,
    /// Stay put (dead zone, cooldown, or not yet quiet long enough).
    Hold,
}

impl GovernorState {
    fn cooled_down(&self, now: SimInstant, cfg: &GovernorConfig) -> bool {
        match self.last_action_at {
            Some(at) => now.since(at) >= cfg.cooldown,
            None => true,
        }
    }
}

/// The pure control law: classify the sample against the hysteresis bands
/// and apply cooldown + quiet-tick gating. Mutates `state` (quiet counter,
/// cooldown anchor) and returns the decision.
pub fn decide(
    cfg: &GovernorConfig,
    now: SimInstant,
    sample: &GovernorSample,
    state: &mut GovernorState,
) -> ScaleDecision {
    let hot = sample.lag_p99_millis >= cfg.high_lag_millis
        || sample.backlog_bytes >= cfg.high_backlog_bytes
        || sample.queue_frames >= cfg.high_queue_frames
        || sample.pressure_delta > 0;
    let calm = sample.lag_p99_millis <= cfg.low_lag_millis
        && sample.backlog_bytes <= cfg.low_backlog_bytes
        && sample.queue_frames <= cfg.low_queue_frames
        && sample.pressure_delta == 0;
    if hot {
        state.quiet_ticks = 0;
        if state.cooled_down(now, cfg) {
            state.last_action_at = Some(now);
            return ScaleDecision::Out;
        }
        return ScaleDecision::Hold;
    }
    if calm {
        state.quiet_ticks = state.quiet_ticks.saturating_add(1);
        if state.quiet_ticks >= cfg.scale_in_quiet_ticks && state.cooled_down(now, cfg) {
            state.quiet_ticks = 0;
            state.last_action_at = Some(now);
            return ScaleDecision::In;
        }
        return ScaleDecision::Hold;
    }
    // inside the hysteresis band: neither hot nor calm — hold, and a
    // borderline sample also breaks any quiet streak so scale-in restarts
    // its count from the next genuinely calm sample
    state.quiet_ticks = 0;
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig {
            enabled: true,
            cooldown: SimDuration::from_secs(4),
            scale_in_quiet_ticks: 3,
            ..GovernorConfig::default()
        }
    }

    fn hot() -> GovernorSample {
        GovernorSample {
            lag_p99_millis: 5_000,
            ..GovernorSample::default()
        }
    }

    fn calm() -> GovernorSample {
        GovernorSample::default()
    }

    fn band() -> GovernorSample {
        // between low (500) and high (2000) lag thresholds
        GovernorSample {
            lag_p99_millis: 1_000,
            ..GovernorSample::default()
        }
    }

    #[test]
    fn hot_sample_scales_out_once_then_cooldown_holds() {
        let cfg = cfg();
        let mut st = GovernorState::default();
        assert_eq!(
            decide(&cfg, SimInstant(0), &hot(), &mut st),
            ScaleDecision::Out
        );
        // still hot one second later: inside the cooldown window
        assert_eq!(
            decide(&cfg, SimInstant(1_000), &hot(), &mut st),
            ScaleDecision::Hold
        );
        // cooldown expired: acts again
        assert_eq!(
            decide(&cfg, SimInstant(4_000), &hot(), &mut st),
            ScaleDecision::Out
        );
    }

    #[test]
    fn scale_in_needs_consecutive_quiet_ticks() {
        let cfg = cfg();
        let mut st = GovernorState::default();
        assert_eq!(
            decide(&cfg, SimInstant(0), &calm(), &mut st),
            ScaleDecision::Hold
        );
        assert_eq!(
            decide(&cfg, SimInstant(1_000), &calm(), &mut st),
            ScaleDecision::Hold
        );
        assert_eq!(
            decide(&cfg, SimInstant(2_000), &calm(), &mut st),
            ScaleDecision::In
        );
        // the streak resets after acting
        assert_eq!(st.quiet_ticks, 0);
    }

    #[test]
    fn band_sample_breaks_the_quiet_streak() {
        let cfg = cfg();
        let mut st = GovernorState::default();
        decide(&cfg, SimInstant(0), &calm(), &mut st);
        decide(&cfg, SimInstant(1_000), &calm(), &mut st);
        // a borderline sample interrupts the streak...
        assert_eq!(
            decide(&cfg, SimInstant(2_000), &band(), &mut st),
            ScaleDecision::Hold
        );
        // ...so the next calm sample starts counting from one again
        assert_eq!(
            decide(&cfg, SimInstant(3_000), &calm(), &mut st),
            ScaleDecision::Hold
        );
        assert_eq!(st.quiet_ticks, 1);
    }

    #[test]
    fn pressure_events_mark_the_sample_hot() {
        let cfg = cfg();
        let mut st = GovernorState::default();
        let s = GovernorSample {
            pressure_delta: 1,
            ..GovernorSample::default()
        };
        assert_eq!(decide(&cfg, SimInstant(0), &s, &mut st), ScaleDecision::Out);
    }

    #[test]
    fn cooldown_applies_to_scale_in_too() {
        let cfg = cfg();
        let mut st = GovernorState::default();
        assert_eq!(
            decide(&cfg, SimInstant(0), &hot(), &mut st),
            ScaleDecision::Out
        );
        // three calm ticks arrive inside the cooldown window: still held
        for t in [1_000u64, 2_000, 3_000] {
            assert_eq!(
                decide(&cfg, SimInstant(t), &calm(), &mut st),
                ScaleDecision::Hold
            );
        }
        // cooldown over and the quiet streak is intact: shed capacity
        assert_eq!(
            decide(&cfg, SimInstant(4_000), &calm(), &mut st),
            ScaleDecision::In
        );
    }
}
