//! Feed joints (§5.4).
//!
//! "A feed joint is a shared queue attached at the end of an operator such
//! that all data frames output by the operator are deposited into the
//! queue ... it acts as a bridge for data to flow from an ingestion
//! pipeline to another." Joints give the cascade network its two essential
//! properties (§5.4.1):
//!
//! * **Guaranteed delivery** — every data frame reaches every registered
//!   subscriber; a frame is wrapped in a *Data Bucket* carrying a counter
//!   initialized to the subscriber count, and the bucket is reclaimed only
//!   when every subscriber has consumed it.
//! * **Congestion isolation** — each subscriber consumes from its own queue
//!   at its own pace; a slow path never stalls the others.
//!
//! With a single subscriber the joint runs in *short-circuited* mode: no
//! bucket bookkeeping, frames are forwarded directly. The mode switches
//! dynamically as subscribers come and go.
//!
//! In this implementation a joint is a *durable rendezvous point* owned by
//! its node's Feed Manager: it outlives the jobs writing to and reading
//! from it. Subscriptions are keyed, and a rebuilt pipeline re-attaches to
//! its old subscription — the queue contents accumulated while the pipeline
//! was down are exactly the paper's "buffer mode" during failure recovery.

use asterix_common::sync::{handoff, Mutex};
use asterix_common::{DataFrame, IngestResult, SimClock, SimDuration};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A frame wrapped for shared-mode delivery.
#[derive(Debug)]
pub struct DataBucket {
    frame: DataFrame,
    /// Subscribers that have not yet consumed the content.
    pending: AtomicUsize,
}

impl DataBucket {
    /// Remaining consumers.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }
}

/// Message on a subscriber queue.
#[derive(Debug)]
enum JointMsg {
    /// Shared-mode delivery.
    Bucket(Arc<DataBucket>),
    /// Short-circuited single-subscriber delivery.
    Direct(DataFrame),
    /// The joint was retired; no more data will ever arrive.
    Retired,
}

struct SubEntry {
    tx: handoff::Sender<JointMsg>,
    /// kept so re-attaching subscribers can share the receiver and resume
    /// the same queue (the entry's reference also keeps the queue alive
    /// across pipeline rebuilds)
    rx: Arc<handoff::Receiver<JointMsg>>,
    queued_bytes: Arc<AtomicU64>,
}

/// Per-subscriber queue bound, in messages. Congestion isolation holds up
/// to this depth; past it, deposits exert backpressure on the producing
/// pipeline instead of growing memory without bound.
const SUBSCRIBER_QUEUE_CAP: usize = 1024;

struct JointInner {
    subscribers: HashMap<String, SubEntry>,
    retired: bool,
}

/// Statistics of a joint's lifetime.
#[derive(Debug, Default)]
pub struct JointStats {
    /// Frames routed through the joint.
    pub frames_routed: AtomicU64,
    /// Buckets allocated in shared mode.
    pub buckets_created: AtomicU64,
    /// Buckets fully consumed and reclaimed.
    pub buckets_reclaimed: AtomicU64,
    /// Frames delivered in short-circuited mode.
    pub short_circuited: AtomicU64,
}

/// A feed joint.
pub struct FeedJoint {
    /// Symbolic id: `<feed>` or `<feed>:f1:...:fN` (§5.3.1).
    pub id: String,
    inner: Mutex<JointInner>,
    /// Lifetime statistics.
    pub stats: JointStats,
}

impl FeedJoint {
    /// New joint with the given symbolic id.
    pub fn new(id: impl Into<String>) -> Arc<FeedJoint> {
        Arc::new(FeedJoint {
            id: id.into(),
            inner: Mutex::new(JointInner {
                subscribers: HashMap::new(),
                retired: false,
            }),
            stats: JointStats::default(),
        })
    }

    /// Register (or re-attach to) the subscription under `key`. A fresh key
    /// creates an empty queue; an existing key resumes its queue — including
    /// anything that accumulated while no consumer was attached.
    pub fn subscribe(self: &Arc<Self>, key: impl Into<String>) -> JointSubscription {
        let key = key.into();
        let mut inner = self.inner.lock();
        let entry = inner.subscribers.entry(key.clone()).or_insert_with(|| {
            let (tx, rx) = handoff::bounded(SUBSCRIBER_QUEUE_CAP);
            SubEntry {
                tx,
                rx: Arc::new(rx),
                queued_bytes: Arc::new(AtomicU64::new(0)),
            }
        });
        JointSubscription {
            key,
            rx: Arc::clone(&entry.rx),
            queued_bytes: Arc::clone(&entry.queued_bytes),
            joint: Arc::clone(self),
        }
    }

    /// Remove the subscription under `key` (graceful disconnect). Queued
    /// frames for that subscriber are dropped; shared buckets they held are
    /// decremented so other subscribers are unaffected.
    pub fn unsubscribe(&self, key: &str) {
        let entry = self.inner.lock().subscribers.remove(key);
        if let Some(entry) = entry {
            // drain this subscriber's queue, releasing bucket holds
            while let Some(msg) = entry.rx.try_recv() {
                if let JointMsg::Bucket(b) = msg {
                    if b.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        // relaxed-ok: standalone stat; reclamation itself is
                        // ordered by the SeqCst refcount decrement above
                        self.stats.buckets_reclaimed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Remove the subscription under `key` and return the frames still
    /// queued for it, in arrival order. This is the harvesting half of the
    /// elastic repartitioning protocol: when scaling moves a partition off a
    /// node, its successor subscribes elsewhere and would otherwise never
    /// see frames buffered here. Shared-bucket holds are released exactly as
    /// in [`FeedJoint::unsubscribe`], so the other subscribers are
    /// unaffected; the returned frames are re-parked as zombie state on the
    /// successor's node.
    pub fn detach_queued(&self, key: &str) -> Vec<DataFrame> {
        let entry = self.inner.lock().subscribers.remove(key);
        let mut frames = Vec::new();
        if let Some(entry) = entry {
            while let Some(msg) = entry.rx.try_recv() {
                match msg {
                    JointMsg::Direct(frame) => frames.push(frame),
                    JointMsg::Bucket(b) => {
                        frames.push(b.frame.clone());
                        if b.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                            // relaxed-ok: standalone stat; reclamation is
                            // ordered by the SeqCst refcount decrement above
                            self.stats.buckets_reclaimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    JointMsg::Retired => {}
                }
            }
        }
        frames
    }

    /// Current number of subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().subscribers.len()
    }

    /// True if at least one subscriber is registered.
    pub fn has_subscribers(&self) -> bool {
        self.subscriber_count() > 0
    }

    /// Deposit a frame: short-circuit to a single subscriber, or wrap in a
    /// shared data bucket for many. No subscribers → the frame is dropped
    /// (the collect operator defers adaptor creation until someone
    /// subscribes, so this only happens in teardown windows).
    ///
    /// Sends happen on *bounded* queues and outside the joint lock: a full
    /// subscriber queue blocks only this depositor (backpressure on the
    /// producing pipeline), never other joint operations. The tradeoff is a
    /// narrow teardown race — a deposit that passed the retired check may
    /// land after a concurrent [`FeedJoint::retire`] notification; consumers
    /// treat `Retired` as terminal, so such a frame is dropped, equivalent
    /// to depositing just after retirement.
    pub fn deposit(&self, frame: DataFrame) -> IngestResult<()> {
        // snapshot the delivery plan under the lock, send outside it
        let targets: Vec<(handoff::Sender<JointMsg>, Arc<AtomicU64>)> = {
            let inner = self.inner.lock();
            if inner.retired {
                return Err(asterix_common::IngestError::Disconnected(format!(
                    "joint {} retired",
                    self.id
                )));
            }
            // relaxed-ok: routing/backpressure stats; frame contents are
            // published by the channel send, not by these counters
            self.stats.frames_routed.fetch_add(1, Ordering::Relaxed);
            inner
                .subscribers
                .values()
                .map(|e| (e.tx.clone(), Arc::clone(&e.queued_bytes)))
                .collect()
        };
        match targets.len() {
            0 => Ok(()),
            1 => {
                let (tx, queued_bytes) = &targets[0];
                // relaxed-ok: backpressure stat, see above
                queued_bytes.fetch_add(frame.size_bytes() as u64, Ordering::Relaxed);
                // relaxed-ok: routing stat, see above
                self.stats.short_circuited.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(JointMsg::Direct(frame));
                Ok(())
            }
            n => {
                let bucket = Arc::new(DataBucket {
                    pending: AtomicUsize::new(n),
                    frame,
                });
                // relaxed-ok: routing stat, see above
                self.stats.buckets_created.fetch_add(1, Ordering::Relaxed);
                for (tx, queued_bytes) in &targets {
                    // relaxed-ok: backpressure stat, see above
                    queued_bytes.fetch_add(bucket.frame.size_bytes() as u64, Ordering::Relaxed);
                    let _ = tx.send(JointMsg::Bucket(Arc::clone(&bucket)));
                }
                Ok(())
            }
        }
    }

    /// Retire the joint: all subscribers see end-of-stream, further deposits
    /// error. Used when a feed is dismantled entirely.
    ///
    /// The end-of-stream marker is sent with `try_send` so a subscriber
    /// whose queue is already full cannot wedge teardown; such a subscriber
    /// still observes retirement because [`JointSubscription::recv`] checks
    /// the retired flag once its queue drains empty.
    pub fn retire(&self) {
        let senders: Vec<handoff::Sender<JointMsg>> = {
            let mut inner = self.inner.lock();
            inner.retired = true;
            inner.subscribers.values().map(|e| e.tx.clone()).collect()
        };
        for tx in senders {
            let _ = tx.try_send(JointMsg::Retired);
        }
    }

    /// Has the joint been retired?
    pub fn is_retired(&self) -> bool {
        self.inner.lock().retired
    }
}

impl std::fmt::Debug for FeedJoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FeedJoint('{}', {} subscribers)",
            self.id,
            self.subscriber_count()
        )
    }
}

/// Outcome of one receive attempt on a subscription.
#[derive(Debug)]
pub enum JointRecv {
    /// A frame arrived.
    Frame(DataFrame),
    /// Nothing within the timeout.
    Timeout,
    /// The joint was retired; no more data will arrive.
    Retired,
}

/// A consumer's handle on its joint subscription.
pub struct JointSubscription {
    /// Subscription key (stable across pipeline rebuilds).
    pub key: String,
    rx: Arc<handoff::Receiver<JointMsg>>,
    queued_bytes: Arc<AtomicU64>,
    joint: Arc<FeedJoint>,
}

impl JointSubscription {
    fn on_msg(&self, msg: JointMsg) -> JointRecv {
        match msg {
            JointMsg::Direct(frame) => {
                // relaxed-ok: backpressure stat; the frame arrived via the
                // channel, nothing synchronises through this counter
                self.queued_bytes
                    .fetch_sub(frame.size_bytes() as u64, Ordering::Relaxed);
                JointRecv::Frame(frame)
            }
            JointMsg::Bucket(bucket) => {
                // relaxed-ok: backpressure stat, see above
                self.queued_bytes
                    .fetch_sub(bucket.frame.size_bytes() as u64, Ordering::Relaxed);
                // consume: clone the content (payload bytes are refcounted,
                // so this is shallow for the heavy part) and release our hold
                let frame = bucket.frame.clone();
                if bucket.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // relaxed-ok: standalone stat; reclamation is ordered by
                    // the SeqCst refcount decrement above
                    self.joint
                        .stats
                        .buckets_reclaimed
                        .fetch_add(1, Ordering::Relaxed);
                }
                JointRecv::Frame(frame)
            }
            JointMsg::Retired => JointRecv::Retired,
        }
    }

    /// Receive the next frame, waiting up to `timeout` of sim-time.
    pub fn recv(&self, clock: &SimClock, timeout: SimDuration) -> JointRecv {
        match self.rx.recv_timeout(clock.to_real(timeout)) {
            Ok(msg) => self.on_msg(msg),
            Err(handoff::RecvTimeoutError::Timeout) => {
                // an empty queue on a retired joint means end-of-stream even
                // if the Retired marker was squeezed out by a full queue
                if self.joint.is_retired() {
                    JointRecv::Retired
                } else {
                    JointRecv::Timeout
                }
            }
            Err(handoff::RecvTimeoutError::Disconnected) => JointRecv::Retired,
        }
    }

    /// Receive without blocking: `None` when the queue is empty. Cooperative
    /// intake tasks poll this from the scheduler instead of parking a whole
    /// OS thread in [`JointSubscription::recv`].
    pub fn try_recv(&self) -> Option<JointRecv> {
        match self.rx.try_recv() {
            Some(msg) => Some(self.on_msg(msg)),
            None if self.joint.is_retired() => Some(JointRecv::Retired),
            None => None,
        }
    }

    /// Bytes currently waiting in this subscription's queue.
    pub fn queued_bytes(&self) -> u64 {
        // relaxed-ok: monitoring read of a lone gauge
        self.queued_bytes.load(Ordering::Relaxed)
    }

    /// The joint this subscription belongs to.
    pub fn joint(&self) -> &Arc<FeedJoint> {
        &self.joint
    }

    /// Gracefully end the subscription.
    pub fn unsubscribe(self) {
        self.joint.unsubscribe(&self.key);
    }
}

impl std::fmt::Debug for JointSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JointSubscription('{}' on {})", self.key, self.joint.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_common::{Record, RecordId};

    fn frame(ids: std::ops::Range<u64>) -> DataFrame {
        DataFrame::from_records(ids.map(|i| Record::tracked(RecordId(i), 0, "x")).collect())
    }

    fn clock() -> SimClock {
        SimClock::with_scale(1000.0) // real time so recv timeouts are exact
    }

    fn drain(sub: &JointSubscription, n: usize) -> Vec<DataFrame> {
        let c = clock();
        (0..n)
            .map(|_| match sub.recv(&c, SimDuration::from_secs(2)) {
                JointRecv::Frame(f) => f,
                other => panic!("expected frame, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn short_circuit_single_subscriber() {
        let joint = FeedJoint::new("TwitterFeed");
        let sub = joint.subscribe("conn1");
        joint.deposit(frame(0..3)).unwrap();
        let got = drain(&sub, 1);
        assert_eq!(got[0].len(), 3);
        assert_eq!(joint.stats.short_circuited.load(Ordering::Relaxed), 1);
        assert_eq!(joint.stats.buckets_created.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shared_mode_guarantees_delivery_to_all() {
        let joint = FeedJoint::new("TwitterFeed");
        let s1 = joint.subscribe("conn1");
        let s2 = joint.subscribe("conn2");
        joint.deposit(frame(0..5)).unwrap();
        joint.deposit(frame(5..10)).unwrap();
        let f1 = drain(&s1, 2);
        let f2 = drain(&s2, 2);
        assert_eq!(f1[0].records(), f2[0].records());
        assert_eq!(f1[1].records(), f2[1].records());
        assert_eq!(joint.stats.buckets_created.load(Ordering::Relaxed), 2);
        assert_eq!(joint.stats.buckets_reclaimed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn mode_switches_dynamically() {
        let joint = FeedJoint::new("F");
        let s1 = joint.subscribe("a");
        joint.deposit(frame(0..1)).unwrap();
        let s2 = joint.subscribe("b");
        joint.deposit(frame(1..2)).unwrap();
        joint.unsubscribe("b");
        drop(s2);
        joint.deposit(frame(2..3)).unwrap();
        assert_eq!(joint.stats.short_circuited.load(Ordering::Relaxed), 2);
        assert_eq!(joint.stats.buckets_created.load(Ordering::Relaxed), 1);
        // subscriber a saw all three frames
        assert_eq!(drain(&s1, 3).len(), 3);
    }

    #[test]
    fn congestion_isolation_slow_subscriber_does_not_block() {
        let joint = FeedJoint::new("F");
        let fast = joint.subscribe("fast");
        let _slow = joint.subscribe("slow"); // never consumes
        for i in 0..50 {
            joint.deposit(frame(i * 10..i * 10 + 10)).unwrap();
        }
        // fast subscriber can consume everything immediately
        assert_eq!(drain(&fast, 50).len(), 50);
        // buckets not reclaimed while slow holds them
        assert_eq!(joint.stats.buckets_reclaimed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unsubscribe_releases_bucket_holds() {
        let joint = FeedJoint::new("F");
        let s1 = joint.subscribe("a");
        let _s2 = joint.subscribe("b");
        joint.deposit(frame(0..1)).unwrap();
        drain(&s1, 1);
        assert_eq!(joint.stats.buckets_reclaimed.load(Ordering::Relaxed), 0);
        joint.unsubscribe("b");
        assert_eq!(joint.stats.buckets_reclaimed.load(Ordering::Relaxed), 1);
        assert_eq!(joint.subscriber_count(), 1);
    }

    #[test]
    fn reattach_resumes_the_same_queue() {
        let joint = FeedJoint::new("F");
        let s1 = joint.subscribe("conn1");
        joint.deposit(frame(0..2)).unwrap();
        drop(s1); // consumer died without unsubscribing (pipeline failure)
        joint.deposit(frame(2..4)).unwrap(); // buffer mode: queue accumulates
        let s1b = joint.subscribe("conn1"); // rebuilt pipeline re-attaches
        let got = drain(&s1b, 2);
        assert_eq!(got[0].records()[0].id, RecordId(0));
        assert_eq!(got[1].records()[0].id, RecordId(2));
    }

    #[test]
    fn queued_bytes_tracks_backlog() {
        let joint = FeedJoint::new("F");
        let sub = joint.subscribe("a");
        assert_eq!(sub.queued_bytes(), 0);
        joint.deposit(frame(0..10)).unwrap();
        assert!(sub.queued_bytes() > 0);
        drain(&sub, 1);
        assert_eq!(sub.queued_bytes(), 0);
    }

    #[test]
    fn detach_queued_harvests_frames_and_releases_buckets() {
        let joint = FeedJoint::new("F");
        let s1 = joint.subscribe("a");
        let _s2 = joint.subscribe("b");
        joint.deposit(frame(0..2)).unwrap();
        joint.deposit(frame(2..4)).unwrap();
        drain(&s1, 2); // `a` consumed both; `b` still holds its copies
        let harvested = joint.detach_queued("b");
        assert_eq!(harvested.len(), 2);
        assert_eq!(harvested[0].records()[0].id, RecordId(0));
        assert_eq!(harvested[1].records()[0].id, RecordId(2));
        assert_eq!(joint.stats.buckets_reclaimed.load(Ordering::Relaxed), 2);
        assert_eq!(joint.subscriber_count(), 1);
        // detaching an unknown key is a harmless no-op
        assert!(joint.detach_queued("nope").is_empty());
    }

    #[test]
    fn deposit_with_no_subscribers_drops() {
        let joint = FeedJoint::new("F");
        joint.deposit(frame(0..5)).unwrap();
        assert_eq!(joint.stats.frames_routed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retire_ends_streams_and_rejects_deposits() {
        let joint = FeedJoint::new("F");
        let sub = joint.subscribe("a");
        joint.retire();
        assert!(joint.is_retired());
        match sub.recv(&clock(), SimDuration::from_secs(1)) {
            JointRecv::Retired => {}
            other => panic!("expected retired, got {other:?}"),
        }
        assert!(joint.deposit(frame(0..1)).is_err());
    }

    #[test]
    fn timeout_when_empty() {
        let joint = FeedJoint::new("F");
        let sub = joint.subscribe("a");
        match sub.recv(&clock(), SimDuration::from_millis(10)) {
            JointRecv::Timeout => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
