//! Per-connection counters and the Table 7.1 metrics.
//!
//! Chapter 7 monitors a data ingestion pipeline through a small set of
//! symbols — arrival rate, processing rate, excess records and their fate —
//! and the evaluation figures plot instantaneous ingestion throughput.
//! [`FeedMetrics`] is the shared counter block every operator of a
//! connection updates. All instruments live in the cluster-wide
//! [`MetricsRegistry`] under `feed.*` names with a `conn` label naming the
//! connection, so one `registry().snapshot()` sees every connection; the
//! struct just caches the typed handles for lock-free hot-path updates.

use asterix_common::{
    Counter, Gauge, Histogram, MetricsRegistry, RateMeter, SimClock, SimDuration, SimInstant,
    ThroughputSeries,
};
use std::sync::Arc;

/// Counters for one feed connection (all monotonically increasing, except
/// the gauges and the lag histogram at the bottom).
///
/// Every instrument is also registered in a [`MetricsRegistry`] under
/// `feed.<name>` with a `conn` label, so snapshots of the registry and the
/// handles here observe the same values.
#[derive(Debug)]
pub struct FeedMetrics {
    /// Records received from the source / parent joint (rate-of-arrival
    /// numerator, Table 7.1's λ).
    pub records_in: Counter,
    /// Records that passed the compute stage.
    pub records_computed: Counter,
    /// Records persisted (and indexed) — the paper's headline metric.
    pub records_persisted: Counter,
    /// Records dropped by the Discard strategy.
    pub records_discarded: Counter,
    /// Records dropped by the Throttle strategy's sampling.
    pub records_throttled: Counter,
    /// Records written to the spill file.
    pub records_spilled: Counter,
    /// Records read back from the spill file and processed.
    pub records_despilled: Counter,
    /// Soft failures skipped by the MetaFeed sandbox.
    pub soft_failures: Counter,
    /// Records replayed by the at-least-once tracker.
    pub records_replayed: Counter,
    /// Elastic scale-out events requested.
    pub elastic_scaleouts: Counter,
    /// Frames group-committed by the store stage. Together with
    /// `records_persisted` this gives the effective batch size the write
    /// path achieved (persisted / frames_stored).
    pub frames_stored: Counter,
    /// Text-parser invocations attributed to this connection — cache
    /// *misses* of the shared per-payload parse cell. On the happy path the
    /// adaptor seeds the cache, so every downstream stage hits it and this
    /// stays 0; despilled records (whose cache was shed with the spill) and
    /// records arriving through a joint from another feed's serialized
    /// output show up here.
    pub parse_calls: Counter,
    /// Hard failures (node loss, operator panic) this connection recovered
    /// from (§6.2.2/§6.2.3).
    pub hard_failures_recovered: Counter,
    /// Zombie frames adopted by replacement operator instances after a
    /// failure (§6.2.2).
    pub zombie_frames_adopted: Counter,
    /// Current spill file size in bytes (gauge).
    pub spill_bytes: Gauge,
    /// Current in-memory excess buffer size in bytes (gauge).
    pub buffer_bytes: Gauge,
    /// Current hand-off queue depth in frames (gauge) — the congestion
    /// sensor the scaling governor samples.
    pub handoff_queue_frames: Gauge,
    /// Sim-milliseconds the most recent hard-failure recovery took, from
    /// failure handling to the connection going active again (gauge).
    pub last_recovery_millis: Gauge,
    /// End-to-end ingestion lag: sim-milliseconds from the record's
    /// generation stamp at the source to the post-group-commit moment it
    /// became durable in the store.
    pub ingest_lag_millis: Histogram,
    meter: RateMeter,
    clock: SimClock,
}

impl FeedMetrics {
    /// Metrics registered in `registry` under `feed.*` with label
    /// `conn=<scope>`; the persist meter buckets by `bucket` (the paper
    /// uses two-second buckets).
    pub fn registered(
        registry: &MetricsRegistry,
        scope: &str,
        clock: SimClock,
        bucket: SimDuration,
    ) -> Arc<FeedMetrics> {
        let labels = &[("conn", scope)];
        let counter = |name: &str| registry.counter(&format!("feed.{name}"), labels);
        let gauge = |name: &str| registry.gauge(&format!("feed.{name}"), labels);
        let origin = clock.now();
        Arc::new(FeedMetrics {
            records_in: counter("records_in"),
            records_computed: counter("records_computed"),
            records_persisted: counter("records_persisted"),
            records_discarded: counter("records_discarded"),
            records_throttled: counter("records_throttled"),
            records_spilled: counter("records_spilled"),
            records_despilled: counter("records_despilled"),
            soft_failures: counter("soft_failures"),
            records_replayed: counter("records_replayed"),
            elastic_scaleouts: counter("elastic_scaleouts"),
            frames_stored: counter("frames_stored"),
            parse_calls: counter("parse_calls"),
            hard_failures_recovered: counter("hard_failures_recovered"),
            zombie_frames_adopted: counter("zombie_frames_adopted"),
            spill_bytes: gauge("spill_bytes"),
            buffer_bytes: gauge("buffer_bytes"),
            handoff_queue_frames: gauge("handoff_queue_frames"),
            last_recovery_millis: gauge("last_recovery_millis"),
            ingest_lag_millis: registry.histogram("feed.ingest_lag_millis", labels),
            meter: RateMeter::new(origin, bucket),
            clock,
        })
    }

    /// [`FeedMetrics::registered`] with the default two-second buckets
    /// (§6.3).
    pub fn registered_default(
        registry: &MetricsRegistry,
        scope: &str,
        clock: SimClock,
    ) -> Arc<FeedMetrics> {
        FeedMetrics::registered(registry, scope, clock, SimDuration::from_secs(2))
    }

    /// Detached metrics (registered in a private throwaway registry) for
    /// unit tests that don't run a cluster.
    pub fn new(clock: SimClock, bucket: SimDuration) -> Arc<FeedMetrics> {
        FeedMetrics::registered(&MetricsRegistry::new(), "detached", clock, bucket)
    }

    /// Detached metrics with the default two-second buckets.
    pub fn with_default_bucket(clock: SimClock) -> Arc<FeedMetrics> {
        FeedMetrics::new(clock, SimDuration::from_secs(2))
    }

    /// Record `n` persisted records now (store stage calls this post-WAL).
    pub fn persisted(&self, n: u64) {
        self.records_persisted.add(n);
        self.meter.record_at(self.clock.now(), n);
    }

    /// Record `n` persisted records at an explicit instant (tests).
    pub fn persisted_at(&self, t: SimInstant, n: u64) {
        self.records_persisted.add(n);
        self.meter.record_at(t, n);
    }

    /// Record the end-to-end lag of a record generated at `gen_at` and
    /// durable now.
    pub fn lag_from(&self, gen_at: SimInstant) {
        self.ingest_lag_millis
            .record(self.clock.now().since(gen_at).0);
    }

    /// Instantaneous-throughput series of persisted records.
    pub fn throughput(&self) -> ThroughputSeries {
        self.meter.series()
    }

    /// Convenience getter.
    pub fn get(&self, c: &Counter) -> u64 {
        c.get()
    }

    /// One-line summary for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "in={} computed={} persisted={} discarded={} throttled={} spilled={} despilled={} soft_failures={} replayed={} parse_calls={} frames_stored={} hard_recoveries={} zombies_adopted={}",
            self.records_in.get(),
            self.records_computed.get(),
            self.records_persisted.get(),
            self.records_discarded.get(),
            self.records_throttled.get(),
            self.records_spilled.get(),
            self.records_despilled.get(),
            self.soft_failures.get(),
            self.records_replayed.get(),
            self.parse_calls.get(),
            self.frames_stored.get(),
            self.hard_failures_recovered.get(),
            self.zombie_frames_adopted.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persisted_updates_counter_and_meter() {
        let clock = SimClock::with_scale(5.0);
        let m = FeedMetrics::with_default_bucket(clock.clone());
        m.persisted(10);
        clock.sleep(SimDuration::from_secs(2));
        m.persisted(4);
        assert_eq!(m.records_persisted.get(), 14);
        let series = m.throughput();
        assert_eq!(series.total(), 14);
        assert!(series.points.len() >= 2);
    }

    #[test]
    fn persisted_at_allows_backdating() {
        let clock = SimClock::with_scale(5.0);
        let m = FeedMetrics::new(clock, SimDuration::from_secs(1));
        m.persisted_at(SimInstant(500), 3);
        m.persisted_at(SimInstant(1500), 7);
        let s = m.throughput();
        assert_eq!(s.points[0].count, 3);
        assert_eq!(s.points[1].count, 7);
    }

    #[test]
    fn summary_mentions_all_counters() {
        let m = FeedMetrics::with_default_bucket(SimClock::fast());
        m.records_in.add(5);
        m.records_discarded.add(2);
        let s = m.summary();
        assert!(s.contains("in=5"));
        assert!(s.contains("discarded=2"));
        assert!(s.contains("persisted=0"));
        assert!(s.contains("frames_stored=0"));
        assert!(s.contains("hard_recoveries=0"));
        assert!(s.contains("zombies_adopted=0"));
    }

    #[test]
    fn registered_metrics_share_the_cluster_registry() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::fast();
        let m = FeedMetrics::registered_default(&registry, "F -> D", clock.clone());
        m.records_in.add(7);
        m.persisted(3);
        m.buffer_bytes.set(1024);
        m.lag_from(clock.now());
        let snap = registry.snapshot();
        assert_eq!(snap.counter_for("feed.records_in", "F -> D"), 7);
        assert_eq!(snap.counter_for("feed.records_persisted", "F -> D"), 3);
        assert_eq!(snap.gauge_for("feed.buffer_bytes", "F -> D"), Some(1024));
        let lag = snap.histogram("feed.ingest_lag_millis").expect("lag hist");
        assert_eq!(lag.count, 1);
        assert!(snap.all_finite());
    }
}
