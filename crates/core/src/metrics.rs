//! Per-connection counters and the Table 7.1 metrics.
//!
//! Chapter 7 monitors a data ingestion pipeline through a small set of
//! symbols — arrival rate, processing rate, excess records and their fate —
//! and the evaluation figures plot instantaneous ingestion throughput.
//! [`FeedMetrics`] is the shared counter block every operator of a
//! connection updates; the harnesses snapshot it into series.

use asterix_common::{RateMeter, SimClock, SimDuration, SimInstant, ThroughputSeries};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one feed connection (all monotonically increasing, except
/// the gauges at the bottom).
#[derive(Debug)]
pub struct FeedMetrics {
    /// Records received from the source / parent joint (rate-of-arrival
    /// numerator, Table 7.1's λ).
    pub records_in: AtomicU64,
    /// Records that passed the compute stage.
    pub records_computed: AtomicU64,
    /// Records persisted (and indexed) — the paper's headline metric.
    pub records_persisted: AtomicU64,
    /// Records dropped by the Discard strategy.
    pub records_discarded: AtomicU64,
    /// Records dropped by the Throttle strategy's sampling.
    pub records_throttled: AtomicU64,
    /// Records written to the spill file.
    pub records_spilled: AtomicU64,
    /// Records read back from the spill file and processed.
    pub records_despilled: AtomicU64,
    /// Soft failures skipped by the MetaFeed sandbox.
    pub soft_failures: AtomicU64,
    /// Records replayed by the at-least-once tracker.
    pub records_replayed: AtomicU64,
    /// Elastic scale-out events requested.
    pub elastic_scaleouts: AtomicU64,
    /// Frames group-committed by the store stage. Together with
    /// `records_persisted` this gives the effective batch size the write
    /// path achieved (persisted / frames_stored).
    pub frames_stored: AtomicU64,
    /// Text-parser invocations attributed to this connection — cache
    /// *misses* of the shared per-payload parse cell. On the happy path the
    /// adaptor seeds the cache, so every downstream stage hits it and this
    /// stays 0; despilled records (whose cache was shed with the spill) and
    /// records arriving through a joint from another feed's serialized
    /// output show up here.
    pub parse_calls: AtomicU64,
    /// Hard failures (node loss, operator panic) this connection recovered
    /// from (§6.2.2/§6.2.3).
    pub hard_failures_recovered: AtomicU64,
    /// Zombie frames adopted by replacement operator instances after a
    /// failure (§6.2.2).
    pub zombie_frames_adopted: AtomicU64,
    /// Current spill file size in bytes (gauge).
    pub spill_bytes: AtomicU64,
    /// Current in-memory excess buffer size in bytes (gauge).
    pub buffer_bytes: AtomicU64,
    /// Sim-milliseconds the most recent hard-failure recovery took, from
    /// failure handling to the connection going active again (gauge).
    pub last_recovery_millis: AtomicU64,
    meter: RateMeter,
    clock: SimClock,
}

impl FeedMetrics {
    /// Fresh metrics; the persist meter buckets by `bucket` (the paper uses
    /// two-second buckets).
    pub fn new(clock: SimClock, bucket: SimDuration) -> Arc<FeedMetrics> {
        let origin = clock.now();
        Arc::new(FeedMetrics {
            records_in: AtomicU64::new(0),
            records_computed: AtomicU64::new(0),
            records_persisted: AtomicU64::new(0),
            records_discarded: AtomicU64::new(0),
            records_throttled: AtomicU64::new(0),
            records_spilled: AtomicU64::new(0),
            records_despilled: AtomicU64::new(0),
            soft_failures: AtomicU64::new(0),
            records_replayed: AtomicU64::new(0),
            elastic_scaleouts: AtomicU64::new(0),
            frames_stored: AtomicU64::new(0),
            parse_calls: AtomicU64::new(0),
            hard_failures_recovered: AtomicU64::new(0),
            zombie_frames_adopted: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            buffer_bytes: AtomicU64::new(0),
            last_recovery_millis: AtomicU64::new(0),
            meter: RateMeter::new(origin, bucket),
            clock,
        })
    }

    /// Default two-second buckets (§6.3).
    pub fn with_default_bucket(clock: SimClock) -> Arc<FeedMetrics> {
        FeedMetrics::new(clock, SimDuration::from_secs(2))
    }

    /// Record `n` persisted records now (store stage calls this post-WAL).
    pub fn persisted(&self, n: u64) {
        self.records_persisted.fetch_add(n, Ordering::Relaxed);
        self.meter.record_at(self.clock.now(), n);
    }

    /// Record `n` persisted records at an explicit instant (tests).
    pub fn persisted_at(&self, t: SimInstant, n: u64) {
        self.records_persisted.fetch_add(n, Ordering::Relaxed);
        self.meter.record_at(t, n);
    }

    /// Instantaneous-throughput series of persisted records.
    pub fn throughput(&self) -> ThroughputSeries {
        self.meter.series()
    }

    /// Convenience getter.
    pub fn get(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// One-line summary for experiment output.
    pub fn summary(&self) -> String {
        format!(
            "in={} computed={} persisted={} discarded={} throttled={} spilled={} despilled={} soft_failures={} replayed={} parse_calls={} frames_stored={} hard_recoveries={} zombies_adopted={}",
            self.records_in.load(Ordering::Relaxed),
            self.records_computed.load(Ordering::Relaxed),
            self.records_persisted.load(Ordering::Relaxed),
            self.records_discarded.load(Ordering::Relaxed),
            self.records_throttled.load(Ordering::Relaxed),
            self.records_spilled.load(Ordering::Relaxed),
            self.records_despilled.load(Ordering::Relaxed),
            self.soft_failures.load(Ordering::Relaxed),
            self.records_replayed.load(Ordering::Relaxed),
            self.parse_calls.load(Ordering::Relaxed),
            self.frames_stored.load(Ordering::Relaxed),
            self.hard_failures_recovered.load(Ordering::Relaxed),
            self.zombie_frames_adopted.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persisted_updates_counter_and_meter() {
        let clock = SimClock::with_scale(5.0);
        let m = FeedMetrics::with_default_bucket(clock.clone());
        m.persisted(10);
        clock.sleep(SimDuration::from_secs(2));
        m.persisted(4);
        assert_eq!(m.records_persisted.load(Ordering::Relaxed), 14);
        let series = m.throughput();
        assert_eq!(series.total(), 14);
        assert!(series.points.len() >= 2);
    }

    #[test]
    fn persisted_at_allows_backdating() {
        let clock = SimClock::with_scale(5.0);
        let m = FeedMetrics::new(clock, SimDuration::from_secs(1));
        m.persisted_at(SimInstant(500), 3);
        m.persisted_at(SimInstant(1500), 7);
        let s = m.throughput();
        assert_eq!(s.points[0].count, 3);
        assert_eq!(s.points[1].count, 7);
    }

    #[test]
    fn summary_mentions_all_counters() {
        let m = FeedMetrics::with_default_bucket(SimClock::fast());
        m.records_in.fetch_add(5, Ordering::Relaxed);
        m.records_discarded.fetch_add(2, Ordering::Relaxed);
        let s = m.summary();
        assert!(s.contains("in=5"));
        assert!(s.contains("discarded=2"));
        assert!(s.contains("persisted=0"));
        assert!(s.contains("frames_stored=0"));
        assert!(s.contains("hard_recoveries=0"));
        assert!(s.contains("zombies_adopted=0"));
    }
}
