//! The Central Feed Manager and connection lifecycle.
//!
//! The controller is the §5.3/§6.2 "Central Feed Manager (CFM)" co-located
//! with the Cluster Controller: it processes `connect feed` / `disconnect
//! feed`, constructs cascade networks by reusing active feed joints, "keeps
//! track of the location for each operator instance that is participating
//! in a data ingestion pipeline", subscribes to cluster events, and drives
//! the fault-tolerance protocol (§6.2.2) and elastic restructuring
//! (§7.3.5).
//!
//! ## Pipeline segments
//!
//! A connected cascade network is a set of *segments*, each one Hyracks job:
//!
//! * **Collect segment** (head, one per primary feed with a live external
//!   connection): `FeedCollect(adaptor) → NullSink`, publishing the root
//!   joint;
//! * **Compute segment** (one per feed with a UDF): `FeedIntake(parent
//!   joint) → Assign(UDF)`, publishing the feed's joint;
//! * **Store segment** (tail, one per connection): `FeedIntake(source
//!   joint) → hash-partition → IndexInsert`, co-located with the target
//!   dataset's partitions.
//!
//! Segments are shared: connecting a feed reuses the nearest active
//! ancestor joint (§5.3.2, "to minimize the processing involved in forming
//! a feed, it is desired to source the feed from the nearest ancestor feed
//! that is in the connected state"). Disconnecting kills only the store
//! segment; producer segments are garbage-collected when their joints lose
//! their last subscriber.

use crate::catalog::{FeedCatalog, FeedKind};
use crate::flow::ElasticRequest;
use crate::governor::{decide, GovernorConfig, GovernorSample, GovernorState, ScaleDecision};
use crate::manager::FeedManager;
use crate::metrics::FeedMetrics;
use crate::ops::{
    new_soft_failure_log, AckPlumbing, AssignDesc, CollectDesc, IntakeDesc, RouteDesc,
    SoftFailureEntry, SoftFailureLog, StoreAck, StoreDesc,
};
use crate::plan::{IngestPlan, SinkSpec};
use crate::policy::IngestionPolicy;
use crate::udf::Udf;
use asterix_common::ids::IdGen;
use asterix_common::sync::{handoff, thread as sync_thread, Mutex};
use asterix_common::{
    FaultPlan, FeedId, HistogramSnapshot, IngestError, IngestResult, NodeId, SimDuration,
    SimInstant,
};
use asterix_hyracks::cluster::{Cluster, ClusterEvent};
use asterix_hyracks::connector::ConnectorSpec;
use asterix_hyracks::executor::{run_job, JobHandle, TaskContext};
use asterix_hyracks::job::{Constraint, JobSpec, OperatorDescriptor};
use asterix_hyracks::operator::{FrameWriter, NullSink, OperatorRuntime};
use asterix_hyracks::scheduler::TaskHandle;
use asterix_hyracks::transport::TransportKind;
use asterix_storage::Dataset;
use crossbeam_channel::Sender;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

static CONNECTION_IDS: IdGen = IdGen::new();

/// Identifies one feed-to-dataset connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionId(pub u64);

impl From<u64> for ConnectionId {
    fn from(v: u64) -> Self {
        ConnectionId(v)
    }
}

impl std::fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CONN{}", self.0)
    }
}

/// Observable state of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionState {
    /// Ingesting.
    Active,
    /// Store node lost; awaiting its re-join (§6.2.3, store failure).
    Suspended,
    /// Disconnected or terminated.
    Ended,
}

struct CollectSegment {
    joint_id: String,
    factory: Arc<dyn crate::adaptor::AdaptorFactory>,
    config: crate::adaptor::AdaptorConfig,
    locations: Vec<NodeId>,
    job: JobHandle,
}

struct ComputeSegment {
    out_joint: String,
    in_joint: String,
    udf: Udf,
    feed_id: FeedId,
    compute_locations: Vec<NodeId>,
    policy: IngestionPolicy,
    metrics: Arc<FeedMetrics>,
    depth: usize,
    extra_spin: u64,
    extra_delay_us: u64,
    job: JobHandle,
    /// At-least-once custody for processed feeds (§5.6): the tracker sits
    /// at this segment's intake — which for the depth-1 stage is the
    /// adaptor-side node — and holds every record until the *store* stage
    /// acks it, so a compute- or store-node death never strands the only
    /// copy mid-pipeline. Deeper stages and non-ALO segments carry `None`.
    ack: Option<Arc<AckPlumbing>>,
    /// Ack senders handed to every store job consuming this chain.
    store_ack: Option<Arc<StoreAck>>,
}

/// The fan-out joint of a multi-sink ingestion plan: one Hyracks job
/// (`FeedIntake(tail joint) → Route`) evaluating every sink's routing
/// predicate once per record and depositing matches into per-sink joints,
/// each consumed by an independent store connection.
struct RouteSegment {
    plan: Arc<IngestPlan>,
    /// The plan's tail feed joint the router subscribes to.
    in_joint: String,
    /// Per-sink out joints (`plan:<plan>:<dataset>`), sink-index aligned.
    out_joints: Vec<String>,
    feed_id: FeedId,
    /// The router rides on the in-joint's nodes (no repartitioning).
    locations: Vec<NodeId>,
    /// Trunk policy governing the router's intake (always lossless Spill:
    /// per-sink loss semantics belong to the sink connections downstream).
    policy: IngestionPolicy,
    metrics: Arc<FeedMetrics>,
    /// Per-sink `plan.sink.records_routed` counters, sink-index aligned.
    routed: Vec<asterix_common::Counter>,
    /// `plan.route.no_match_total` for this plan.
    no_match: asterix_common::Counter,
    job: JobHandle,
}

struct Connection {
    id: ConnectionId,
    key: String,
    feed: String,
    feed_id: FeedId,
    dataset: Arc<Dataset>,
    source_joint: String,
    policy: IngestionPolicy,
    metrics: Arc<FeedMetrics>,
    job: Option<JobHandle>,
    state: ConnectionState,
    /// When the store node was lost (recovery-latency measurement).
    suspended_at: Option<SimInstant>,
}

#[derive(Default)]
struct State {
    /// joint id → nodes hosting an instance of it
    joints: HashMap<String, Vec<NodeId>>,
    collects: HashMap<String, CollectSegment>,
    computes: HashMap<String, ComputeSegment>,
    /// plan name → fan-out joint of that multi-sink plan
    routes: HashMap<String, RouteSegment>,
    connections: HashMap<ConnectionId, Connection>,
}

/// Tuning knobs for the controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Hand-off queue depth per intake (frames) — the congestion sensor.
    pub flow_capacity: usize,
    /// Ack grouping window for at-least-once.
    pub ack_window: SimDuration,
    /// Replay timeout for at-least-once.
    pub ack_timeout: SimDuration,
    /// Default compute parallelism (`None` = one instance per alive node).
    pub compute_parallelism: Option<usize>,
    /// Offset into the alive-node list where compute instances are placed
    /// (round-robin). Lets experiments separate intake, compute and store
    /// roles onto distinct nodes, like the paper's Fig 6.4 layout.
    pub compute_node_offset: usize,
    /// Busy-spin iterations added per record at every compute stage
    /// (experiment knob; normally 0).
    pub compute_extra_spin: u64,
    /// Sleep (µs) added per record at every compute stage — fixed per-node
    /// capacity modelling for scalability experiments (normally 0).
    pub compute_extra_delay_us: u64,
    /// Chaos schedule handed to store-stage intakes (operator-panic
    /// injection). `None` in production; the chaos harness sets it.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Wire the controller's pipeline segments ride on: in-process ports
    /// (default) or length-prefixed TCP over loopback.
    pub transport: TransportKind,
    /// Closed-loop scaling governor tuning; disabled by default, in which
    /// case elastic requests fall back to the open-loop scale-by-one path.
    pub governor: GovernorConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            flow_capacity: 16,
            ack_window: SimDuration::from_millis(500),
            ack_timeout: SimDuration::from_secs(10),
            compute_parallelism: None,
            compute_node_offset: 0,
            compute_extra_spin: 0,
            compute_extra_delay_us: 0,
            fault_plan: None,
            transport: TransportKind::InProcess,
            governor: GovernorConfig::default(),
        }
    }
}

/// Per-connection control-loop bookkeeping carried between governor ticks.
#[derive(Default)]
struct ConnGovernor {
    control: GovernorState,
    /// Previous tick's cumulative lag snapshot — subtracted from the current
    /// one so the governor reacts to the *recent* window, not lifetime lag.
    prev_lag: Option<HistogramSnapshot>,
    /// Previous tick's cumulative pressure-counter sum.
    prev_pressure: u64,
    /// Open-loop elastic requests received since the last tick; folded into
    /// the sample as pressure so the hot-path signal is never lost, but
    /// acted on under the governor's hysteresis/cooldown instead of
    /// immediately.
    pending_requests: u64,
}

#[derive(Default)]
struct GovernorRuntime {
    conns: HashMap<String, ConnGovernor>,
}

/// One aborted pipeline job whose partition state must settle before the
/// successor owns the stream. The job is awaited *after* the controller
/// lock is released; then, if the placement changed, frames stranded on
/// abandoned partitions (parked zombie state plus anything still queued in
/// the old joint subscriptions) are harvested and re-parked on the
/// successor partitions' nodes.
struct Migration {
    job: JobHandle,
    /// `(joint id, sub-key prefix, old placement, new placement)`; `None`
    /// when the placement is unchanged — the successor resumes the same
    /// queues and late zombie adoption alone closes the park-after-start
    /// window.
    repartition: Option<(String, String, Vec<NodeId>, Vec<NodeId>)>,
}

/// The producer side of a connection, planned under the state lock by
/// [`FeedController::build_producer_chain`]: joints pre-registered, compute
/// segment records inserted, jobs not yet spawned (consumer subscriptions
/// must be live first — [`FeedController::finish_producer_chain`] starts
/// them deepest-first, the collect job last).
struct ChainPlan {
    /// Stage-0 joint (the primary feed's name).
    root_raw_joint: String,
    /// The chain's tail joint — what the consumer (store or route job)
    /// subscribes to.
    source_joint: String,
    /// Adaptor factory + config when a new collect segment is needed
    /// (`None` reuses a live ancestor's head section).
    collect_factory: Option<(
        Arc<dyn crate::adaptor::AdaptorFactory>,
        crate::adaptor::AdaptorConfig,
    )>,
    /// Out joints of the newly planned compute segments, deepest first.
    new_outs: Vec<String>,
}

/// The Central Feed Manager.
pub struct FeedController {
    cluster: Cluster,
    catalog: Arc<FeedCatalog>,
    config: ControllerConfig,
    state: Mutex<State>,
    /// Hot-path congestion reports land here. Held as an `Option` so
    /// shutdown can drop the last sender, which disconnects the channel and
    /// lets the elastic monitor exit deterministically.
    elastic_tx: Mutex<Option<Sender<ElasticRequest>>>,
    /// The monitor threads, joined on shutdown so no `cfm-*` thread
    /// outlives the controller.
    monitors: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The periodic governor task on the cluster scheduler (when enabled).
    governor_task: Mutex<Option<TaskHandle>>,
    governor: Mutex<GovernorRuntime>,
    log: SoftFailureLog,
    log_dataset: Mutex<Option<Arc<Dataset>>>,
    shutdown: AtomicBool,
}

impl FeedController {
    /// Start the controller: subscribes to cluster events and begins
    /// monitoring for failures and elastic requests.
    pub fn start(
        cluster: Cluster,
        catalog: Arc<FeedCatalog>,
        config: ControllerConfig,
    ) -> Arc<FeedController> {
        let (elastic_tx, elastic_rx) = crossbeam_channel::unbounded::<ElasticRequest>();
        let ctrl = Arc::new(FeedController {
            cluster: cluster.clone(),
            catalog,
            config,
            state: Mutex::new(State::default()),
            elastic_tx: Mutex::new(Some(elastic_tx)),
            monitors: Mutex::new(Vec::new()),
            governor_task: Mutex::new(None),
            governor: Mutex::new(GovernorRuntime::default()),
            log: new_soft_failure_log(),
            log_dataset: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        // failure monitor
        let events = cluster.subscribe();
        let c1 = Arc::clone(&ctrl);
        let failure_monitor = sync_thread::spawn_named("cfm-failure-monitor", move || {
            while !c1.shutdown.load(Ordering::SeqCst) {
                match events.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(ClusterEvent::NodeFailed(n)) => c1.handle_node_failure(n),
                    Ok(ClusterEvent::NodeJoined(n)) => c1.handle_node_join(n),
                    Err(handoff::RecvTimeoutError::Timeout) => {
                        c1.sweep_dead_segments();
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn cfm monitor");
        // elastic monitor
        let c2 = Arc::clone(&ctrl);
        let elastic_monitor = sync_thread::spawn_named("cfm-elastic-monitor", move || {
            while !c2.shutdown.load(Ordering::SeqCst) {
                match elastic_rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(req) => c2.handle_elastic_request(&req),
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn elastic monitor");
        ctrl.monitors
            .lock()
            .extend([failure_monitor, elastic_monitor]);
        // closed-loop scaling governor: periodic housekeeping on the shared
        // scheduler, like the console reporter — a Weak reference so the
        // task never keeps a dropped controller alive
        if ctrl.config.governor.enabled {
            let weak: Weak<FeedController> = Arc::downgrade(&ctrl);
            let interval = cluster.clock().to_real(ctrl.config.governor.interval);
            let task = cluster
                .scheduler()
                .spawn_periodic("cfm-governor", interval, move || match weak.upgrade() {
                    Some(c) if !c.shutdown.load(Ordering::SeqCst) => {
                        c.governor_tick();
                        true
                    }
                    _ => false,
                });
            *ctrl.governor_task.lock() = Some(task);
        }
        ctrl
    }

    /// Start with default config.
    pub fn start_default(cluster: Cluster, catalog: Arc<FeedCatalog>) -> Arc<FeedController> {
        FeedController::start(cluster, catalog, ControllerConfig::default())
    }

    /// The global soft-failure error log.
    pub fn error_log(&self) -> SoftFailureLog {
        Arc::clone(&self.log)
    }

    /// Set the dedicated dataset for persisted soft-failure logging
    /// (`soft.failure.log.data`).
    pub fn set_failure_log_dataset(&self, ds: Arc<Dataset>) {
        *self.log_dataset.lock() = Some(ds);
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<FeedCatalog> {
        &self.catalog
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The cluster-wide metrics registry — *the* public handle for reading
    /// metrics. One [`asterix_common::MetricsRegistry::snapshot`] here
    /// observes every connection's `feed.*` counters, the executor's
    /// `operator.*` rates and latency histograms, and the target datasets'
    /// `storage.*` gauges.
    pub fn registry(&self) -> asterix_common::MetricsRegistry {
        self.cluster.registry()
    }

    /// A sender for hot-path elastic requests, `None` once shutdown closed
    /// the channel.
    fn elastic_sender(&self) -> Option<Sender<ElasticRequest>> {
        self.elastic_tx.lock().clone()
    }

    /// Report congestion for `connection_key` through the same channel the
    /// flow controllers use (manual scale trigger / tests). Returns false
    /// once shutdown has closed the channel.
    pub fn request_elastic(&self, connection_key: &str) -> bool {
        match self.elastic_sender() {
            Some(tx) => tx
                .send(ElasticRequest {
                    connection_key: connection_key.to_string(),
                })
                .is_ok(),
            None => false,
        }
    }

    // -----------------------------------------------------------------------
    // connect / disconnect
    // -----------------------------------------------------------------------

    /// `connect feed <feed> to dataset <dataset> using policy <policy>`.
    pub fn connect_feed(
        &self,
        feed: &str,
        dataset: &str,
        policy_name: &str,
    ) -> IngestResult<ConnectionId> {
        let policy = self.catalog.policy(policy_name)?;
        self.connect_feed_with(feed, dataset, policy)
    }

    /// Connect with an already-resolved policy (the single-sink pipeline
    /// both `connect feed` and a degenerate ingestion plan compile to).
    fn connect_feed_with(
        &self,
        feed: &str,
        dataset: &str,
        policy: IngestionPolicy,
    ) -> IngestResult<ConnectionId> {
        let dataset_arc = self.catalog.dataset(dataset)?;
        let key = format!("{feed}->{dataset}");

        let mut st = self.state.lock();
        if st
            .connections
            .values()
            .any(|c| c.key == key && c.state != ConnectionState::Ended)
        {
            return Err(IngestError::Metadata(format!(
                "feed {feed} is already connected to dataset {dataset}"
            )));
        }

        let chain = self.build_producer_chain(&mut st, feed, &policy)?;

        // --- connection record -----------------------------------------------
        let id: ConnectionId = CONNECTION_IDS.next();
        let connect_span = self
            .cluster
            .trace()
            .cluster_log()
            .span("feed.connect", key.clone());
        dataset_arc.register_observability(&self.cluster.registry(), &self.cluster.trace());
        let metrics = FeedMetrics::registered_default(
            &self.cluster.registry(),
            &key,
            self.cluster.clock().clone(),
        );
        let conn = Connection {
            id,
            key: key.clone(),
            feed: feed.to_string(),
            feed_id: self.catalog.feed_id(feed).unwrap_or(FeedId(0)),
            dataset: Arc::clone(&dataset_arc),
            source_joint: chain.source_joint.clone(),
            policy,
            metrics: Arc::clone(&metrics),
            job: None,
            state: ConnectionState::Active,
            suspended_at: None,
        };

        // --- store job (started first so its subscription is live) ----------
        let job = self.spawn_store_job(&st, &conn)?;
        let mut conn = conn;
        conn.job = Some(job);
        st.connections.insert(id, conn);

        // --- producer jobs, deepest first, collect last ----------------------
        self.finish_producer_chain(&mut st, chain)?;

        connect_span.finish("active");
        Ok(id)
    }

    /// `connect plan <plan>` — compile an [`IngestPlan`] into a running
    /// cascade. A *degenerate* plan (one sink, no predicate) runs through
    /// the exact single-connection pipeline `connect feed` always built —
    /// zero behavior change for the legacy surface. A multi-sink plan gets
    /// a fan-out [`RouteSegment`] between the producer chain and N
    /// independent store connections, each with its own dataset, policy,
    /// flow control and (at-least-once) custody.
    ///
    /// Returns one [`ConnectionId`] per sink, sink-index aligned.
    pub fn connect_plan(&self, plan: &IngestPlan) -> IngestResult<Vec<ConnectionId>> {
        plan.validate()?;
        let tail = plan.tail_feed_name();
        if plan.is_degenerate() {
            let sink = &plan.sinks[0];
            let policy = self.resolve_sink_policy(sink)?;
            let id = self.connect_feed_with(&tail, &sink.dataset, policy)?;
            return Ok(vec![id]);
        }

        // resolve every sink's dataset and policy before touching state
        let mut sink_res: Vec<(Arc<Dataset>, IngestionPolicy)> = Vec::new();
        for sink in &plan.sinks {
            let ds = self.catalog.dataset(&sink.dataset)?;
            let policy = self.resolve_sink_policy(sink)?;
            sink_res.push((ds, policy));
        }
        // The trunk (producer chain + router intake) is always lossless
        // Spill: per-sink loss semantics (Discard's gaps, Basic's budget)
        // belong downstream of the routing decision, otherwise one sink's
        // policy would drop records destined for another.
        let trunk_policy = IngestionPolicy::spill();
        let feed_id = self.catalog.feed_id(&tail).unwrap_or(FeedId(0));

        let mut st = self.state.lock();
        if st.routes.contains_key(&plan.name) {
            return Err(IngestError::Metadata(format!(
                "plan {} is already connected",
                plan.name
            )));
        }
        for sink in &plan.sinks {
            let key = format!("{tail}->{}", sink.dataset);
            if st
                .connections
                .values()
                .any(|c| c.key == key && c.state != ConnectionState::Ended)
            {
                return Err(IngestError::Metadata(format!(
                    "feed {tail} is already connected to dataset {}",
                    sink.dataset
                )));
            }
        }

        let connect_span = self
            .cluster
            .trace()
            .cluster_log()
            .span("feed.connect_plan", plan.name.clone());
        let chain = self.build_producer_chain(&mut st, &tail, &trunk_policy)?;

        // the router rides on the tail joint's nodes; its out joints are
        // co-located so routed frames never cross a node boundary twice
        let route_locs =
            st.joints.get(&chain.source_joint).cloned().ok_or_else(|| {
                IngestError::Plan(format!("no live joint '{}'", chain.source_joint))
            })?;
        let out_joints: Vec<String> = (0..plan.sinks.len())
            .map(|i| plan.sink_joint_id(i))
            .collect();
        for oj in &out_joints {
            self.preregister_joint(oj, &route_locs);
            st.joints.insert(oj.clone(), route_locs.clone());
        }

        let registry = self.cluster.registry();
        let trunk_metrics = FeedMetrics::registered_default(
            &registry,
            &format!("route:{}", plan.name),
            self.cluster.clock().clone(),
        );
        let routed: Vec<asterix_common::Counter> = (0..plan.sinks.len())
            .map(|i| {
                let label = plan.sink_label(i);
                registry.counter("plan.sink.records_routed", &[("conn", label.as_str())])
            })
            .collect();
        let no_match =
            registry.counter("plan.route.no_match_total", &[("plan", plan.name.as_str())]);
        st.routes.insert(
            plan.name.clone(),
            RouteSegment {
                plan: Arc::new(plan.clone()),
                in_joint: chain.source_joint.clone(),
                out_joints: out_joints.clone(),
                feed_id,
                locations: route_locs,
                policy: trunk_policy,
                metrics: trunk_metrics,
                routed,
                no_match,
                job: JobHandle::detached(),
            },
        );

        // --- sink store jobs first (their subscriptions must be live) -------
        let mut ids = Vec::new();
        for (i, sink) in plan.sinks.iter().enumerate() {
            let (ds, policy) = &sink_res[i];
            let key = format!("{tail}->{}", sink.dataset);
            let id: ConnectionId = CONNECTION_IDS.next();
            ds.register_observability(&registry, &self.cluster.trace());
            let metrics =
                FeedMetrics::registered_default(&registry, &key, self.cluster.clock().clone());
            let conn = Connection {
                id,
                key,
                feed: tail.clone(),
                feed_id,
                dataset: Arc::clone(ds),
                source_joint: out_joints[i].clone(),
                policy: policy.clone(),
                metrics,
                job: None,
                state: ConnectionState::Active,
                suspended_at: None,
            };
            // per-sink at-least-once custody: `chain_store_ack` finds no
            // compute segment behind a `plan:` joint, so an ALO sink gets
            // its tracker at its own store intake — the custody boundary is
            // the routing decision, which is this sink's earliest stage
            let job = self.spawn_store_job(&st, &conn)?;
            let mut conn = conn;
            conn.job = Some(job);
            st.connections.insert(id, conn);
            ids.push(id);
        }

        // --- route job (before the producers start depositing) ---------------
        let seg_ref = st.routes.get(&plan.name).unwrap();
        let job = self.spawn_route_job(&st, seg_ref)?;
        st.routes.get_mut(&plan.name).unwrap().job = job;

        // --- producer jobs, deepest first, collect last ----------------------
        self.finish_producer_chain(&mut st, chain)?;

        connect_span.finish("active");
        Ok(ids)
    }

    /// Resolve a sink's policy name + inline parameter overrides into an
    /// [`IngestionPolicy`] (an override set derives a connection-private
    /// policy named `<policy>@<dataset>`).
    fn resolve_sink_policy(&self, sink: &SinkSpec) -> IngestResult<IngestionPolicy> {
        let base = self.catalog.policy(&sink.policy)?;
        if sink.policy_params.is_empty() {
            Ok(base)
        } else {
            base.extend(
                format!("{}@{}", sink.policy, sink.dataset),
                &sink.policy_params,
            )
        }
    }

    /// `disconnect feed <feed> from dataset <dataset>` — graceful: already
    /// received records drain to the target dataset; shared segments keep
    /// serving other connections; orphaned producer segments are reclaimed.
    pub fn disconnect_feed(&self, feed: &str, dataset: &str) -> IngestResult<()> {
        let key = format!("{feed}->{dataset}");
        let job = {
            let mut st = self.state.lock();
            let conn = st
                .connections
                .values_mut()
                .find(|c| c.key == key && c.state != ConnectionState::Ended)
                .ok_or_else(|| {
                    IngestError::Metadata(format!(
                        "feed {feed} is not connected to dataset {dataset}"
                    ))
                })?;
            conn.state = ConnectionState::Ended;
            conn.job.take()
        };
        if let Some(job) = job {
            job.stop_sources();
            let _ = job.wait();
        }
        self.gc_segments();
        Ok(())
    }

    /// Stop everything. Teardown is deterministic: the governor task is
    /// joined first (so it cannot respawn jobs mid-teardown), then the
    /// pipeline jobs are dismantled, and finally the elastic channel is
    /// closed and both monitor threads are joined — no `cfm-*` thread
    /// survives this call.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(task) = self.governor_task.lock().take() {
            // fire a tick early: it observes the shutdown flag and completes
            task.waker().wake();
            let _ = task.join();
        }
        let (jobs, all_joints) = {
            let mut st = self.state.lock();
            let mut jobs = Vec::new();
            for c in st.connections.values_mut() {
                c.state = ConnectionState::Ended;
                if let Some(j) = c.job.take() {
                    jobs.push(j);
                }
            }
            for (_, seg) in st.routes.drain() {
                jobs.push(seg.job);
            }
            for (_, seg) in st.computes.drain() {
                jobs.push(seg.job);
            }
            for (_, seg) in st.collects.drain() {
                jobs.push(seg.job);
            }
            let joints: Vec<(String, Vec<NodeId>)> = st.joints.drain().collect();
            (jobs, joints)
        };
        for (joint, locs) in &all_joints {
            for n in locs {
                if let Some(node) = self.cluster.node(*n) {
                    FeedManager::on(&node).retire_joint(joint);
                }
            }
        }
        for j in &jobs {
            j.abort();
        }
        for j in jobs {
            let _ = j.wait();
        }
        // dropping the last sender disconnects the channel, so the elastic
        // monitor exits on its next recv instead of leaking past shutdown
        *self.elastic_tx.lock() = None;
        let monitors: Vec<std::thread::JoinHandle<()>> = std::mem::take(&mut *self.monitors.lock());
        for m in monitors {
            let _ = m.join();
        }
    }

    // -----------------------------------------------------------------------
    // introspection
    // -----------------------------------------------------------------------

    /// Metrics of a connection.
    pub fn connection_metrics(&self, id: ConnectionId) -> IngestResult<Arc<FeedMetrics>> {
        self.state
            .lock()
            .connections
            .get(&id)
            .map(|c| Arc::clone(&c.metrics))
            .ok_or_else(|| IngestError::Metadata(format!("unknown connection {id}")))
    }

    /// Metrics of the compute segment publishing `joint_id`.
    pub fn compute_metrics(&self, joint_id: &str) -> Option<Arc<FeedMetrics>> {
        self.state
            .lock()
            .computes
            .get(joint_id)
            .map(|s| Arc::clone(&s.metrics))
    }

    /// Current state of a connection.
    pub fn connection_state(&self, id: ConnectionId) -> ConnectionState {
        let st = self.state.lock();
        match st.connections.get(&id) {
            Some(c) => {
                if c.state == ConnectionState::Active
                    && c.job.as_ref().map(|j| !j.is_running()).unwrap_or(true)
                {
                    // the job ended on its own (e.g. FeedTerminated)
                    ConnectionState::Ended
                } else {
                    c.state
                }
            }
            None => ConnectionState::Ended,
        }
    }

    /// Nodes currently hosting instances of `joint_id`.
    pub fn joint_locations(&self, joint_id: &str) -> Vec<NodeId> {
        self.state
            .lock()
            .joints
            .get(joint_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Compute parallelism of the segment publishing `joint_id`.
    pub fn compute_parallelism_of(&self, joint_id: &str) -> Option<usize> {
        self.state
            .lock()
            .computes
            .get(joint_id)
            .map(|s| s.compute_locations.len())
    }

    /// Live connections as `(id, feed, dataset)` triples.
    pub fn connections_detailed(&self) -> Vec<(ConnectionId, String, String)> {
        let st = self.state.lock();
        let mut out: Vec<(ConnectionId, String, String)> = st
            .connections
            .values()
            .filter(|c| c.state != ConnectionState::Ended)
            .map(|c| (c.id, c.feed.clone(), c.dataset.config.name.clone()))
            .collect();
        out.sort();
        out
    }

    /// Live connection ids.
    pub fn connections(&self) -> Vec<ConnectionId> {
        let st = self.state.lock();
        let mut ids: Vec<ConnectionId> = st
            .connections
            .values()
            .filter(|c| c.state != ConnectionState::Ended)
            .map(|c| c.id)
            .collect();
        ids.sort();
        ids
    }

    /// The Appendix A "Feed Management Console" view: per connection, the
    /// physical nodes participating at the intake, compute and store stages
    /// and the instantaneous rates at which data is received and persisted.
    pub fn console_report(&self) -> String {
        use std::fmt::Write as _;
        let st = self.state.lock();
        let mut out = String::from(
            "Feed Management Console
",
        );
        let mut conns: Vec<&Connection> = st
            .connections
            .values()
            .filter(|c| c.state != ConnectionState::Ended)
            .collect();
        conns.sort_by_key(|c| c.id);
        for c in conns {
            let intake = st.joints.get(&c.source_joint).cloned().unwrap_or_default();
            let compute = st
                .computes
                .get(&c.source_joint)
                .map(|s| s.compute_locations.clone())
                .unwrap_or_default();
            let series = c.metrics.throughput();
            let last_rate = series.points.last().map(|p| p.rate).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {} {} -> {} [{:?}]
    intake: {:?}  compute: {:?}  store: {:?}
                     received: {} records  persisted: {}  instantaneous: {:.0} rec/s
                     hard recoveries: {}  zombie frames adopted: {}  last recovery: {} ms",
                c.id,
                c.feed,
                c.dataset.config.name,
                c.state,
                intake,
                compute,
                c.dataset.config.nodegroup,
                c.metrics.records_in.get(),
                c.metrics.records_persisted.get(),
                last_rate,
                c.metrics.hard_failures_recovered.get(),
                c.metrics.zombie_frames_adopted.get(),
                c.metrics.last_recovery_millis.get(),
            );
        }
        out
    }

    // -----------------------------------------------------------------------
    // job construction
    // -----------------------------------------------------------------------

    fn preregister_joint(&self, joint_id: &str, locations: &[NodeId]) {
        for n in locations {
            if let Some(node) = self.cluster.node(*n) {
                FeedManager::on(&node).register_joint(joint_id);
            }
        }
    }

    /// Spawn the jobs of a producer chain planned by
    /// [`FeedController::build_producer_chain`], in the order that loses no
    /// startup frame: the consumer side (store/route jobs) must already be
    /// subscribed, so the caller spawns those first, then calls this —
    /// compute jobs deepest-first, the collect job (external source) last.
    fn finish_producer_chain(&self, st: &mut State, chain: ChainPlan) -> IngestResult<()> {
        for out in chain.new_outs {
            let seg_ref = st.computes.get(&out).unwrap();
            let job = self.spawn_compute_job(st, seg_ref)?;
            st.computes.get_mut(&out).unwrap().job = job;
        }
        if let Some((factory, config)) = chain.collect_factory {
            let locations = st.joints.get(&chain.root_raw_joint).unwrap().clone();
            let seg = CollectSegment {
                joint_id: chain.root_raw_joint.clone(),
                factory,
                config,
                locations,
                job: JobHandle::detached(),
            };
            let job = self.spawn_collect_job(&seg)?;
            let mut seg = seg;
            seg.job = job;
            st.collects.insert(chain.root_raw_joint, seg);
        }
        Ok(())
    }

    /// Plan and register the producer side of a connection up to `feed`'s
    /// tail joint: resolve the feed's lineage into a stage chain, reuse the
    /// nearest live ancestor joint (§5.3.2), pre-register every new joint
    /// and insert the new compute segments (jobs still detached — the
    /// caller starts them via [`FeedController::finish_producer_chain`]
    /// after its own consumer jobs are subscribed).
    fn build_producer_chain(
        &self,
        st: &mut State,
        feed: &str,
        policy: &IngestionPolicy,
    ) -> IngestResult<ChainPlan> {
        let lineage = self.catalog.lineage(feed)?;

        // Build the stage chain: stage 0 is the raw collect joint (the
        // primary feed's name); each further stage is a UDF application
        // with its own joint id ("<root>:f1:...:fk", §5.3.1).
        let root_raw_joint = lineage[0].name.clone();
        // (joint id, udf, owning feed name)
        let mut stages: Vec<(String, Option<Udf>, String)> =
            vec![(root_raw_joint.clone(), None, lineage[0].name.clone())];
        for f in &lineage {
            if let Some(udf_name) = &f.udf {
                let udf = self.catalog.function(udf_name)?;
                stages.push((
                    self.catalog.joint_id_for(&f.name)?,
                    Some(udf),
                    f.name.clone(),
                ));
            }
        }
        let source_joint = stages.last().unwrap().0.clone();

        // Find the deepest stage whose joint is already live — the nearest
        // connected ancestor (§5.3.2). None ⇒ the head section must be
        // constructed too.
        let mut have = None;
        for (i, (jid, _, _)) in stages.iter().enumerate().rev() {
            if st.joints.contains_key(jid) {
                have = Some(i);
                break;
            }
        }
        let need_collect = have.is_none();
        let first_new_stage = have.map(|i| i + 1).unwrap_or(1);

        // resources
        let alive: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
        if alive.is_empty() {
            return Err(IngestError::Plan("no alive nodes".into()));
        }
        let compute_n = self
            .config
            .compute_parallelism
            .unwrap_or(alive.len())
            .clamp(1, alive.len().max(1));

        // --- pre-register every joint so no startup frame is lost ----------
        let mut planned_joints: Vec<(String, Vec<NodeId>)> = Vec::new();
        let mut collect_factory = None;
        if need_collect {
            let root_def = &lineage[0];
            let (factory, config) = match &root_def.kind {
                FeedKind::Primary { adaptor, config } => {
                    (self.catalog.adaptors().get(adaptor)?, config.clone())
                }
                FeedKind::Secondary { .. } => {
                    return Err(IngestError::Plan(
                        "lineage root must be a primary feed".into(),
                    ))
                }
            };
            let constraint = factory.constraints(&config)?;
            let locations: Vec<NodeId> = match constraint {
                Constraint::Count(n) => (0..n).map(|i| alive[i % alive.len()]).collect(),
                Constraint::Locations(locs) => locs,
            };
            planned_joints.push((root_raw_joint.clone(), locations));
            collect_factory = Some((factory, config));
        }
        // (depth, in_joint, out_joint, udf, owning feed id, locations)
        let mut compute_segments: Vec<(usize, String, String, Udf, FeedId, Vec<NodeId>)> =
            Vec::new();
        for i in first_new_stage..stages.len() {
            let udf = stages[i].1.clone().expect("stages past 0 carry a UDF");
            let in_joint = stages[i - 1].0.clone();
            let out_joint = stages[i].0.clone();
            let stage_feed = self.catalog.feed_id(&stages[i].2).unwrap_or(FeedId(0));
            let offset = self.config.compute_node_offset;
            let locs = dedup_nodes(
                (0..compute_n)
                    .map(|k| alive[(offset + k) % alive.len()])
                    .collect(),
            );
            planned_joints.push((out_joint.clone(), locs.clone()));
            compute_segments.push((i, in_joint, out_joint, udf, stage_feed, locs));
        }
        for (joint, locs) in &planned_joints {
            self.preregister_joint(joint, locs);
            st.joints.insert(joint.clone(), locs.clone());
        }

        // --- compute segments registered now (jobs still detached) ----------
        // The store job must find the chain's at-least-once plumbing, so the
        // segment records go into the state before anything is spawned; the
        // compute *jobs* still start after the consumer jobs, whose
        // subscriptions must be live first.
        compute_segments.sort_by_key(|s| std::cmp::Reverse(s.0));
        let new_outs: Vec<String> = compute_segments.iter().map(|s| s.2.clone()).collect();
        for (depth, in_joint, out_joint, udf, stage_feed, locs) in compute_segments {
            let seg_metrics = FeedMetrics::registered_default(
                &self.cluster.registry(),
                &out_joint,
                self.cluster.clock().clone(),
            );
            // At-least-once custody belongs at the earliest intake under the
            // adaptor (§5.6): only the depth-1 stage — whose intake rides on
            // the collect joint's (adaptor) nodes — gets the tracker
            // plumbing. The channel count is pinned to the in-joint's
            // instance count, which scale_intake keeps constant.
            let (ack, store_ack) = if policy.at_least_once && in_joint == root_raw_joint {
                let partitions = st.joints.get(&in_joint).map_or(0, Vec::len);
                let (plumbing, sender) = self.new_ack_channels(partitions);
                (Some(plumbing), Some(sender))
            } else {
                (None, None)
            };
            let seg = ComputeSegment {
                out_joint: out_joint.clone(),
                in_joint,
                udf,
                feed_id: stage_feed,
                compute_locations: locs,
                policy: policy.clone(),
                metrics: seg_metrics,
                depth,
                extra_spin: self.config.compute_extra_spin,
                extra_delay_us: self.config.compute_extra_delay_us,
                job: JobHandle::detached(),
                ack,
                store_ack,
            };
            st.computes.insert(out_joint, seg);
        }

        Ok(ChainPlan {
            root_raw_joint,
            source_joint,
            collect_factory,
            new_outs,
        })
    }

    fn spawn_collect_job(&self, seg: &CollectSegment) -> IngestResult<JobHandle> {
        let mut job = JobSpec::new(format!("collect:{}", seg.joint_id));
        job.transport = self.config.transport;
        let collect = job.add_operator(Box::new(CollectDesc {
            joint_id: seg.joint_id.clone(),
            factory: Arc::clone(&seg.factory),
            config: seg.config.clone(),
            locations: seg.locations.clone(),
            // skipped-unparseable-input counter for all adaptor instances of
            // this feed, visible in registry snapshots and the exporters
            malformed_lines: self
                .cluster
                .registry()
                .counter("parse.malformed_lines", &[("feed", &seg.joint_id)]),
        }));
        let sink = job.add_operator(Box::new(NullSinkDesc {
            locations: seg.locations.clone(),
        }));
        job.connect(collect, sink, ConnectorSpec::OneToOne);
        run_job(&self.cluster, job)
    }

    fn spawn_compute_job(&self, st: &State, seg: &ComputeSegment) -> IngestResult<JobHandle> {
        let in_locations = st
            .joints
            .get(&seg.in_joint)
            .cloned()
            .ok_or_else(|| IngestError::Plan(format!("no live joint '{}'", seg.in_joint)))?;
        let mut job = JobSpec::new(format!("compute:{}", seg.out_joint));
        job.transport = self.config.transport;
        let intake = job.add_operator(Box::new(IntakeDesc {
            joint_id: seg.in_joint.clone(),
            sub_key: format!("compute:{}", seg.out_joint),
            locations: in_locations,
            policy: seg.policy.clone(),
            metrics: Arc::clone(&seg.metrics),
            elastic_tx: self.elastic_sender(),
            flow_capacity: self.config.flow_capacity,
            ack: seg.ack.clone(),
            connection_key: format!("compute:{}", seg.out_joint),
            feed: seg.feed_id,
            fault_plan: None,
        }));
        let assign = job.add_operator(Box::new(AssignDesc {
            udf: seg.udf.clone(),
            out_joint_id: seg.out_joint.clone(),
            locations: seg.compute_locations.clone(),
            policy: seg.policy.clone(),
            metrics: Arc::clone(&seg.metrics),
            log: Arc::clone(&self.log),
            log_dataset: self.log_dataset.lock().clone(),
            extra_spin: seg.extra_spin,
            extra_delay_us: seg.extra_delay_us,
        }));
        job.connect(intake, assign, ConnectorSpec::MNRandomPartition);
        run_job(&self.cluster, job)
    }

    fn spawn_route_job(&self, st: &State, seg: &RouteSegment) -> IngestResult<JobHandle> {
        let in_locations = st
            .joints
            .get(&seg.in_joint)
            .cloned()
            .ok_or_else(|| IngestError::Plan(format!("no live joint '{}'", seg.in_joint)))?;
        let mut job = JobSpec::new(format!("route:{}", seg.plan.name));
        job.transport = self.config.transport;
        let intake = job.add_operator(Box::new(IntakeDesc {
            joint_id: seg.in_joint.clone(),
            sub_key: format!("route:{}", seg.plan.name),
            locations: in_locations,
            policy: seg.policy.clone(),
            metrics: Arc::clone(&seg.metrics),
            elastic_tx: self.elastic_sender(),
            flow_capacity: self.config.flow_capacity,
            ack: None,
            connection_key: format!("route:{}", seg.plan.name),
            feed: seg.feed_id,
            fault_plan: None,
        }));
        let route = job.add_operator(Box::new(RouteDesc {
            plan: Arc::clone(&seg.plan),
            out_joints: seg.out_joints.clone(),
            locations: seg.locations.clone(),
            metrics: Arc::clone(&seg.metrics),
            routed: seg.routed.clone(),
            no_match: seg.no_match.clone(),
        }));
        // the router is co-located with its intake: routing is a local
        // decision, repartitioning happens at each sink's store job
        job.connect(intake, route, ConnectorSpec::OneToOne);
        run_job(&self.cluster, job)
    }

    /// Paired at-least-once channels for `partitions` tracker partitions.
    fn new_ack_channels(&self, partitions: usize) -> (Arc<AckPlumbing>, Arc<StoreAck>) {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..partitions {
            let (tx, rx) = crossbeam_channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        (
            Arc::new(AckPlumbing {
                rxs,
                timeout: self.config.ack_timeout,
            }),
            Arc::new(StoreAck {
                txs,
                window: self.config.ack_window,
            }),
        )
    }

    /// The ack sender of the chain feeding `source_joint`, held by its
    /// depth-1 (adaptor-side) compute segment. `None` for raw feeds and for
    /// chains whose root segment was built without at-least-once plumbing.
    fn chain_store_ack(&self, st: &State, source_joint: &str) -> Option<Arc<StoreAck>> {
        let mut seg = st.computes.get(source_joint)?;
        while let Some(parent) = st.computes.get(&seg.in_joint) {
            seg = parent;
        }
        seg.store_ack.clone()
    }

    fn spawn_store_job(&self, st: &State, conn: &Connection) -> IngestResult<JobHandle> {
        let in_locations =
            st.joints.get(&conn.source_joint).cloned().ok_or_else(|| {
                IngestError::Plan(format!("no live joint '{}'", conn.source_joint))
            })?;
        // At-least-once plumbing. A processed feed's tracker sits at the
        // chain's adaptor-side compute intake (§5.6) — this job's intake
        // follows the compute joint onto arbitrary worker nodes, and a
        // tracker there would be the only custodian of in-flight records
        // when such a node dies. Route the store's acks up the chain and
        // leave this intake untracked. A raw feed keeps the tracker here:
        // its store intake IS the adaptor-side stage.
        let chain_ack = if conn.policy.at_least_once {
            self.chain_store_ack(st, &conn.source_joint)
        } else {
            None
        };
        let (ack_plumbing, store_ack) = if let Some(sender) = chain_ack {
            (None, Some(sender))
        } else if conn.policy.at_least_once {
            let (plumbing, sender) = self.new_ack_channels(in_locations.len());
            (Some(plumbing), Some(sender))
        } else {
            (None, None)
        };
        let mut job = JobSpec::new(format!("store:{}", conn.key));
        job.transport = self.config.transport;
        let intake = job.add_operator(Box::new(IntakeDesc {
            joint_id: conn.source_joint.clone(),
            sub_key: format!("conn:{}", conn.key),
            locations: in_locations,
            policy: conn.policy.clone(),
            metrics: Arc::clone(&conn.metrics),
            elastic_tx: self.elastic_sender(),
            flow_capacity: self.config.flow_capacity,
            ack: ack_plumbing,
            connection_key: conn.key.clone(),
            feed: conn.feed_id,
            // only the store-stage intake panics on schedule: killing the
            // collect side would sever the external source for good
            fault_plan: self.config.fault_plan.clone(),
        }));
        let store = job.add_operator(Box::new(StoreDesc {
            dataset: Arc::clone(&conn.dataset),
            registry: Some(Arc::clone(self.catalog.types())),
            policy: conn.policy.clone(),
            metrics: Arc::clone(&conn.metrics),
            log: Arc::clone(&self.log),
            log_dataset: self.log_dataset.lock().clone(),
            ack: store_ack,
        }));
        job.connect(
            intake,
            store,
            ConnectorSpec::MNHashPartition(crate::ops::store_key_fn(
                conn.dataset.config.primary_key.clone(),
            )),
        );
        run_job(&self.cluster, job)
    }

    // -----------------------------------------------------------------------
    // garbage collection of producer segments
    // -----------------------------------------------------------------------

    fn joint_subscriber_count(&self, joint_id: &str, locations: &[NodeId]) -> usize {
        locations
            .iter()
            .filter_map(|n| self.cluster.node(*n))
            .filter_map(|node| FeedManager::on(&node).search_joint(joint_id))
            .map(|j| j.subscriber_count())
            .sum()
    }

    /// Reclaim route, compute and collect segments whose joints have no
    /// subscribers left. Route segments go first (they are the most
    /// downstream producers): dismantling one unsubscribes its intake from
    /// the tail joint, which the loop then reclaims upstream.
    pub fn gc_segments(&self) {
        enum Victim {
            /// plan name — all out joints subscriber-free
            Route(String),
            Compute(String),
            Collect(String),
        }
        loop {
            let victim = {
                let st = self.state.lock();
                let mut found: Option<Victim> = None;
                for (name, seg) in &st.routes {
                    let subs: usize = seg
                        .out_joints
                        .iter()
                        .map(|oj| {
                            let locs = st.joints.get(oj).cloned().unwrap_or_default();
                            self.joint_subscriber_count(oj, &locs)
                        })
                        .sum();
                    if subs == 0 {
                        found = Some(Victim::Route(name.clone()));
                        break;
                    }
                }
                if found.is_none() {
                    for (out, seg) in &st.computes {
                        let locs = st.joints.get(out).cloned().unwrap_or_default();
                        if self.joint_subscriber_count(out, &locs) == 0 {
                            found = Some(Victim::Compute(seg.out_joint.clone()));
                            break;
                        }
                    }
                }
                if found.is_none() {
                    for (root, seg) in &st.collects {
                        let locs = st.joints.get(root).cloned().unwrap_or_default();
                        if self.joint_subscriber_count(root, &locs) == 0 {
                            found = Some(Victim::Collect(seg.joint_id.clone()));
                            break;
                        }
                    }
                }
                found
            };
            let Some(victim) = victim else {
                return;
            };
            let (job, retire) = {
                let mut st = self.state.lock();
                match victim {
                    Victim::Route(name) => {
                        let seg = st.routes.remove(&name);
                        let mut retire = Vec::new();
                        if let Some(seg) = &seg {
                            for oj in &seg.out_joints {
                                if let Some(locs) = st.joints.remove(oj) {
                                    retire.push((oj.clone(), locs));
                                }
                            }
                        }
                        (seg.map(|s| s.job), retire)
                    }
                    Victim::Compute(joint) => {
                        let locs = st.joints.remove(&joint).unwrap_or_default();
                        (
                            st.computes.remove(&joint).map(|s| s.job),
                            vec![(joint, locs)],
                        )
                    }
                    Victim::Collect(joint) => {
                        let locs = st.joints.remove(&joint).unwrap_or_default();
                        (
                            st.collects.remove(&joint).map(|s| s.job),
                            vec![(joint, locs)],
                        )
                    }
                }
            };
            for (joint, locs) in &retire {
                for n in locs {
                    if let Some(node) = self.cluster.node(*n) {
                        FeedManager::on(&node).retire_joint(joint);
                    }
                }
            }
            if let Some(job) = job {
                job.stop_sources();
                let _ = job.wait();
            }
            // removing this segment may orphan its own source joint: loop
        }
    }

    // -----------------------------------------------------------------------
    // segment health
    // -----------------------------------------------------------------------

    /// Detect segments that terminated on their own (e.g. a FeedTerminated
    /// raised by the Basic policy's memory budget or the consecutive
    /// soft-failure limit) and end the connections that depend on them.
    /// Collect segments ending is *not* a failure: a finite source simply
    /// ran dry, and its connections stay connected (feeds are conceptually
    /// unbounded).
    fn sweep_dead_segments(&self) {
        self.respawn_panicked_stores();
        // a finished job is a *self*-termination only when none of its
        // tasks died of a hard failure — those are the fault-tolerance
        // protocol's to handle (the heartbeat monitor lags the actual
        // crash, so the sweep must not misclassify them)
        fn self_terminated(job: &JobHandle) -> bool {
            match job.try_outcome() {
                None => false, // still running
                Some(results) => !results.iter().any(|(_, r)| {
                    matches!(
                        r,
                        Err(IngestError::NodeFailed(_)) | Err(IngestError::Disconnected(_))
                    )
                }),
            }
        }
        let mut st = self.state.lock();
        // transitively collect dead compute segments
        let mut dead: Vec<String> = st
            .computes
            .iter()
            .filter(|(_, s)| self_terminated(&s.job))
            .map(|(k, _)| k.clone())
            .collect();
        let mut i = 0;
        while i < dead.len() {
            let joint = dead[i].clone();
            let downstream: Vec<String> = st
                .computes
                .values()
                .filter(|s| s.in_joint == joint && !dead.contains(&s.out_joint))
                .map(|s| s.out_joint.clone())
                .collect();
            dead.extend(downstream);
            i += 1;
        }
        // route segments die with their trunk (in-joint in the dead set)
        // or on their own (e.g. the trunk's spill budget raised
        // FeedTerminated at the router's intake)
        let dead_routes: Vec<String> = st
            .routes
            .iter()
            .filter(|(_, s)| self_terminated(&s.job) || dead.contains(&s.in_joint))
            .map(|(k, _)| k.clone())
            .collect();
        if dead.is_empty() && dead_routes.is_empty() {
            // still mark connections whose own store job self-terminated
            for c in st.connections.values_mut() {
                if c.state == ConnectionState::Active
                    && c.job.as_ref().map(self_terminated).unwrap_or(false)
                {
                    c.state = ConnectionState::Ended;
                    c.job.take();
                }
            }
            return;
        }
        // connections end when their source joint is a dead compute's out
        // joint or a dead route's sink joint
        let mut dead_source_joints = dead.clone();
        for name in &dead_routes {
            dead_source_joints.extend(st.routes.get(name).unwrap().out_joints.clone());
        }
        let conn_ids: Vec<ConnectionId> = st
            .connections
            .values()
            .filter(|c| {
                c.state == ConnectionState::Active && dead_source_joints.contains(&c.source_joint)
            })
            .map(|c| c.id)
            .collect();
        for id in conn_ids {
            let c = st.connections.get_mut(&id).unwrap();
            c.state = ConnectionState::Ended;
            if let Some(job) = c.job.take() {
                job.abort();
            }
        }
        // dismantle the dead segments and retire their joints
        let mut to_retire: Vec<(String, Vec<NodeId>)> = Vec::new();
        for name in &dead_routes {
            if let Some(seg) = st.routes.remove(name) {
                seg.job.abort();
                for oj in seg.out_joints {
                    if let Some(locs) = st.joints.remove(&oj) {
                        to_retire.push((oj, locs));
                    }
                }
            }
        }
        for joint in &dead {
            if let Some(seg) = st.computes.remove(joint) {
                seg.job.abort();
            }
            if let Some(locs) = st.joints.remove(joint) {
                to_retire.push((joint.clone(), locs));
            }
        }
        drop(st);
        for (joint, locs) in to_retire {
            for n in locs {
                if let Some(node) = self.cluster.node(n) {
                    FeedManager::on(&node).retire_joint(&joint);
                }
            }
        }
    }

    /// Respawn store jobs that died of a runtime exception (an operator
    /// panic, injected or real — surfaces as `Disconnected`) while their
    /// nodes are all still alive (§6.2.3's "runtime exception" hard
    /// failure). Node-loss deaths are left to `handle_node_failure`; the
    /// alive-guard also filters the race where a node kill was the real
    /// cause but the heartbeat monitor has not reported it yet, because
    /// `kill_node` flips the liveness flag immediately.
    fn respawn_panicked_stores(&self) {
        fn panicked(job: &JobHandle) -> bool {
            match job.try_outcome() {
                None => false, // still running
                Some(results) => {
                    results
                        .iter()
                        .any(|(_, r)| matches!(r, Err(IngestError::Disconnected(_))))
                        && !results
                            .iter()
                            .any(|(_, r)| matches!(r, Err(IngestError::NodeFailed(_))))
                }
            }
        }
        let mut st = self.state.lock();
        let ids: Vec<ConnectionId> = st
            .connections
            .values()
            .filter(|c| {
                c.state == ConnectionState::Active
                    && c.policy.recover_hard_failure
                    && c.job.as_ref().map(panicked).unwrap_or(false)
            })
            .map(|c| c.id)
            .collect();
        for id in ids {
            let healthy = {
                let c = st.connections.get(&id).unwrap();
                let joint_up = st.joints.get(&c.source_joint).map(|locs| {
                    locs.iter()
                        .all(|n| self.cluster.node(*n).map(|h| h.is_alive()).unwrap_or(false))
                });
                let stores_up = c
                    .dataset
                    .config
                    .nodegroup
                    .iter()
                    .all(|n| self.cluster.node(*n).map(|h| h.is_alive()).unwrap_or(false));
                joint_up == Some(true) && stores_up
            };
            if !healthy {
                continue; // a node really is down; §6.2.2 handles it
            }
            st.connections.get_mut(&id).unwrap().job.take();
            let conn_ref = st.connections.get(&id).unwrap();
            if let Ok(job) = self.spawn_store_job(&st, conn_ref) {
                let c = st.connections.get_mut(&id).unwrap();
                c.job = Some(job);
                c.metrics.hard_failures_recovered.add(1);
            }
        }
    }

    // -----------------------------------------------------------------------
    // fault-tolerance protocol (§6.2.2)
    // -----------------------------------------------------------------------

    fn pick_substitute(&self, dead: NodeId, avoid: &[NodeId]) -> Option<NodeId> {
        let alive = self.cluster.alive_nodes();
        alive
            .iter()
            .map(|n| n.id())
            .find(|id| *id != dead && !avoid.contains(id))
            .or_else(|| alive.first().map(|n| n.id()))
    }

    fn handle_node_failure(&self, dead: NodeId) {
        let recovery_span = self
            .cluster
            .trace()
            .node_log(dead)
            .span("feed.recovery", format!("node {dead} failed"));
        // phase 1: decide what is affected, under the lock
        let mut st = self.state.lock();

        // connections whose store stage lives on the dead node are suspended
        // (no replication: the dataset partition is gone until re-join)
        let mut suspend: Vec<ConnectionId> = Vec::new();
        let mut end: Vec<ConnectionId> = Vec::new();
        for c in st.connections.values() {
            if c.state != ConnectionState::Active {
                continue;
            }
            if c.dataset.config.nodegroup.contains(&dead) {
                if c.policy.recover_hard_failure {
                    suspend.push(c.id);
                } else {
                    end.push(c.id);
                }
            }
        }
        let now = self.cluster.clock().now();
        for id in &suspend {
            if let Some(c) = st.connections.get_mut(id) {
                c.state = ConnectionState::Suspended;
                c.suspended_at = Some(now);
                if let Some(job) = c.job.take() {
                    job.abort();
                }
            }
        }
        for id in &end {
            if let Some(c) = st.connections.get_mut(id) {
                c.state = ConnectionState::Ended;
                if let Some(job) = c.job.take() {
                    job.abort();
                }
            }
        }

        // collect segments on the dead node: substitute and rebuild the head
        let mut moved_joints: Vec<String> = Vec::new();
        let collect_keys: Vec<String> = st.collects.keys().cloned().collect();
        for key in collect_keys {
            let affected = st.collects.get(&key).map(|s| s.locations.contains(&dead));
            if affected != Some(true) {
                continue;
            }
            let seg = st.collects.get_mut(&key).unwrap();
            let avoid = seg.locations.clone();
            let Some(substitute) = self.pick_substitute(dead, &avoid) else {
                continue;
            };
            for l in seg.locations.iter_mut() {
                if *l == dead {
                    *l = substitute;
                }
            }
            seg.job.abort();
            let locations = seg.locations.clone();
            let joint = seg.joint_id.clone();
            st.joints.insert(joint.clone(), locations.clone());
            moved_joints.push(joint.clone());
            self.preregister_joint(&joint, &locations);
            let seg_ref = st.collects.get(&key).unwrap();
            if let Ok(job) = self.spawn_collect_job(seg_ref) {
                st.collects.get_mut(&key).unwrap().job = job;
            }
        }

        // compute segments, in depth order (upstream first)
        let mut compute_keys: Vec<(usize, String)> = st
            .computes
            .values()
            .map(|s| (s.depth, s.out_joint.clone()))
            .collect();
        compute_keys.sort();
        for (_, key) in compute_keys {
            let (needs_rebuild, seg_in_joint) = {
                let seg = st.computes.get(&key).unwrap();
                let hit_compute = seg.compute_locations.contains(&dead);
                let in_moved = moved_joints.contains(&seg.in_joint);
                let in_on_dead = st
                    .joints
                    .get(&seg.in_joint)
                    .map(|l| l.contains(&dead))
                    .unwrap_or(false);
                (hit_compute || in_moved || in_on_dead, seg.in_joint.clone())
            };
            if !needs_rebuild {
                continue;
            }
            // fix the in-joint's directory entry if it still lists the dead
            // node (can happen when the upstream producer itself was fine
            // but hosted an instance on the dead node — the whole joint
            // location set is owned by the producer, so only rewrite here
            // when the producer was untouched)
            let _ = seg_in_joint;
            let seg = st.computes.get_mut(&key).unwrap();
            if seg.compute_locations.contains(&dead) {
                let avoid = seg.compute_locations.clone();
                if let Some(substitute) = self.pick_substitute(dead, &avoid) {
                    for l in seg.compute_locations.iter_mut() {
                        if *l == dead {
                            *l = substitute;
                        }
                    }
                }
                seg.compute_locations = dedup_nodes(seg.compute_locations.clone());
            }
            seg.job.abort();
            let out = seg.out_joint.clone();
            let locs = seg.compute_locations.clone();
            st.joints.insert(out.clone(), locs.clone());
            moved_joints.push(out.clone());
            self.preregister_joint(&out, &locs);
            let seg_ref = st.computes.get(&key).unwrap();
            if let Ok(job) = self.spawn_compute_job(&st, seg_ref) {
                st.computes.get_mut(&key).unwrap().job = job;
            }
        }

        // route segments: the router follows its in-joint, and its out
        // joints move with it — rebuilt *before* the store pass so sink
        // connections re-subscribe on the new placement
        let route_keys: Vec<String> = st.routes.keys().cloned().collect();
        for key in route_keys {
            let (needs_rebuild, in_joint, out_joints) = {
                let seg = st.routes.get(&key).unwrap();
                let hit = seg.locations.contains(&dead)
                    || moved_joints.contains(&seg.in_joint)
                    || st
                        .joints
                        .get(&seg.in_joint)
                        .map(|l| l.contains(&dead))
                        .unwrap_or(false);
                (hit, seg.in_joint.clone(), seg.out_joints.clone())
            };
            if !needs_rebuild {
                continue;
            }
            let Some(new_locs) = st.joints.get(&in_joint).cloned() else {
                continue;
            };
            {
                let seg = st.routes.get_mut(&key).unwrap();
                seg.job.abort();
                seg.locations = new_locs.clone();
            }
            for oj in &out_joints {
                st.joints.insert(oj.clone(), new_locs.clone());
                self.preregister_joint(oj, &new_locs);
                moved_joints.push(oj.clone());
            }
            let seg_ref = st.routes.get(&key).unwrap();
            if let Ok(job) = self.spawn_route_job(&st, seg_ref) {
                st.routes.get_mut(&key).unwrap().job = job;
            }
        }

        // store segments: rebuild when their intake was co-located with the
        // dead node or their source joint moved
        let conn_ids: Vec<ConnectionId> = st.connections.keys().copied().collect();
        for id in conn_ids {
            let rebuild = {
                let c = st.connections.get(&id).unwrap();
                c.state == ConnectionState::Active
                    && (moved_joints.contains(&c.source_joint)
                        || st
                            .joints
                            .get(&c.source_joint)
                            .map(|l| l.contains(&dead))
                            .unwrap_or(false))
            };
            if !rebuild {
                continue;
            }
            if let Some(job) = st.connections.get_mut(&id).unwrap().job.take() {
                job.abort();
            }
            let conn_ref = st.connections.get(&id).unwrap();
            if let Ok(job) = self.spawn_store_job(&st, conn_ref) {
                st.connections.get_mut(&id).unwrap().job = Some(job);
            }
        }
        recovery_span.finish(&format!("{} joints moved", moved_joints.len()));
    }

    fn handle_node_join(&self, node: NodeId) {
        // store-failure recovery: "as and when the failed store node re-joins
        // the cluster and becomes available, the data ingestion pipeline is
        // rescheduled" — after log-based recovery of its partitions (§6.2.3)
        let rejoin_span = self
            .cluster
            .trace()
            .node_log(node)
            .span("feed.rejoin", format!("node {node} rejoined"));
        let mut st = self.state.lock();
        let ids: Vec<ConnectionId> = st
            .connections
            .values()
            .filter(|c| {
                c.state == ConnectionState::Suspended && c.dataset.config.nodegroup.contains(&node)
            })
            .map(|c| c.id)
            .collect();
        for id in ids {
            let c = st.connections.get(&id).unwrap();
            if let Some(p) = c.dataset.partition_on(node) {
                let _ = p.recover();
            }
            // make sure the source joint still exists; if its segment was
            // also affected it has been rebuilt already by the failure path
            if !st.joints.contains_key(&c.source_joint) {
                continue;
            }
            let conn_ref = st.connections.get(&id).unwrap();
            if let Ok(job) = self.spawn_store_job(&st, conn_ref) {
                let c = st.connections.get_mut(&id).unwrap();
                c.job = Some(job);
                c.state = ConnectionState::Active;
                c.metrics.hard_failures_recovered.add(1);
                if let Some(t0) = c.suspended_at.take() {
                    let elapsed = self.cluster.clock().now().since(t0);
                    c.metrics.last_recovery_millis.set(elapsed.0);
                }
            }
        }
        rejoin_span.finish("rescheduled");
    }

    // -----------------------------------------------------------------------
    // elasticity (§7.3.5)
    // -----------------------------------------------------------------------

    fn handle_elastic_request(&self, req: &ElasticRequest) {
        // the congested pipeline names either a connection ("F->D") or a
        // compute segment ("compute:<joint>")
        let joint = {
            let st = self.state.lock();
            if let Some(rest) = req.connection_key.strip_prefix("compute:") {
                st.computes.contains_key(rest).then(|| rest.to_string())
            } else {
                st.connections
                    .values()
                    .find(|c| c.key == req.connection_key && c.state != ConnectionState::Ended)
                    .map(|c| c.source_joint.clone())
            }
        };
        let Some(joint) = joint else {
            // a request that names no live connection must not vanish
            // silently: it is a symptom of a key mismatch or a race with
            // disconnect, so count it and log it like any soft failure
            self.cluster
                .registry()
                .counter(
                    "elastic.requests_dropped",
                    &[("conn", req.connection_key.as_str())],
                )
                .inc();
            self.log.lock().push(SoftFailureEntry {
                at: self.cluster.clock().now(),
                operator: "cfm-elastic-monitor".into(),
                message: format!(
                    "elastic request for unknown connection '{}' dropped",
                    req.connection_key
                ),
                payload: None,
            });
            return;
        };
        if self.config.governor.enabled {
            // record the congestion vote for the control loop; the governor
            // folds it into its next sample under hysteresis and cooldown
            self.governor
                .lock()
                .conns
                .entry(req.connection_key.clone())
                .or_default()
                .pending_requests += 1;
        } else {
            // legacy open-loop behaviour: one request, one extra instance
            let _ = self.scale_compute(&joint, 1);
        }
    }

    /// One tick of the closed-loop scaling governor: sample the metrics
    /// registry per live connection, run the pure control law, and apply
    /// the decision to both the compute and intake stages. Exported as
    /// `elastic.*` metrics and `elastic.governor` trace events.
    fn governor_tick(&self) {
        if self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let cfg = self.config.governor.clone();
        let registry = self.cluster.registry();
        let snap = registry.snapshot();
        let now = self.cluster.clock().now();
        struct TickTarget {
            key: String,
            source_joint: String,
            /// Metric scopes of the whole chain: the connection key plus
            /// each compute segment's out-joint.
            scopes: Vec<String>,
            compute_n: Option<usize>,
            root_joint: Option<String>,
            intake_w: Option<usize>,
        }
        // collect the per-connection layout under the lock, act after
        // dropping it (scale_* re-take the non-reentrant state lock)
        let targets: Vec<TickTarget> = {
            let st = self.state.lock();
            st.connections
                .values()
                .filter(|c| c.state == ConnectionState::Active)
                .map(|c| {
                    let mut scopes = vec![c.key.clone()];
                    let mut j = c.source_joint.clone();
                    while let Some(seg) = st.computes.get(&j) {
                        scopes.push(j.clone());
                        j = seg.in_joint.clone();
                    }
                    let root = st.collects.get(&j).map(|s| s.joint_id.clone());
                    let intake_w = st
                        .collects
                        .get(&j)
                        .map(|s| dedup_nodes(s.locations.clone()).len());
                    TickTarget {
                        key: c.key.clone(),
                        source_joint: c.source_joint.clone(),
                        compute_n: st
                            .computes
                            .get(&c.source_joint)
                            .map(|s| s.compute_locations.len()),
                        root_joint: root,
                        intake_w,
                        scopes,
                    }
                })
                .collect()
        };
        for t in targets {
            let mut backlog = 0u64;
            let mut queue = 0u64;
            let mut pressure_now = 0u64;
            for scope in &t.scopes {
                backlog += snap.gauge_for("feed.buffer_bytes", scope).unwrap_or(0)
                    + snap.gauge_for("feed.spill_bytes", scope).unwrap_or(0);
                queue = queue.max(
                    snap.gauge_for("feed.handoff_queue_frames", scope)
                        .unwrap_or(0),
                );
                pressure_now += snap.counter_for("feed.records_throttled", scope)
                    + snap.counter_for("feed.records_discarded", scope)
                    + snap.counter_for("feed.records_spilled", scope)
                    + snap.counter_for("feed.elastic_scaleouts", scope);
            }
            let lag_hist = snap.histogram_for("feed.ingest_lag_millis", &t.key);
            let (sample, decision) = {
                let mut gov = self.governor.lock();
                let per = gov.conns.entry(t.key.clone()).or_default();
                // windowed lag: current cumulative snapshot minus the
                // previous tick's, so old congestion cannot dominate p99
                let lag_p99 = match (&lag_hist, per.prev_lag.take()) {
                    (Some(h), Some(prev)) => {
                        let window = h.delta(&prev);
                        per.prev_lag = Some(h.clone());
                        if window.count > 0 {
                            window.quantile(0.99)
                        } else {
                            0
                        }
                    }
                    (Some(h), None) => {
                        per.prev_lag = Some(h.clone());
                        if h.count > 0 {
                            h.quantile(0.99)
                        } else {
                            0
                        }
                    }
                    (None, prev) => {
                        per.prev_lag = prev;
                        0
                    }
                };
                let pressure_delta = pressure_now.saturating_sub(per.prev_pressure)
                    + std::mem::take(&mut per.pending_requests);
                per.prev_pressure = pressure_now;
                let sample = GovernorSample {
                    lag_p99_millis: lag_p99,
                    backlog_bytes: backlog,
                    queue_frames: queue,
                    pressure_delta,
                };
                let decision = decide(&cfg, now, &sample, &mut per.control);
                (sample, decision)
            };
            let labels = &[("conn", t.key.as_str())];
            registry.counter("elastic.governor_ticks", labels).inc();
            registry
                .gauge("elastic.lag_p99_millis", labels)
                .set(sample.lag_p99_millis);
            registry
                .gauge("elastic.backlog_bytes", labels)
                .set(sample.backlog_bytes);
            if let Some(n) = t.compute_n {
                registry
                    .gauge("elastic.compute_partitions", labels)
                    .set(n as u64);
            }
            if let Some(w) = t.intake_w {
                registry
                    .gauge("elastic.intake_partitions", labels)
                    .set(w as u64);
            }
            let delta = match decision {
                ScaleDecision::Hold => continue,
                ScaleDecision::Out => 1i64,
                ScaleDecision::In => -1i64,
            };
            let mut changed = false;
            if let Some(n) = t.compute_n {
                let within = if delta > 0 {
                    n < cfg.max_compute
                } else {
                    n > cfg.min_compute
                };
                if within {
                    if let Ok(new_n) = self.scale_compute(&t.source_joint, delta) {
                        changed |= new_n != n;
                    }
                }
            }
            if let (Some(root), Some(w)) = (&t.root_joint, t.intake_w) {
                let within = if delta > 0 {
                    w < cfg.max_intake
                } else {
                    w > cfg.min_intake
                };
                if within {
                    if let Ok(new_w) = self.scale_intake(root, delta) {
                        changed |= new_w != w;
                    }
                }
            }
            if changed {
                let counter = if delta > 0 {
                    "elastic.scale_out_total"
                } else {
                    "elastic.scale_in_total"
                };
                registry.counter(counter, labels).inc();
                self.cluster.trace().cluster_log().event(
                    "elastic.governor",
                    format!(
                        "{}: {} (lag p99 {} ms, backlog {} B, queue {} frames, pressure {})",
                        t.key,
                        if delta > 0 { "scale-out" } else { "scale-in" },
                        sample.lag_p99_millis,
                        sample.backlog_bytes,
                        sample.queue_frames,
                        sample.pressure_delta,
                    ),
                );
            }
        }
    }

    /// Wait for aborted predecessor jobs to fully exit, then repartition
    /// their stranded frames onto the successor partition set. Runs with no
    /// controller lock held: `JobHandle::abort` is asynchronous, so without
    /// this settling step a dying intake could park zombie state *after*
    /// the successor's instantiate-time adoption already ran, orphaning the
    /// frames forever.
    fn settle_and_migrate(&self, migrations: Vec<Migration>) {
        // first make every old job quiescent: no more deposits into the old
        // joint instances, no more late zombie parks
        for m in &migrations {
            m.job.abort();
            let _ = m.job.wait();
        }
        for m in migrations {
            if let Some((joint_id, prefix, old, new)) = m.repartition {
                self.migrate_partition_state(&joint_id, &prefix, &old, &new);
            }
        }
    }

    /// Harvest frames stranded on abandoned partitions of `joint_id` —
    /// parked zombie state first, then whatever is still queued in the old
    /// joint subscription (order preserves the stream: parked frames were
    /// consumed before the queued ones arrived) — and re-park them as
    /// zombie state keyed for the successor partition on its node, where
    /// the successor's late-adoption poll picks them up.
    fn migrate_partition_state(
        &self,
        joint_id: &str,
        prefix: &str,
        old: &[NodeId],
        new: &[NodeId],
    ) {
        if new.is_empty() {
            return;
        }
        let mut moved = 0u64;
        for (p, node) in old.iter().enumerate() {
            if p < new.len() && new[p] == *node {
                // the successor resumes the same queue under the same key;
                // late zombie adoption covers the park-after-start window
                continue;
            }
            // a dead node's memory is gone with the node (§6.2.2) — its
            // in-flight frames are the at-least-once tracker's to replay
            let Some(src) = self.cluster.node(*node).filter(|n| n.is_alive()) else {
                continue;
            };
            let src_fm = FeedManager::on(&src);
            let key = format!("{prefix}#p{p}");
            let mut frames = src_fm.take_zombie_state(&key);
            if let Some(joint) = src_fm.search_joint(joint_id) {
                frames.extend(joint.detach_queued(&key));
            }
            if frames.is_empty() {
                continue;
            }
            let successor = p % new.len();
            let Some(dst) = self.cluster.node(new[successor]) else {
                continue;
            };
            moved += frames.iter().map(|f| f.len() as u64).sum::<u64>();
            FeedManager::on(&dst).save_zombie_state(&format!("{prefix}#p{successor}"), frames);
        }
        if moved > 0 {
            self.cluster
                .registry()
                .counter("elastic.frames_migrated", &[("joint", joint_id)])
                .add(moved);
            self.cluster.trace().cluster_log().event(
                "elastic.repartition",
                format!("{joint_id}: {moved} records re-parked for successors"),
            );
        }
    }

    /// Rebuild the segments consuming `out` after its placement changed
    /// from `old_locs` to `new_locs`: dependent store connections and
    /// downstream compute segments re-subscribe on the new placement, and
    /// their aborted predecessors are queued for settling + migration.
    fn rebuild_dependents(
        &self,
        st: &mut State,
        out: &str,
        old_locs: &[NodeId],
        new_locs: &[NodeId],
        migrations: &mut Vec<Migration>,
    ) {
        let conn_ids: Vec<ConnectionId> = st
            .connections
            .values()
            .filter(|c| c.state == ConnectionState::Active && c.source_joint == out)
            .map(|c| c.id)
            .collect();
        for id in conn_ids {
            let old_job = st.connections.get_mut(&id).unwrap().job.take();
            if let Some(j) = &old_job {
                j.abort();
            }
            let conn_ref = st.connections.get(&id).unwrap();
            let key = conn_ref.key.clone();
            if let Ok(job) = self.spawn_store_job(st, conn_ref) {
                st.connections.get_mut(&id).unwrap().job = Some(job);
            }
            if let Some(job) = old_job {
                migrations.push(Migration {
                    job,
                    repartition: Some((
                        out.to_string(),
                        format!("conn:{key}"),
                        old_locs.to_vec(),
                        new_locs.to_vec(),
                    )),
                });
            }
        }
        let compute_keys: Vec<String> = st
            .computes
            .values()
            .filter(|s| s.in_joint == out)
            .map(|s| s.out_joint.clone())
            .collect();
        for key in compute_keys {
            st.computes.get_mut(&key).unwrap().job.abort();
            let seg_ref = st.computes.get(&key).unwrap();
            if let Ok(job) = self.spawn_compute_job(st, seg_ref) {
                let old_job = std::mem::replace(&mut st.computes.get_mut(&key).unwrap().job, job);
                migrations.push(Migration {
                    job: old_job,
                    repartition: Some((
                        out.to_string(),
                        format!("compute:{key}"),
                        old_locs.to_vec(),
                        new_locs.to_vec(),
                    )),
                });
            }
        }
        // route segments follow their in-joint; their out joints (and the
        // sink connections subscribed there) move with them
        let route_keys: Vec<String> = st
            .routes
            .iter()
            .filter(|(_, s)| s.in_joint == out)
            .map(|(k, _)| k.clone())
            .collect();
        for key in route_keys {
            let out_joints = st.routes.get(&key).unwrap().out_joints.clone();
            let old_job = {
                let seg = st.routes.get_mut(&key).unwrap();
                seg.locations = new_locs.to_vec();
                std::mem::replace(&mut seg.job, JobHandle::detached())
            };
            old_job.abort();
            migrations.push(Migration {
                job: old_job,
                repartition: Some((
                    out.to_string(),
                    format!("route:{key}"),
                    old_locs.to_vec(),
                    new_locs.to_vec(),
                )),
            });
            for oj in &out_joints {
                let old_oj = st
                    .joints
                    .insert(oj.clone(), new_locs.to_vec())
                    .unwrap_or_default();
                self.preregister_joint(oj, new_locs);
                // sink connections re-subscribe on the moved out joint
                // (recursion bottoms out: nothing consumes a sink joint but
                // its store connections)
                self.rebuild_dependents(st, oj, &old_oj, new_locs, migrations);
            }
            let seg_ref = st.routes.get(&key).unwrap();
            if let Ok(job) = self.spawn_route_job(st, seg_ref) {
                st.routes.get_mut(&key).unwrap().job = job;
            }
        }
    }

    /// Change the parallelism of the compute segment publishing `joint_id`
    /// by `delta` instances (elastic scale-out/in). Dependent store and
    /// compute segments are rebuilt to follow the joint; once the aborted
    /// predecessors have exited, frames stranded on removed partitions are
    /// migrated to their successors (no-loss scale-in).
    pub fn scale_compute(&self, joint_id: &str, delta: i64) -> IngestResult<usize> {
        let mut migrations: Vec<Migration> = Vec::new();
        let new_n = {
            let mut st = self.state.lock();
            let alive: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
            let seg = st.computes.get_mut(joint_id).ok_or_else(|| {
                IngestError::Metadata(format!("no compute segment publishes '{joint_id}'"))
            })?;
            let current = seg.compute_locations.len() as i64;
            let target = (current + delta).max(1) as usize;
            let target = target.min(alive.len().max(1));
            if target == seg.compute_locations.len() {
                return Ok(target);
            }
            let old_locs = seg.compute_locations.clone();
            if target > seg.compute_locations.len() {
                // add nodes not yet used, round-robin
                let mut candidates: Vec<NodeId> = alive
                    .iter()
                    .copied()
                    .filter(|n| !seg.compute_locations.contains(n))
                    .collect();
                while seg.compute_locations.len() < target {
                    match candidates.pop() {
                        Some(n) => seg.compute_locations.push(n),
                        None => break,
                    }
                }
            } else {
                seg.compute_locations.truncate(target);
            }
            seg.job.abort();
            let out = seg.out_joint.clone();
            let locs = seg.compute_locations.clone();
            let new_n = locs.len();
            self.cluster
                .trace()
                .cluster_log()
                .event("feed.scale", format!("{out}: {current} -> {new_n}"));
            st.joints.insert(out.clone(), locs.clone());
            self.preregister_joint(&out, &locs);
            let seg_ref = st.computes.get(&out).unwrap();
            let job = self.spawn_compute_job(&st, seg_ref)?;
            let old_main = std::mem::replace(&mut st.computes.get_mut(&out).unwrap().job, job);
            // the segment's own intake keeps its placement (it follows the
            // *in*-joint): wait out the predecessor so its parked state is
            // visible, but no repartitioning is needed
            migrations.push(Migration {
                job: old_main,
                repartition: None,
            });
            self.rebuild_dependents(&mut st, &out, &old_locs, &locs, &mut migrations);
            new_n
        };
        self.settle_and_migrate(migrations);
        Ok(new_n)
    }

    /// Distinct nodes currently running collect instances for `joint_id`
    /// (the intake width the governor steers).
    pub fn intake_width_of(&self, joint_id: &str) -> Option<usize> {
        self.state
            .lock()
            .collects
            .get(joint_id)
            .map(|s| dedup_nodes(s.locations.clone()).len())
    }

    /// Change the *width* of the collect segment publishing `joint_id` by
    /// `delta` distinct nodes (elastic intake scale-out/in). The number of
    /// collect instances is fixed by the adaptor's constraint (one per
    /// external datasource); scaling redistributes those instances across
    /// more or fewer nodes. Dependent segments are rebuilt to follow the
    /// joint, with the same settle-and-migrate no-loss protocol as
    /// [`FeedController::scale_compute`].
    pub fn scale_intake(&self, joint_id: &str, delta: i64) -> IngestResult<usize> {
        let mut migrations: Vec<Migration> = Vec::new();
        let new_w = {
            let mut st = self.state.lock();
            let alive: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
            let seg = st.collects.get_mut(joint_id).ok_or_else(|| {
                IngestError::Metadata(format!("no collect segment publishes '{joint_id}'"))
            })?;
            let instances = seg.locations.len();
            let old_locs = seg.locations.clone();
            let current_nodes = dedup_nodes(old_locs.clone());
            let current_w = current_nodes.len();
            let max_w = instances.min(alive.len()).max(1);
            let target = ((current_w as i64 + delta).max(1) as usize).min(max_w);
            if target == current_w {
                return Ok(current_w);
            }
            // keep current nodes for stability, grow with unused alive ones
            let mut nodes = current_nodes;
            for n in &alive {
                if nodes.len() >= target {
                    break;
                }
                if !nodes.contains(n) {
                    nodes.push(*n);
                }
            }
            nodes.truncate(target);
            let new_locs: Vec<NodeId> = (0..instances).map(|i| nodes[i % nodes.len()]).collect();
            seg.locations = new_locs.clone();
            seg.job.abort();
            self.cluster.trace().cluster_log().event(
                "feed.scale_intake",
                format!("{joint_id}: width {current_w} -> {target}"),
            );
            st.joints.insert(joint_id.to_string(), new_locs.clone());
            self.preregister_joint(joint_id, &new_locs);
            let seg_ref = st.collects.get(joint_id).unwrap();
            let job = self.spawn_collect_job(seg_ref)?;
            let old_main = std::mem::replace(&mut st.collects.get_mut(joint_id).unwrap().job, job);
            // the old collect must stop depositing into the old joint
            // instances before dependents' queues are harvested; its
            // external sockets survive the swap (persistent source wire)
            migrations.push(Migration {
                job: old_main,
                repartition: None,
            });
            self.rebuild_dependents(&mut st, joint_id, &old_locs, &new_locs, &mut migrations);
            target
        };
        self.settle_and_migrate(migrations);
        Ok(new_w)
    }
}

impl std::fmt::Debug for FeedController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "FeedController({} connections, {} computes, {} collects, {} routes)",
            st.connections.len(),
            st.computes.len(),
            st.collects.len(),
            st.routes.len()
        )
    }
}

fn dedup_nodes(mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    nodes.retain(|n| seen.insert(*n));
    nodes
}

/// Null-sink descriptor terminating a collect job (§5.3.1's NullSink).
struct NullSinkDesc {
    locations: Vec<NodeId>,
}

impl OperatorDescriptor for NullSinkDesc {
    fn name(&self) -> String {
        "NullSink".into()
    }

    fn constraints(&self) -> Constraint {
        Constraint::Locations(self.locations.clone())
    }

    fn instantiate(
        &self,
        _ctx: &TaskContext,
        output: Box<dyn FrameWriter>,
    ) -> IngestResult<OperatorRuntime> {
        Ok(OperatorRuntime::Unary(Box::new(
            asterix_hyracks::executor::UnaryHost::new(Box::new(NullSink), output),
        )))
    }
}
