//! Ingestion policies.
//!
//! "AsterixDB allows a data feed to have an associated ingestion policy that
//! is expressed as a collection of parameters and associated values" (§4.5).
//! Table 4.1 lists the parameters; Table 4.2 summarises how each built-in
//! policy handles excess records:
//!
//! | Policy   | Approach |
//! |----------|----------|
//! | Basic    | Buffer excess records in memory |
//! | Spill    | Spill excess records to disk for deferred processing |
//! | Discard  | Discard excess records altogether |
//! | Throttle | Randomly filter out records to regulate the rate of arrival |
//! | Elastic  | Scale out/in to adapt to the rate of arrival |
//!
//! Custom policies extend a built-in and override parameters (Listing 4.6's
//! `Spill_then_Throttle`).

use asterix_common::{IngestError, IngestResult};
use std::collections::BTreeMap;

/// One typed ingestion-policy parameter (Table 4.1).
///
/// This is the structured face of the stringly `("key", "value")` pairs an
/// AQL `with` clause carries: [`PolicyParam::parse`] is the shim that turns
/// those pairs into typed values, and [`IngestionPolicy::set`] applies them.
/// Constructing a variant directly skips string parsing entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyParam {
    /// `excess.records.spill`
    ExcessRecordsSpill(bool),
    /// `excess.records.discard`
    ExcessRecordsDiscard(bool),
    /// `excess.records.throttle`
    ExcessRecordsThrottle(bool),
    /// `excess.records.elastic`
    ExcessRecordsElastic(bool),
    /// `recover.soft.failure`
    RecoverSoftFailure(bool),
    /// `recover.hard.failure`
    RecoverHardFailure(bool),
    /// `at.least.once.enabled`
    AtLeastOnce(bool),
    /// `memory.budget.bytes`
    MemoryBudgetBytes(usize),
    /// `max.spill.size.on.disk`
    MaxSpillBytes(usize),
    /// `max.consecutive.soft.failures`
    MaxConsecutiveSoftFailures(usize),
    /// `soft.failure.log.data`
    LogSoftFailures(bool),
    /// `throttle.keep.fraction` — fraction of records *kept*, in (0, 1].
    ThrottleKeepFraction(f64),
}

impl PolicyParam {
    /// The Table 4.1 parameter name this variant corresponds to.
    pub fn key(&self) -> &'static str {
        match self {
            PolicyParam::ExcessRecordsSpill(_) => "excess.records.spill",
            PolicyParam::ExcessRecordsDiscard(_) => "excess.records.discard",
            PolicyParam::ExcessRecordsThrottle(_) => "excess.records.throttle",
            PolicyParam::ExcessRecordsElastic(_) => "excess.records.elastic",
            PolicyParam::RecoverSoftFailure(_) => "recover.soft.failure",
            PolicyParam::RecoverHardFailure(_) => "recover.hard.failure",
            PolicyParam::AtLeastOnce(_) => "at.least.once.enabled",
            PolicyParam::MemoryBudgetBytes(_) => "memory.budget.bytes",
            PolicyParam::MaxSpillBytes(_) => "max.spill.size.on.disk",
            PolicyParam::MaxConsecutiveSoftFailures(_) => "max.consecutive.soft.failures",
            PolicyParam::LogSoftFailures(_) => "soft.failure.log.data",
            PolicyParam::ThrottleKeepFraction(_) => "throttle.keep.fraction",
        }
    }

    /// Parse one stringly `key=value` pair from an AQL `with` clause into a
    /// typed parameter. Unknown keys raise
    /// [`IngestError::PolicyUnknownParam`]; malformed values raise
    /// [`IngestError::PolicyInvalidValue`] naming what was expected.
    pub fn parse(key: &str, value: &str) -> IngestResult<PolicyParam> {
        fn invalid(key: &str, value: &str, expected: &str) -> IngestError {
            IngestError::PolicyInvalidValue {
                key: key.to_string(),
                value: value.to_string(),
                expected: expected.to_string(),
            }
        }
        fn parse_bool(key: &str, v: &str) -> IngestResult<bool> {
            v.parse::<bool>().map_err(|_| invalid(key, v, "true/false"))
        }
        fn parse_bytes(key: &str, v: &str) -> IngestResult<usize> {
            let raw = v.trim();
            let (num, mult) = if let Some(n) = raw.strip_suffix("GB") {
                (n, 1 << 30)
            } else if let Some(n) = raw.strip_suffix("MB") {
                (n, 1 << 20)
            } else if let Some(n) = raw.strip_suffix("KB") {
                (n, 1 << 10)
            } else {
                (raw, 1)
            };
            num.trim()
                .parse::<usize>()
                .map(|n| n * mult)
                .map_err(|_| invalid(key, v, "a byte size like 512MB"))
        }
        Ok(match key {
            "excess.records.spill" => PolicyParam::ExcessRecordsSpill(parse_bool(key, value)?),
            "excess.records.discard" => PolicyParam::ExcessRecordsDiscard(parse_bool(key, value)?),
            "excess.records.throttle" => {
                PolicyParam::ExcessRecordsThrottle(parse_bool(key, value)?)
            }
            "excess.records.elastic" => PolicyParam::ExcessRecordsElastic(parse_bool(key, value)?),
            "recover.soft.failure" => PolicyParam::RecoverSoftFailure(parse_bool(key, value)?),
            "recover.hard.failure" => PolicyParam::RecoverHardFailure(parse_bool(key, value)?),
            "at.least.once.enabled" => PolicyParam::AtLeastOnce(parse_bool(key, value)?),
            "memory.budget.bytes" => PolicyParam::MemoryBudgetBytes(parse_bytes(key, value)?),
            "max.spill.size.on.disk" => PolicyParam::MaxSpillBytes(parse_bytes(key, value)?),
            "max.consecutive.soft.failures" => PolicyParam::MaxConsecutiveSoftFailures(
                value
                    .parse()
                    .map_err(|_| invalid(key, value, "a non-negative integer"))?,
            ),
            "soft.failure.log.data" => PolicyParam::LogSoftFailures(parse_bool(key, value)?),
            "throttle.keep.fraction" => PolicyParam::ThrottleKeepFraction(
                value
                    .parse()
                    .map_err(|_| invalid(key, value, "a fraction in (0, 1]"))?,
            ),
            other => return Err(IngestError::PolicyUnknownParam(other.to_string())),
        })
    }
}

/// How excess records are handled when the pipeline cannot keep up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcessStrategy {
    /// Buffer in memory (until the memory budget is exhausted → feed ends).
    Buffer,
    /// Spill to local disk for deferred processing.
    Spill,
    /// Drop excess records until the backlog clears.
    Discard,
    /// Randomly sample records to reduce the effective arrival rate.
    Throttle,
    /// Ask the Central Feed Manager to scale the compute stage out.
    Elastic,
}

/// A fully-resolved ingestion policy.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestionPolicy {
    /// Policy name (as referenced in `connect feed ... using policy X`).
    pub name: String,
    /// `excess.records.spill`
    pub excess_records_spill: bool,
    /// `excess.records.discard`
    pub excess_records_discard: bool,
    /// `excess.records.throttle`
    pub excess_records_throttle: bool,
    /// `excess.records.elastic`
    pub excess_records_elastic: bool,
    /// `recover.soft.failure` (default true, Table 4.1)
    pub recover_soft_failure: bool,
    /// `recover.hard.failure` (default true, Table 4.1)
    pub recover_hard_failure: bool,
    /// `at.least.once.enabled` (§5.6)
    pub at_least_once: bool,
    /// `memory.budget.bytes` — in-memory excess buffer budget for Basic.
    pub memory_budget_bytes: usize,
    /// `max.spill.size.on.disk` — bytes; `None` = unbounded.
    pub max_spill_bytes: Option<usize>,
    /// `max.consecutive.soft.failures` before the feed ends (§6.1.2).
    pub max_consecutive_soft_failures: usize,
    /// `soft.failure.log.data` — log failing records to a dedicated dataset.
    pub log_soft_failures_to_dataset: bool,
    /// Fraction of records *kept* under throttling (0, 1].
    pub throttle_keep_fraction: f64,
}

impl IngestionPolicy {
    /// The `Basic` policy: buffer excess in memory.
    pub fn basic() -> Self {
        IngestionPolicy {
            name: "Basic".into(),
            excess_records_spill: false,
            excess_records_discard: false,
            excess_records_throttle: false,
            excess_records_elastic: false,
            recover_soft_failure: true,
            recover_hard_failure: true,
            at_least_once: false,
            memory_budget_bytes: 64 * 1024 * 1024,
            max_spill_bytes: None,
            max_consecutive_soft_failures: 1000,
            log_soft_failures_to_dataset: false,
            throttle_keep_fraction: 0.5,
        }
    }

    /// The `Spill` policy.
    pub fn spill() -> Self {
        IngestionPolicy {
            name: "Spill".into(),
            excess_records_spill: true,
            ..IngestionPolicy::basic()
        }
    }

    /// The `Discard` policy.
    pub fn discard() -> Self {
        IngestionPolicy {
            name: "Discard".into(),
            excess_records_discard: true,
            ..IngestionPolicy::basic()
        }
    }

    /// The `Throttle` policy.
    pub fn throttle() -> Self {
        IngestionPolicy {
            name: "Throttle".into(),
            excess_records_throttle: true,
            ..IngestionPolicy::basic()
        }
    }

    /// The `Elastic` policy.
    pub fn elastic() -> Self {
        IngestionPolicy {
            name: "Elastic".into(),
            excess_records_elastic: true,
            ..IngestionPolicy::basic()
        }
    }

    /// The `FaultTolerant` policy used in the Chapter 6 experiment:
    /// Basic + at-least-once delivery.
    pub fn fault_tolerant() -> Self {
        IngestionPolicy {
            name: "FaultTolerant".into(),
            at_least_once: true,
            ..IngestionPolicy::basic()
        }
    }

    /// Look up a built-in policy by name (case-insensitive).
    pub fn builtin(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "basic" => Some(Self::basic()),
            "spill" => Some(Self::spill()),
            "discard" => Some(Self::discard()),
            "throttle" => Some(Self::throttle()),
            "elastic" => Some(Self::elastic()),
            "faulttolerant" | "fault-tolerant" | "fault_tolerant" => Some(Self::fault_tolerant()),
            _ => None,
        }
    }

    /// Derive a custom policy by overriding parameters (the `create
    /// ingestion policy X from policy Y (...)` path, Listing 4.6).
    /// Unknown parameter names are configuration errors.
    pub fn extend(
        &self,
        name: impl Into<String>,
        params: &BTreeMap<String, String>,
    ) -> IngestResult<IngestionPolicy> {
        let mut p = self.clone();
        p.name = name.into();
        for (k, v) in params {
            p.set_param(k, v)?;
        }
        Ok(p)
    }

    /// Apply one typed parameter. Range constraints that the type system
    /// cannot express (the throttle fraction) are validated here, so a
    /// hand-constructed [`PolicyParam`] gets the same checks as a parsed one.
    pub fn set(&mut self, param: PolicyParam) -> IngestResult<()> {
        match param {
            PolicyParam::ExcessRecordsSpill(v) => self.excess_records_spill = v,
            PolicyParam::ExcessRecordsDiscard(v) => self.excess_records_discard = v,
            PolicyParam::ExcessRecordsThrottle(v) => self.excess_records_throttle = v,
            PolicyParam::ExcessRecordsElastic(v) => self.excess_records_elastic = v,
            PolicyParam::RecoverSoftFailure(v) => self.recover_soft_failure = v,
            PolicyParam::RecoverHardFailure(v) => self.recover_hard_failure = v,
            PolicyParam::AtLeastOnce(v) => self.at_least_once = v,
            PolicyParam::MemoryBudgetBytes(v) => self.memory_budget_bytes = v,
            PolicyParam::MaxSpillBytes(v) => self.max_spill_bytes = Some(v),
            PolicyParam::MaxConsecutiveSoftFailures(v) => self.max_consecutive_soft_failures = v,
            PolicyParam::LogSoftFailures(v) => self.log_soft_failures_to_dataset = v,
            PolicyParam::ThrottleKeepFraction(f) => {
                if !(f > 0.0 && f <= 1.0) {
                    return Err(IngestError::PolicyInvalidValue {
                        key: "throttle.keep.fraction".into(),
                        value: f.to_string(),
                        expected: "a fraction in (0, 1]".into(),
                    });
                }
                self.throttle_keep_fraction = f;
            }
        }
        Ok(())
    }

    /// Set one Table 4.1-style parameter from its stringly form (the AQL
    /// `with`-clause shim over [`PolicyParam::parse`] + [`Self::set`]).
    pub fn set_param(&mut self, key: &str, value: &str) -> IngestResult<()> {
        self.set(PolicyParam::parse(key, value)?)
    }

    /// The primary strategy for excess records (Table 4.2). When several
    /// flags are set, the escalation order is spill → discard → throttle →
    /// elastic; `primary_excess_strategy` returns the first enabled one and
    /// [`IngestionPolicy::overflow_strategy`] the next (for custom policies
    /// like Spill-then-Throttle).
    pub fn primary_excess_strategy(&self) -> ExcessStrategy {
        if self.excess_records_spill {
            ExcessStrategy::Spill
        } else if self.excess_records_discard {
            ExcessStrategy::Discard
        } else if self.excess_records_throttle {
            ExcessStrategy::Throttle
        } else if self.excess_records_elastic {
            ExcessStrategy::Elastic
        } else {
            ExcessStrategy::Buffer
        }
    }

    /// The strategy applied when the primary one is exhausted (spill file
    /// full, memory budget gone).
    pub fn overflow_strategy(&self) -> ExcessStrategy {
        match self.primary_excess_strategy() {
            ExcessStrategy::Spill => {
                if self.excess_records_throttle {
                    ExcessStrategy::Throttle
                } else {
                    // discard, explicitly enabled or not: a full spill must
                    // shed load
                    ExcessStrategy::Discard
                }
            }
            ExcessStrategy::Buffer => ExcessStrategy::Discard,
            other => other,
        }
    }
}

impl Default for IngestionPolicy {
    fn default() -> Self {
        IngestionPolicy::basic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_match_table_4_2() {
        assert_eq!(
            IngestionPolicy::basic().primary_excess_strategy(),
            ExcessStrategy::Buffer
        );
        assert_eq!(
            IngestionPolicy::spill().primary_excess_strategy(),
            ExcessStrategy::Spill
        );
        assert_eq!(
            IngestionPolicy::discard().primary_excess_strategy(),
            ExcessStrategy::Discard
        );
        assert_eq!(
            IngestionPolicy::throttle().primary_excess_strategy(),
            ExcessStrategy::Throttle
        );
        assert_eq!(
            IngestionPolicy::elastic().primary_excess_strategy(),
            ExcessStrategy::Elastic
        );
    }

    #[test]
    fn table_4_1_defaults() {
        let p = IngestionPolicy::basic();
        assert!(!p.excess_records_spill);
        assert!(!p.excess_records_discard);
        assert!(!p.excess_records_throttle);
        assert!(!p.excess_records_elastic);
        assert!(p.recover_soft_failure);
        assert!(p.recover_hard_failure);
        assert!(!p.at_least_once);
    }

    #[test]
    fn builtin_lookup_is_case_insensitive() {
        assert_eq!(IngestionPolicy::builtin("BASIC").unwrap().name, "Basic");
        assert_eq!(IngestionPolicy::builtin("discard").unwrap().name, "Discard");
        assert!(IngestionPolicy::builtin("nope").is_none());
    }

    #[test]
    fn listing_4_6_spill_then_throttle() {
        // create ingestion policy Spill_then_Throttle from policy Spill
        //   ("max.spill.size.on.disk"="512MB", "excess.records.throttle"="true")
        let mut params = BTreeMap::new();
        params.insert("max.spill.size.on.disk".into(), "512MB".into());
        params.insert("excess.records.throttle".into(), "true".into());
        let p = IngestionPolicy::spill()
            .extend("Spill_then_Throttle", &params)
            .unwrap();
        assert_eq!(p.name, "Spill_then_Throttle");
        assert_eq!(p.max_spill_bytes, Some(512 << 20));
        assert_eq!(p.primary_excess_strategy(), ExcessStrategy::Spill);
        assert_eq!(p.overflow_strategy(), ExcessStrategy::Throttle);
    }

    #[test]
    fn spill_overflow_defaults_to_discard() {
        let p = IngestionPolicy::spill();
        assert_eq!(p.overflow_strategy(), ExcessStrategy::Discard);
    }

    #[test]
    fn size_suffixes_parse() {
        let mut p = IngestionPolicy::basic();
        p.set_param("memory.budget.bytes", "4KB").unwrap();
        assert_eq!(p.memory_budget_bytes, 4096);
        p.set_param("memory.budget.bytes", "2MB").unwrap();
        assert_eq!(p.memory_budget_bytes, 2 << 20);
        p.set_param("memory.budget.bytes", "1GB").unwrap();
        assert_eq!(p.memory_budget_bytes, 1 << 30);
        p.set_param("memory.budget.bytes", "12345").unwrap();
        assert_eq!(p.memory_budget_bytes, 12345);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = IngestionPolicy::basic();
        assert!(p.set_param("excess.records.spill", "yes").is_err());
        assert!(p.set_param("no.such.param", "true").is_err());
        assert!(p.set_param("throttle.keep.fraction", "0.0").is_err());
        assert!(p.set_param("throttle.keep.fraction", "1.5").is_err());
        assert!(p.set_param("max.consecutive.soft.failures", "-3").is_err());
        p.set_param("throttle.keep.fraction", "0.25").unwrap();
        assert_eq!(p.throttle_keep_fraction, 0.25);
    }

    #[test]
    fn typed_params_apply_without_string_parsing() {
        let mut p = IngestionPolicy::basic();
        p.set(PolicyParam::ExcessRecordsElastic(true)).unwrap();
        p.set(PolicyParam::MemoryBudgetBytes(4096)).unwrap();
        p.set(PolicyParam::ThrottleKeepFraction(0.75)).unwrap();
        assert!(p.excess_records_elastic);
        assert_eq!(p.memory_budget_bytes, 4096);
        assert_eq!(p.throttle_keep_fraction, 0.75);
        // out-of-range fraction is caught even without the parse shim
        let err = p.set(PolicyParam::ThrottleKeepFraction(2.0)).unwrap_err();
        assert!(matches!(err, IngestError::PolicyInvalidValue { .. }));
    }

    #[test]
    fn parse_errors_are_structured() {
        match PolicyParam::parse("no.such.param", "true") {
            Err(IngestError::PolicyUnknownParam(k)) => assert_eq!(k, "no.such.param"),
            other => panic!("expected PolicyUnknownParam, got {other:?}"),
        }
        match PolicyParam::parse("excess.records.spill", "yes") {
            Err(IngestError::PolicyInvalidValue { key, value, .. }) => {
                assert_eq!(key, "excess.records.spill");
                assert_eq!(value, "yes");
            }
            other => panic!("expected PolicyInvalidValue, got {other:?}"),
        }
        assert_eq!(
            PolicyParam::parse("memory.budget.bytes", "512MB").unwrap(),
            PolicyParam::MemoryBudgetBytes(512 << 20)
        );
        assert_eq!(
            PolicyParam::parse("at.least.once.enabled", "true")
                .unwrap()
                .key(),
            "at.least.once.enabled"
        );
    }

    #[test]
    fn disabling_recovery() {
        let mut params = BTreeMap::new();
        params.insert("recover.hard.failure".into(), "false".into());
        params.insert("recover.soft.failure".into(), "false".into());
        let p = IngestionPolicy::basic().extend("Fragile", &params).unwrap();
        assert!(!p.recover_hard_failure);
        assert!(!p.recover_soft_failure);
    }

    #[test]
    fn fault_tolerant_enables_at_least_once() {
        let p = IngestionPolicy::fault_tolerant();
        assert!(p.at_least_once);
        assert!(p.recover_hard_failure);
    }
}
