//! The user-defined-function framework (Ch. 4.2).
//!
//! A feed may "apply function" a UDF to every record before persistence.
//! Two kinds exist, with different compiler treatment:
//!
//! * **AQL UDFs** — transparent to the compiler ("the AsterixDB compiler can
//!   reason about an AQL UDF and even involve the use of indexes");
//! * **External (Java) UDFs** — "treated as a black box", assumed stateless
//!   and embarrassingly parallel.
//!
//! Both run as `AdmValue → AdmValue` functions at the compute stage. The
//! experiments of §5.7.2 use synthetic external UDFs whose cost is a busy
//! spin loop "that runs for a given number of iterations" —
//! [`Udf::busy_spin`] reproduces those.

use asterix_adm::functions::add_hash_tags;
use asterix_adm::AdmValue;
use asterix_common::{IngestError, IngestResult};
use std::sync::Arc;

/// How the function was authored (affects compiler treatment, not runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdfKind {
    /// Declarative AQL function — inlined by the compiler.
    Aql,
    /// External black-box function (the paper's Java UDFs).
    External,
}

/// The callable inside a UDF.
pub type UdfFn = Arc<dyn Fn(&AdmValue) -> IngestResult<AdmValue> + Send + Sync>;

/// A record-to-record pre-processing function.
#[derive(Clone)]
pub struct Udf {
    /// Function name; external functions use the qualified
    /// `library#function` form (Listing 5.9).
    pub name: String,
    /// AQL or external.
    pub kind: UdfKind,
    f: UdfFn,
}

impl Udf {
    /// Wrap a closure as an AQL UDF.
    pub fn aql(
        name: impl Into<String>,
        f: impl Fn(&AdmValue) -> IngestResult<AdmValue> + Send + Sync + 'static,
    ) -> Udf {
        Udf {
            name: name.into(),
            kind: UdfKind::Aql,
            f: Arc::new(f),
        }
    }

    /// Wrap a closure as an external ("Java") UDF.
    pub fn external(
        name: impl Into<String>,
        f: impl Fn(&AdmValue) -> IngestResult<AdmValue> + Send + Sync + 'static,
    ) -> Udf {
        Udf {
            name: name.into(),
            kind: UdfKind::External,
            f: Arc::new(f),
        }
    }

    /// Apply to one record. A panic inside an external function is caught
    /// and surfaced as a soft failure — the sandbox boundary for buggy
    /// user code (§6.1).
    pub fn apply(&self, record: &AdmValue) -> IngestResult<AdmValue> {
        match self.kind {
            UdfKind::Aql => (self.f)(record),
            UdfKind::External => {
                let f = Arc::clone(&self.f);
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(record))).unwrap_or_else(
                    |p| {
                        let msg = p
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "panic in external UDF".into());
                        Err(IngestError::soft(format!(
                            "external UDF {} panicked: {msg}",
                            self.name
                        )))
                    },
                )
            }
        }
    }

    /// The paper's Listing 4.2 `addHashTags` AQL UDF.
    pub fn add_hash_tags() -> Udf {
        Udf::aql("addHashTags", add_hash_tags)
    }

    /// A synthetic external UDF spinning for `iterations` loop steps per
    /// record, optionally composing an inner transformation — the §5.7.2
    /// technique for modelling UDFs of varying computational cost.
    pub fn busy_spin(name: impl Into<String>, iterations: u64) -> Udf {
        Udf::external(name, move |r| {
            let mut acc = 0u64;
            for i in 0..iterations {
                acc = acc.wrapping_add(i).rotate_left(1);
            }
            std::hint::black_box(acc);
            Ok(r.clone())
        })
    }

    /// A filtering UDF: keeps records satisfying `predicate`, drops the
    /// rest (by returning `missing`, which the compute stage interprets as
    /// "filtered"). Subscriptions in the §8.2 publish-subscribe use case
    /// are such predicate feeds.
    pub fn filter(
        name: impl Into<String>,
        predicate: impl Fn(&AdmValue) -> bool + Send + Sync + 'static,
    ) -> Udf {
        Udf::aql(name, move |r| {
            if predicate(r) {
                Ok(r.clone())
            } else {
                Ok(AdmValue::Missing)
            }
        })
    }

    /// A sentiment-analysis stand-in (the paper's `tweetlib#sentimentAnalysis`,
    /// Listing 5.9): appends a deterministic `sentiment ∈ [0, 1]` derived
    /// from the message text.
    pub fn sentiment_analysis() -> Udf {
        Udf::external("tweetlib#sentimentAnalysis", |r| {
            let text = r
                .field("message_text")
                .and_then(AdmValue::as_str)
                .ok_or_else(|| IngestError::soft("record has no message_text"))?;
            let positive = ["love", "great", "awesome", "good", "happy", "like"];
            let negative = ["hate", "terrible", "bad", "sad", "never"];
            let mut score = 0i32;
            for w in text.split_whitespace() {
                let w = w.to_ascii_lowercase();
                if positive.contains(&w.as_str()) {
                    score += 1;
                } else if negative.contains(&w.as_str()) {
                    score -= 1;
                }
            }
            let sentiment = 1.0 / (1.0 + (-(score as f64)).exp());
            let mut out = r.clone();
            out.set_field("sentiment", AdmValue::Double(sentiment));
            Ok(out)
        })
    }
}

impl std::fmt::Debug for Udf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Udf({}, {:?})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(text: &str) -> AdmValue {
        AdmValue::record(vec![("id", "t1".into()), ("message_text", text.into())])
    }

    #[test]
    fn add_hash_tags_udf() {
        let u = Udf::add_hash_tags();
        assert_eq!(u.kind, UdfKind::Aql);
        let out = u.apply(&tweet("go #lakers")).unwrap();
        assert_eq!(
            out.field("topics").unwrap().as_list().unwrap()[0],
            AdmValue::string("#lakers")
        );
    }

    #[test]
    fn busy_spin_is_identity() {
        let u = Udf::busy_spin("f1", 10_000);
        let t = tweet("x");
        assert_eq!(u.apply(&t).unwrap(), t);
        assert_eq!(u.kind, UdfKind::External);
    }

    #[test]
    fn busy_spin_cost_scales() {
        let cheap = Udf::busy_spin("cheap", 0);
        let costly = Udf::busy_spin("costly", 3_000_000);
        let t = tweet("x");
        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            cheap.apply(&t).unwrap();
        }
        let cheap_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..50 {
            costly.apply(&t).unwrap();
        }
        let costly_time = t1.elapsed();
        assert!(
            costly_time > cheap_time * 3,
            "costly {costly_time:?} vs cheap {cheap_time:?}"
        );
    }

    #[test]
    fn sentiment_lands_in_unit_interval() {
        let u = Udf::sentiment_analysis();
        for text in ["love love great", "hate terrible bad sad", "neutral words"] {
            let out = u.apply(&tweet(text)).unwrap();
            let s = out.field("sentiment").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&s), "{text} → {s}");
        }
        let pos = u.apply(&tweet("love great awesome")).unwrap();
        let neg = u.apply(&tweet("hate terrible bad")).unwrap();
        assert!(
            pos.field("sentiment").unwrap().as_f64().unwrap()
                > neg.field("sentiment").unwrap().as_f64().unwrap()
        );
    }

    #[test]
    fn external_panic_becomes_soft_failure() {
        let u = Udf::external("buggy", |_| panic!("NPE!"));
        let err = u.apply(&tweet("x")).unwrap_err();
        assert!(err.is_soft());
        assert!(err.to_string().contains("NPE"), "{err}");
    }

    #[test]
    fn aql_errors_pass_through() {
        let u = Udf::aql("checker", |_| Err(IngestError::soft("bad record")));
        assert!(u.apply(&tweet("x")).unwrap_err().is_soft());
    }
}
