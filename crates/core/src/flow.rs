//! The congestion controller (Chapter 7).
//!
//! "An expensive UDF or an increased rate of arrival of data may lead to an
//! excessive demand for resources leading to delays in the processing of
//! records" (§7.1). The intake operator of every pipeline pushes frames
//! through a [`FlowController`]: a bounded hand-off queue drained by a
//! pusher thread into the (back-pressured) downstream stage. While the
//! queue accepts, data flows normally; when it is full the arriving frame
//! is *excess* and the connection's ingestion policy decides its fate
//! (Table 4.2):
//!
//! * **Buffer** (Basic) — excess is held in memory; exhausting the memory
//!   budget terminates the feed;
//! * **Spill** — excess is serialized to the local "disk" and re-processed
//!   as soon as the pipeline catches up; a full spill file escalates to the
//!   policy's overflow strategy;
//! * **Discard** — excess frames are dropped until the backlog clears
//!   (producing the contiguous gaps of Fig 7.9);
//! * **Throttle** — records are randomly sampled down to a keep-fraction
//!   (the uniform thinning of Fig 7.10);
//! * **Elastic** — a scale-out request is signalled to the Central Feed
//!   Manager and excess is buffered while the pipeline is restructured.

use crate::metrics::FeedMetrics;
use crate::policy::{ExcessStrategy, IngestionPolicy};
use asterix_common::sync::handoff::{self, TrySendError};
use asterix_common::sync::{thread as sync_thread, Mutex};
use asterix_common::{DataFrame, FeedId, IngestError, IngestResult, Record, RecordId, SimInstant};
use asterix_hyracks::operator::FrameWriter;
use crossbeam_channel::Sender;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// A scale-out request emitted under the Elastic policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticRequest {
    /// Key of the congested connection.
    pub connection_key: String,
}

/// Serialized frames on the simulated local disk.
#[derive(Debug, Default)]
pub struct SpillFile {
    segments: VecDeque<Vec<u8>>,
    bytes: usize,
    encodes: u64,
}

impl SpillFile {
    /// Append a frame (serialized). The generation stamp spills with each
    /// record (`u64::MAX` = unstamped) so ingestion lag keeps counting
    /// time spent on disk.
    pub fn push(&mut self, frame: &DataFrame) {
        let mut buf = Vec::with_capacity(frame.size_bytes() + 16);
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        for r in frame.records() {
            buf.extend_from_slice(&r.id.raw().to_le_bytes());
            buf.extend_from_slice(&r.adaptor.to_le_bytes());
            buf.extend_from_slice(&r.gen_at.map_or(u64::MAX, |g| g.0).to_le_bytes());
            buf.extend_from_slice(&(r.payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&r.payload);
        }
        self.encodes += 1;
        self.bytes += buf.len();
        self.segments.push_back(buf);
    }

    /// Detach the oldest segment without decoding it.
    pub fn pop_segment(&mut self) -> Option<Vec<u8>> {
        let buf = self.segments.pop_front()?;
        self.bytes -= buf.len();
        Some(buf)
    }

    /// Re-queue an already-encoded segment at the *front* (a failed
    /// de-spill). O(1): the serialized bytes are reused verbatim, no
    /// re-encode of this — or any other — segment.
    pub fn push_front_segment(&mut self, segment: Vec<u8>) {
        self.bytes += segment.len();
        self.segments.push_front(segment);
    }

    /// Decode one serialized segment back into a frame.
    pub fn decode_segment(buf: &[u8]) -> DataFrame {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| {
            let s = &buf[*pos..*pos + n];
            *pos += n;
            s.to_vec()
        };
        let n = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let id = u64::from_le_bytes(take(&mut pos, 8).try_into().unwrap());
            let adaptor = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap());
            let gen_raw = u64::from_le_bytes(take(&mut pos, 8).try_into().unwrap());
            let len = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
            let payload = take(&mut pos, len);
            let mut rec = Record::tracked(RecordId(id), adaptor, payload);
            if gen_raw != u64::MAX {
                rec = rec.stamped(SimInstant(gen_raw));
            }
            records.push(rec);
        }
        DataFrame::from_records(records)
    }

    /// Read back the oldest frame.
    pub fn pop(&mut self) -> Option<DataFrame> {
        let buf = self.pop_segment()?;
        Some(SpillFile::decode_segment(&buf))
    }

    /// Bytes currently on disk.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Any spilled frames waiting?
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// How many frame serializations this file performed. A failed de-spill
    /// must not re-encode surviving segments, so this counts each spilled
    /// frame exactly once regardless of re-queues.
    pub fn encode_count(&self) -> u64 {
        self.encodes
    }
}

struct Shared {
    error: Mutex<Option<IngestError>>,
}

/// The per-pipeline congestion controller.
pub struct FlowController {
    policy: IngestionPolicy,
    metrics: Arc<FeedMetrics>,
    q_tx: Option<handoff::Sender<DataFrame>>,
    pusher: Option<std::thread::JoinHandle<IngestResult<()>>>,
    shared: Arc<Shared>,
    backlog: VecDeque<DataFrame>,
    backlog_bytes: usize,
    spill: SpillFile,
    rng: SmallRng,
    elastic_tx: Option<Sender<ElasticRequest>>,
    feed: FeedId,
    connection_key: String,
    elastic_signalled: bool,
    capacity: usize,
}

impl FlowController {
    /// Wrap `downstream` with policy-governed flow control. `capacity` is
    /// the hand-off queue depth in frames (the congestion sensor).
    pub fn new(
        policy: IngestionPolicy,
        metrics: Arc<FeedMetrics>,
        downstream: Box<dyn FrameWriter>,
        capacity: usize,
        feed: FeedId,
        connection_key: impl Into<String>,
        elastic_tx: Option<Sender<ElasticRequest>>,
    ) -> FlowController {
        let (q_tx, q_rx) = handoff::bounded::<DataFrame>(capacity.max(1));
        let shared = Arc::new(Shared {
            error: Mutex::new(None),
        });
        let pusher_shared = Arc::clone(&shared);
        let spawned = sync_thread::spawn_named("feed-flow-pusher", move || {
            let mut downstream = downstream;
            if let Err(e) = downstream.open() {
                *pusher_shared.error.lock() = Some(e.clone());
                return Err(e);
            }
            for frame in q_rx.iter() {
                if let Err(e) = downstream.next_frame(frame) {
                    *pusher_shared.error.lock() = Some(e.clone());
                    downstream.fail();
                    return Err(e);
                }
            }
            downstream.close()
        });
        // a failed OS-thread spawn degrades the controller (first offer
        // reports the error) instead of panicking the intake operator
        let (q_tx, pusher) = match spawned {
            Ok(handle) => (Some(q_tx), Some(handle)),
            Err(e) => {
                *shared.error.lock() = Some(IngestError::Plan(format!(
                    "cannot spawn flow pusher thread: {e}"
                )));
                (None, None)
            }
        };
        FlowController {
            policy,
            metrics,
            q_tx,
            pusher,
            shared,
            backlog: VecDeque::new(),
            backlog_bytes: 0,
            spill: SpillFile::default(),
            rng: SmallRng::seed_from_u64(0xF10C),
            elastic_tx,
            feed,
            connection_key: connection_key.into(),
            elastic_signalled: false,
            capacity: capacity.max(1),
        }
    }

    fn check_downstream(&self) -> IngestResult<()> {
        if let Some(e) = self.shared.error.lock().clone() {
            return Err(e);
        }
        Ok(())
    }

    fn try_send(&mut self, frame: DataFrame) -> Result<(), Option<DataFrame>> {
        // a missing queue (failed spawn, already-finished flow) reads as
        // disconnected rather than panicking
        let Some(tx) = self.q_tx.as_ref() else {
            return Err(None);
        };
        match tx.try_send(frame) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(f)) => Err(Some(f)),
            Err(TrySendError::Disconnected(_)) => Err(None),
        }
    }

    /// Move backlog / spillage downstream while there is room. Returns true
    /// if everything deferred has drained.
    pub fn drain_deferred(&mut self) -> IngestResult<bool> {
        self.check_downstream()?;
        // refresh the congestion gauge from every housekeeping pass, not
        // just offers — a drained-but-idle feed must read as depth 0 or the
        // governor would keep seeing the last congested value forever
        self.metrics
            .handoff_queue_frames
            .set(self.queue_depth() as u64);
        // memory backlog first (it is older under Basic; under Spill the
        // memory backlog is unused)
        while let Some(frame) = self.backlog.pop_front() {
            let sz = frame.size_bytes();
            match self.try_send(frame) {
                Ok(()) => {
                    self.backlog_bytes -= sz;
                    self.metrics.buffer_bytes.set(self.backlog_bytes as u64);
                }
                Err(Some(f)) => {
                    self.backlog.push_front(f);
                    return Ok(false);
                }
                Err(None) => return Err(IngestError::Disconnected("pipeline gone".into())),
            }
        }
        while let Some(segment) = self.spill.pop_segment() {
            let frame = SpillFile::decode_segment(&segment);
            let n = frame.len() as u64;
            match self.try_send(frame) {
                Ok(()) => {
                    self.metrics.records_despilled.add(n);
                    self.metrics.spill_bytes.set(self.spill.bytes() as u64);
                }
                Err(Some(_)) => {
                    // no room: re-queue the encoded segment at the front
                    self.spill.push_front_segment(segment);
                    self.metrics.spill_bytes.set(self.spill.bytes() as u64);
                    return Ok(false);
                }
                Err(None) => return Err(IngestError::Disconnected("pipeline gone".into())),
            }
        }
        // Everything deferred has drained. If the hand-off queue is also
        // below its low-water mark (half capacity), the congestion episode
        // is over: re-arm the elastic signal so the *next* episode can
        // request scale-out again — without this a feed could only ever
        // signal once in its lifetime. The low-water check keeps a
        // still-saturated queue (one slot freeing momentarily) from
        // flapping signal → drain-one-frame → re-arm → signal.
        if self.elastic_signalled && self.queue_depth() * 2 <= self.capacity {
            self.elastic_signalled = false;
        }
        Ok(true)
    }

    /// Frames currently in the hand-off queue (the congestion sensor).
    fn queue_depth(&self) -> usize {
        self.q_tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Offer one frame to the pipeline, applying the ingestion policy to any
    /// excess. Never blocks (except under Throttle, which paces the kept
    /// fraction).
    pub fn offer(&mut self, frame: DataFrame) -> IngestResult<()> {
        self.check_downstream()?;
        let all_clear = self.drain_deferred()?;
        self.metrics
            .handoff_queue_frames
            .set(self.queue_depth() as u64);
        if all_clear {
            match self.try_send(frame) {
                Ok(()) => return Ok(()),
                Err(Some(f)) => return self.handle_excess(f),
                Err(None) => return Err(IngestError::Disconnected("pipeline gone".into())),
            }
        }
        // deferred data still pending: arriving frame is excess by definition
        self.handle_excess(frame)
    }

    fn handle_excess(&mut self, frame: DataFrame) -> IngestResult<()> {
        match self.policy.primary_excess_strategy() {
            ExcessStrategy::Buffer => self.buffer_excess(frame),
            ExcessStrategy::Spill => self.spill_excess(frame),
            ExcessStrategy::Discard => {
                self.metrics.records_discarded.add(frame.len() as u64);
                Ok(())
            }
            ExcessStrategy::Throttle => self.throttle_excess(frame),
            ExcessStrategy::Elastic => {
                if !self.elastic_signalled {
                    self.elastic_signalled = true;
                    self.metrics.elastic_scaleouts.add(1);
                    if let Some(tx) = &self.elastic_tx {
                        let _ = tx.send(ElasticRequest {
                            connection_key: self.connection_key.clone(),
                        });
                    }
                }
                // buffer while the CFM restructures the pipeline
                self.buffer_excess(frame)
            }
        }
    }

    /// Allow a later congestion episode to signal scale-out again.
    pub fn reset_elastic_signal(&mut self) {
        self.elastic_signalled = false;
    }

    fn buffer_excess(&mut self, frame: DataFrame) -> IngestResult<()> {
        let sz = frame.size_bytes();
        if self.backlog_bytes + sz > self.policy.memory_budget_bytes {
            return Err(IngestError::FeedTerminated {
                feed: self.feed,
                reason: format!(
                    "policy {}: in-memory excess buffer exceeded {} bytes",
                    self.policy.name, self.policy.memory_budget_bytes
                ),
            });
        }
        self.backlog_bytes += sz;
        self.backlog.push_back(frame);
        self.metrics.buffer_bytes.set(self.backlog_bytes as u64);
        Ok(())
    }

    fn spill_excess(&mut self, frame: DataFrame) -> IngestResult<()> {
        if let Some(max) = self.policy.max_spill_bytes {
            if self.spill.bytes() + frame.size_bytes() > max {
                // spill exhausted → overflow strategy (Listing 4.6)
                return match self.policy.overflow_strategy() {
                    ExcessStrategy::Throttle => self.throttle_excess(frame),
                    _ => {
                        self.metrics.records_discarded.add(frame.len() as u64);
                        Ok(())
                    }
                };
            }
        }
        self.metrics.records_spilled.add(frame.len() as u64);
        self.spill.push(&frame);
        self.metrics.spill_bytes.set(self.spill.bytes() as u64);
        Ok(())
    }

    fn throttle_excess(&mut self, frame: DataFrame) -> IngestResult<()> {
        let keep = self.policy.throttle_keep_fraction;
        let mut kept = Vec::new();
        let mut dropped = 0u64;
        for r in frame.into_records() {
            if self.rng.gen::<f64>() < keep {
                kept.push(r);
            } else {
                dropped += 1;
            }
        }
        self.metrics.records_throttled.add(dropped);
        if kept.is_empty() {
            return Ok(());
        }
        let frame = DataFrame::from_records(kept);
        // FIFO: older deferred data must reach the pipeline before the kept
        // fraction, so while anything is spilled or buffered the frame joins
        // the back of that structure instead of jumping the queue.
        if !self.spill.is_empty() {
            let n = frame.len() as u64;
            self.metrics.records_spilled.add(n);
            self.spill.push(&frame);
            self.metrics.spill_bytes.set(self.spill.bytes() as u64);
            return Ok(());
        }
        if !self.backlog.is_empty() {
            return self.buffer_excess(frame);
        }
        // nothing deferred: pace the kept fraction through with a blocking
        // send — throttling "regulates the rate of inflow"
        match self.q_tx.as_ref().map(|tx| tx.send(frame)) {
            Some(Ok(())) => Ok(()),
            _ => Err(IngestError::Disconnected("pipeline gone".into())),
        }
    }

    /// Records currently deferred (backlog + spill) — used for zombie state.
    pub fn take_deferred(&mut self) -> Vec<DataFrame> {
        let mut out: Vec<DataFrame> = self.backlog.drain(..).collect();
        self.backlog_bytes = 0;
        while let Some(f) = self.spill.pop() {
            out.push(f);
        }
        out
    }

    /// Pre-load deferred frames (adopting zombie state). The memory budget
    /// applies here too: frames beyond `memory_budget_bytes` fall through to
    /// the policy's excess strategy (spill/discard/terminate) rather than
    /// silently over-committing the backlog. Order is preserved — overflow
    /// lands *behind* the in-budget adopted frames (backlog drains before
    /// spill).
    pub fn adopt_deferred(&mut self, frames: Vec<DataFrame>) -> IngestResult<()> {
        self.metrics.zombie_frames_adopted.add(frames.len() as u64);
        for f in frames {
            let sz = f.size_bytes();
            if self.backlog_bytes + sz > self.policy.memory_budget_bytes {
                self.handle_excess(f)?;
                continue;
            }
            self.backlog_bytes += sz;
            self.backlog.push_back(f);
        }
        self.metrics.buffer_bytes.set(self.backlog_bytes as u64);
        Ok(())
    }

    /// Flush everything (blocking) and close the downstream gracefully.
    pub fn finish(mut self) -> IngestResult<()> {
        self.check_downstream()?;
        // blocking-drain the memory backlog, then the spill file (counting
        // the deferred records as re-processed)
        let backlog: Vec<DataFrame> = self.backlog.drain(..).collect();
        self.backlog_bytes = 0;
        if let Some(tx) = self.q_tx.as_ref() {
            for f in backlog {
                tx.send(f)
                    .map_err(|_| IngestError::Disconnected("pipeline gone".into()))?;
            }
            while let Some(f) = self.spill.pop() {
                let n = f.len() as u64;
                tx.send(f)
                    .map_err(|_| IngestError::Disconnected("pipeline gone".into()))?;
                self.metrics.records_despilled.add(n);
            }
            self.metrics.buffer_bytes.set(0);
            self.metrics.spill_bytes.set(0);
        }
        drop(self.q_tx.take());
        match self.pusher.take() {
            Some(p) => p
                .join()
                .unwrap_or_else(|_| Err(IngestError::Plan("flow pusher panicked".into()))),
            None => Ok(()),
        }
    }

    /// Abandon the flow (pipeline failure); deferred frames are returned to
    /// the caller for zombie parking. The pusher thread is detached — it
    /// ends on its own once its queue disconnects or its downstream errors
    /// (joining here could deadlock against a wedged downstream).
    pub fn fail(mut self) -> Vec<DataFrame> {
        let deferred = self.take_deferred();
        drop(self.q_tx.take());
        self.pusher.take(); // detach
        deferred
    }
}

impl Drop for FlowController {
    fn drop(&mut self) {
        drop(self.q_tx.take());
        // detach the pusher: it exits when the queue disconnects
        self.pusher.take();
    }
}

impl std::fmt::Debug for FlowController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlowController(policy={}, backlog={}B, spill={}B)",
            self.policy.name,
            self.backlog_bytes,
            self.spill.bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_common::sync::Mutex as PMutex;
    use asterix_common::SimClock;

    fn frame(ids: std::ops::Range<u64>) -> DataFrame {
        DataFrame::from_records(
            ids.map(|i| Record::tracked(RecordId(i), 0, "payload-bytes"))
                .collect(),
        )
    }

    /// A downstream writer whose consumption is gated by a latch and can be
    /// slowed per frame.
    #[derive(Clone, Default)]
    struct GatedSink {
        accepted: Arc<PMutex<Vec<DataFrame>>>,
        gate: Arc<PMutex<bool>>, // true = accept, false = block
        closed: Arc<PMutex<bool>>,
        delay_ms: Arc<PMutex<u64>>,
    }

    impl GatedSink {
        fn open_gate(&self) {
            *self.gate.lock() = true;
        }
        fn close_gate(&self) {
            *self.gate.lock() = false;
        }
        fn set_delay(&self, ms: u64) {
            *self.delay_ms.lock() = ms;
        }
        fn records(&self) -> usize {
            self.accepted.lock().iter().map(|f| f.len()).sum()
        }
    }

    impl FrameWriter for GatedSink {
        fn open(&mut self) -> IngestResult<()> {
            Ok(())
        }
        fn next_frame(&mut self, f: DataFrame) -> IngestResult<()> {
            while !*self.gate.lock() {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let d = *self.delay_ms.lock();
            if d > 0 {
                std::thread::sleep(std::time::Duration::from_millis(d));
            }
            self.accepted.lock().push(f);
            Ok(())
        }
        fn close(&mut self) -> IngestResult<()> {
            *self.closed.lock() = true;
            Ok(())
        }
        fn fail(&mut self) {}
    }

    fn metrics() -> Arc<FeedMetrics> {
        FeedMetrics::with_default_bucket(SimClock::fast())
    }

    fn controller(policy: IngestionPolicy, sink: &GatedSink) -> FlowController {
        FlowController::new(
            policy,
            metrics(),
            Box::new(sink.clone()),
            2, // tiny queue: congestion after 2 frames
            FeedId(7),
            "conn-test",
            None,
        )
    }

    fn congest(fc: &mut FlowController, frames: usize) -> IngestResult<()> {
        for i in 0..frames {
            fc.offer(frame(i as u64 * 10..i as u64 * 10 + 10))?;
        }
        Ok(())
    }

    #[test]
    fn open_gate_flows_everything() {
        let sink = GatedSink::default();
        sink.open_gate();
        let m;
        {
            let mut fc = controller(IngestionPolicy::basic(), &sink);
            m = Arc::clone(&fc.metrics);
            congest(&mut fc, 10).unwrap();
            fc.finish().unwrap();
        }
        assert_eq!(sink.records(), 100);
        assert!(*sink.closed.lock());
        assert_eq!(m.records_discarded.get(), 0);
    }

    #[test]
    fn basic_buffers_excess_then_terminates_on_budget() {
        let sink = GatedSink::default(); // gate closed: full congestion
        let mut policy = IngestionPolicy::basic();
        policy.memory_budget_bytes = 2000;
        let mut fc = controller(policy, &sink);
        // first few land in the queue, then the backlog, then budget blows
        let err = congest(&mut fc, 100).unwrap_err();
        assert!(matches!(err, IngestError::FeedTerminated { .. }), "{err}");
    }

    #[test]
    fn basic_backlog_drains_when_congestion_clears() {
        let sink = GatedSink::default();
        let mut fc = controller(IngestionPolicy::basic(), &sink);
        congest(&mut fc, 10).unwrap(); // queue(2) + backlog(8)
        sink.open_gate();
        fc.finish().unwrap();
        assert_eq!(sink.records(), 100, "nothing lost under Basic");
    }

    #[test]
    fn discard_drops_excess_and_resumes() {
        let sink = GatedSink::default();
        let m;
        {
            let mut fc = controller(IngestionPolicy::discard(), &sink);
            m = Arc::clone(&fc.metrics);
            congest(&mut fc, 10).unwrap();
            sink.open_gate();
            fc.finish().unwrap();
        }
        let discarded = m.records_discarded.get();
        assert!(discarded > 0, "expected drops");
        assert_eq!(sink.records() as u64 + discarded, 100);
    }

    #[test]
    fn spill_defers_and_despills() {
        let sink = GatedSink::default();
        let m;
        {
            let mut fc = controller(IngestionPolicy::spill(), &sink);
            m = Arc::clone(&fc.metrics);
            congest(&mut fc, 10).unwrap();
            assert!(m.records_spilled.get() > 0);
            assert!(m.spill_bytes.get() > 0);
            sink.open_gate();
            fc.finish().unwrap();
        }
        assert_eq!(sink.records(), 100, "spill loses nothing");
        assert_eq!(m.records_despilled.get(), m.records_spilled.get());
    }

    #[test]
    fn spill_overflow_escalates_to_discard() {
        let sink = GatedSink::default();
        let mut policy = IngestionPolicy::spill();
        policy.max_spill_bytes = Some(2000);
        let m;
        {
            let mut fc = controller(policy, &sink);
            m = Arc::clone(&fc.metrics);
            congest(&mut fc, 50).unwrap();
            sink.open_gate();
            fc.finish().unwrap();
        }
        assert!(m.records_discarded.get() > 0);
        assert!(m.records_spilled.get() > 0);
    }

    #[test]
    fn spill_then_throttle_custom_policy() {
        let sink = GatedSink::default();
        let mut params = std::collections::BTreeMap::new();
        params.insert("max.spill.size.on.disk".into(), "2000".into());
        params.insert("excess.records.throttle".into(), "true".into());
        let policy = IngestionPolicy::spill()
            .extend("Spill_then_Throttle", &params)
            .unwrap();
        let m;
        {
            let mut fc = controller(policy, &sink);
            m = Arc::clone(&fc.metrics);
            // open the gate from another thread shortly, since throttle
            // paces with blocking sends
            let s2 = sink.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                s2.open_gate();
            });
            congest(&mut fc, 50).unwrap();
            fc.finish().unwrap();
        }
        assert!(m.records_spilled.get() > 0, "spill first");
        assert!(m.records_throttled.get() > 0, "then throttle");
    }

    #[test]
    fn throttle_samples_uniformly() {
        // a slow-but-open sink keeps the pipeline congested throughout
        let sink = GatedSink::default();
        sink.open_gate();
        sink.set_delay(2);
        let m;
        {
            let mut fc = controller(IngestionPolicy::throttle(), &sink);
            m = Arc::clone(&fc.metrics);
            congest(&mut fc, 100).unwrap();
            sink.set_delay(0);
            fc.finish().unwrap();
        }
        let dropped = m.records_throttled.get();
        assert!(dropped > 0);
        assert_eq!(sink.records() as u64 + dropped, 1000);
        // keep fraction is 0.5: roughly half of the excess records dropped
        let ratio = dropped as f64 / 1000.0;
        assert!(ratio > 0.2 && ratio < 0.8, "drop ratio {ratio}");
    }

    #[test]
    fn elastic_signals_once_and_buffers() {
        let sink = GatedSink::default();
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut fc = FlowController::new(
            IngestionPolicy::elastic(),
            metrics(),
            Box::new(sink.clone()),
            2,
            FeedId(7),
            "conn42",
            Some(tx),
        );
        congest(&mut fc, 10).unwrap();
        let req = rx.try_recv().unwrap();
        assert_eq!(req.connection_key, "conn42");
        assert!(rx.try_recv().is_err(), "signalled exactly once");
        fc.reset_elastic_signal();
        congest(&mut fc, 5).unwrap();
        assert!(rx.try_recv().is_ok(), "re-signals after reset");
        sink.open_gate();
        fc.finish().unwrap();
        assert_eq!(sink.records(), 150, "elastic buffered everything");
    }

    #[test]
    fn elastic_rearms_after_congestion_clears() {
        let sink = GatedSink::default();
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut fc = FlowController::new(
            IngestionPolicy::elastic(),
            metrics(),
            Box::new(sink.clone()),
            2,
            FeedId(7),
            "conn43",
            Some(tx),
        );
        // episode 1: downstream stalled, excess signals scale-out once
        congest(&mut fc, 10).unwrap();
        assert!(rx.try_recv().is_ok(), "first episode signals");
        assert!(rx.try_recv().is_err(), "exactly once per episode");
        // congestion clears: downstream unblocks and the backlog drains
        sink.open_gate();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let drained = fc.drain_deferred().unwrap();
            if drained && sink.records() == 100 {
                break; // queue empty (all delivered) and no deferred left
            }
            assert!(std::time::Instant::now() < deadline, "drain stalled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // the queue is below low-water: the signal re-armed on its own
        fc.drain_deferred().unwrap();
        // episode 2: downstream stalls again — no manual reset needed
        sink.close_gate();
        congest(&mut fc, 10).unwrap();
        assert!(
            rx.try_recv().is_ok(),
            "re-armed after congestion cleared; second episode signals"
        );
        sink.open_gate();
        fc.finish().unwrap();
        assert_eq!(sink.records(), 200, "elastic buffered everything");
    }

    #[test]
    fn fail_returns_deferred_frames_for_zombie_parking() {
        let sink = GatedSink::default();
        let mut fc = controller(IngestionPolicy::basic(), &sink);
        congest(&mut fc, 10).unwrap();
        let deferred = fc.fail();
        let total: usize = deferred.iter().map(|f| f.len()).sum();
        assert!(total >= 70, "most frames parked, got {total}");
    }

    #[test]
    fn adopt_deferred_replays_zombie_state() {
        let sink = GatedSink::default();
        sink.open_gate();
        let mut fc = controller(IngestionPolicy::basic(), &sink);
        fc.adopt_deferred(vec![frame(0..10), frame(10..20)])
            .unwrap();
        fc.offer(frame(20..30)).unwrap();
        fc.finish().unwrap();
        assert_eq!(sink.records(), 30);
        // order preserved: adopted state first
        let first = sink.accepted.lock()[0].records()[0].id;
        assert_eq!(first, RecordId(0));
    }

    #[test]
    fn throttle_defers_kept_records_behind_older_data() {
        // regression: kept records used to be blocking-sent straight into
        // the hand-off queue, overtaking adopted/buffered frames and
        // breaking the FIFO that adopt_deferred relies on
        let sink = GatedSink::default();
        sink.open_gate();
        sink.set_delay(3);
        let mut fc = controller(IngestionPolicy::throttle(), &sink);
        fc.adopt_deferred(vec![
            frame(0..10),
            frame(10..20),
            frame(20..30),
            frame(30..40),
        ])
        .unwrap();
        for i in 4..12 {
            fc.offer(frame(i * 10..i * 10 + 10)).unwrap();
        }
        sink.set_delay(0);
        fc.finish().unwrap();
        let mut last: Option<RecordId> = None;
        for f in sink.accepted.lock().iter() {
            for r in f.records() {
                if let Some(prev) = last {
                    assert!(
                        r.id > prev,
                        "throttled records overtook older data: {} after {}",
                        r.id,
                        prev
                    );
                }
                last = Some(r.id);
            }
        }
        assert!(last.is_some(), "nothing delivered");
    }

    #[test]
    fn budget_blowout_reports_real_feed_id() {
        // regression: the FeedTerminated error used to hardcode FeedId(0)
        let sink = GatedSink::default(); // gate closed: full congestion
        let mut policy = IngestionPolicy::basic();
        policy.memory_budget_bytes = 2000;
        let mut fc = controller(policy, &sink);
        let err = congest(&mut fc, 100).unwrap_err();
        match err {
            IngestError::FeedTerminated { feed, .. } => {
                assert_eq!(feed, FeedId(7), "error must name the real feed")
            }
            other => panic!("expected FeedTerminated, got {other}"),
        }
    }

    #[test]
    fn failed_despill_requeues_without_reencoding() {
        // regression: a failed de-spill used to rebuild the whole SpillFile
        // by popping and re-serializing every remaining frame (O(spill) per
        // drain attempt); the encoded segment is now reused as-is
        let sink = GatedSink::default(); // gate closed
        let mut fc = controller(IngestionPolicy::spill(), &sink);
        congest(&mut fc, 10).unwrap(); // queue(2) + blocked pusher(≤1) + spill
        let encodes_after_spill = fc.spill.encode_count();
        assert!(
            (7..=8).contains(&encodes_after_spill),
            "each excess frame encoded once, got {encodes_after_spill}"
        );
        for _ in 0..5 {
            // queue is full: every drain pops the head segment, fails to
            // send it, and must put it back without touching the encoder
            assert!(!fc.drain_deferred().unwrap());
        }
        assert_eq!(
            fc.spill.encode_count(),
            encodes_after_spill,
            "failed de-spills must not re-encode surviving segments"
        );
        sink.open_gate();
        fc.finish().unwrap();
        assert_eq!(sink.records(), 100, "re-queues lost nothing");
    }

    #[test]
    fn adopted_overflow_spills_under_spill_policy() {
        let sink = GatedSink::default();
        let mut policy = IngestionPolicy::spill();
        // budget admits exactly one adopted frame; the rest must spill
        policy.memory_budget_bytes = frame(0..10).size_bytes() + 1;
        let m;
        {
            let mut fc = controller(policy, &sink);
            m = Arc::clone(&fc.metrics);
            fc.adopt_deferred(vec![frame(0..10), frame(10..20), frame(20..30)])
                .unwrap();
            assert!(
                m.records_spilled.get() >= 20,
                "overflow beyond the budget must hit the excess strategy"
            );
            sink.open_gate();
            fc.finish().unwrap();
        }
        assert_eq!(sink.records(), 30, "spilled adoptions lose nothing");
        assert_eq!(m.zombie_frames_adopted.get(), 3);
        // order preserved: in-budget backlog first, spilled overflow after
        let first = sink.accepted.lock()[0].records()[0].id;
        assert_eq!(first, RecordId(0));
    }

    #[test]
    fn adopted_overflow_terminates_under_basic_policy() {
        let sink = GatedSink::default();
        let mut policy = IngestionPolicy::basic();
        policy.memory_budget_bytes = frame(0..10).size_bytes() + 1;
        let mut fc = controller(policy, &sink);
        let err = fc
            .adopt_deferred(vec![frame(0..10), frame(10..20)])
            .unwrap_err();
        assert!(matches!(err, IngestError::FeedTerminated { .. }), "{err}");
    }

    #[test]
    fn adopted_overflow_drops_under_discard_policy() {
        let sink = GatedSink::default();
        let mut policy = IngestionPolicy::discard();
        policy.memory_budget_bytes = frame(0..10).size_bytes() + 1;
        let m;
        {
            let mut fc = controller(policy, &sink);
            m = Arc::clone(&fc.metrics);
            fc.adopt_deferred(vec![frame(0..10), frame(10..20), frame(20..30)])
                .unwrap();
            sink.open_gate();
            fc.finish().unwrap();
        }
        assert_eq!(m.records_discarded.get(), 20);
        assert_eq!(sink.records(), 10, "in-budget frame survives");
    }

    #[test]
    fn spill_file_roundtrip() {
        let mut sf = SpillFile::default();
        assert!(sf.is_empty());
        let f1 = frame(0..5);
        let f2 = frame(5..7);
        sf.push(&f1);
        sf.push(&f2);
        assert!(sf.bytes() > 0);
        assert_eq!(sf.pop().unwrap(), f1);
        assert_eq!(sf.pop().unwrap(), f2);
        assert!(sf.pop().is_none());
        assert_eq!(sf.bytes(), 0);
    }

    #[test]
    fn spill_preserves_generation_stamps() {
        let mut sf = SpillFile::default();
        let stamped = Record::tracked(RecordId(1), 0, "{\"id\":1}").stamped(SimInstant(42));
        let plain = Record::tracked(RecordId(2), 0, "{\"id\":2}");
        sf.push(&DataFrame::from_records(vec![stamped, plain]));
        let back = sf.pop().unwrap();
        assert_eq!(back.records()[0].gen_at, Some(SimInstant(42)));
        assert_eq!(back.records()[1].gen_at, None);
    }
}
