#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Data feeds for AsterixDB — the paper's primary contribution.
//!
//! A *data feed* is "a flow of data from an external source into persistent
//! (indexed) storage inside a BDMS" (Ch. 1). This crate implements the
//! complete feed machinery of Chapters 4–7:
//!
//! * [`adaptor`] — feed adaptors (Ch. 4.1): pluggable connectors to external
//!   sources, with built-ins for TweetGen, socket-style channels and files;
//! * [`udf`] — the pre-processing UDF framework (Ch. 4.2): transparent
//!   AQL-style functions and black-box external ("Java") functions;
//! * [`policy`] — ingestion policies (Ch. 4.5, Table 4.1/4.2): Basic, Spill,
//!   Discard, Throttle, Elastic, plus custom policies built by extension;
//! * [`joint`] — feed joints (§5.4): the routing points that let one flow of
//!   data feed many pipelines, with *shared* (data-bucket) and
//!   *short-circuited* modes, guaranteed delivery and congestion isolation;
//! * [`manager`] — the per-node Feed Manager (§5.3.1) and its joint search
//!   API;
//! * [`flow`] — the congestion controller (Ch. 7): where excess records are
//!   buffered, spilled, discarded, throttled or escalated to elastic
//!   scaling;
//! * [`ops`] — the pipeline operators: FeedCollect, FeedIntake, Assign and
//!   the store operator, each wrapped in the MetaFeed sandbox (§6.1) that
//!   survives soft failures by frame slicing;
//! * [`ack`] — at-least-once semantics (§5.6): tracking ids, grouped acks
//!   from the store stage, timeout-based replay;
//! * [`catalog`] — the feeds metadata (§5.1): feed definitions, adaptor
//!   factories, functions, policies and datasets;
//! * [`plan`] — declarative ingestion plans: the typed [`IngestPlan`] IR
//!   (source → UDF stages → predicate routing → N sinks, each with its own
//!   dataset, policy and durability knobs) and the fluent
//!   [`IngestPlanBuilder`];
//! * [`builder`] — fluent [`FeedBuilder`] construction of feed definitions
//!   (now a thin single-sink shim over the plan builder), validated before
//!   they reach the catalog;
//! * [`controller`] — the Central Feed Manager: connect/disconnect
//!   lifecycle, cascade-network construction, the hard-failure protocol
//!   (§6.2) and elastic restructuring (§7.3.5);
//! * [`metrics`] — per-connection counters matching Table 7.1.
//!
//! ## Job granularity (deviation from the paper, documented)
//!
//! The paper builds one head job and one tail job (intake + compute + store)
//! per connection, and partially dismantles tail jobs on disconnect. Here
//! every *feed joint* is a durable rendezvous point between jobs: the head
//! (collect) job ends in a joint; each feed with a UDF runs a *compute job*
//! (intake → assign → joint); each connection runs a *store job* (intake →
//! store). Disconnecting a feed kills only its store job, which gives
//! exactly the paper's partial-dismantling behaviour (Fig 5.10) with
//! whole-job granularity. Joint subscriptions survive pipeline failures, so
//! a rebuilt pipeline resumes from its subscription queue — the paper's
//! "buffer mode" during recovery (Fig 6.3).

pub mod ack;
pub mod adaptor;
pub mod builder;
pub mod catalog;
pub mod controller;
pub mod flow;
pub mod governor;
pub mod joint;
pub mod manager;
pub mod metrics;
pub mod ops;
pub mod plan;
pub mod policy;
pub mod udf;

pub use adaptor::{AdaptorConfig, AdaptorFactory, FeedAdaptor};
pub use builder::FeedBuilder;
pub use catalog::{FeedCatalog, FeedDef, FeedKind};
pub use controller::{ConnectionId, FeedController};
pub use joint::FeedJoint;
pub use manager::FeedManager;
pub use metrics::FeedMetrics;
pub use plan::{
    CmpOp, IngestPlan, IngestPlanBuilder, PlanError, PlanResult, PlanSource, RoutePredicate,
    RoutingMode, SinkSpec,
};
pub use policy::{IngestionPolicy, PolicyParam};
pub use udf::{Udf, UdfKind};
