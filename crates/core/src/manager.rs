//! The per-node Feed Manager (§5.3.1, §5.4).
//!
//! "Each Node Controller has an associated Feed Manager, a data structure
//! that holds all runtime metadata about the active components of a data
//! ingestion pipeline that are hosted by the NC. This metadata includes the
//! set of operator instances and the available feed joints." Subscribable
//! operator instances register their joints under a symbolic id
//! (`<feed>` or `<feed>:f1:...:fN`), discoverable through the *search API*
//! by co-located operator instances.
//!
//! The Feed Manager also holds *zombie state* (§6.2.2): when an operator
//! instance transitions to a zombie during the fault-tolerance protocol, its
//! unprocessed input is parked here for the replacement instance (scheduled
//! at the same node) to adopt.

use crate::joint::FeedJoint;
use asterix_common::sync::Mutex;
use asterix_common::DataFrame;
use asterix_hyracks::cluster::NodeHandle;
use std::collections::HashMap;
use std::sync::Arc;

/// Node-local feed runtime metadata.
#[derive(Default)]
pub struct FeedManager {
    joints: Mutex<HashMap<String, Arc<FeedJoint>>>,
    zombies: Mutex<HashMap<String, Vec<DataFrame>>>,
}

impl FeedManager {
    /// Fresh manager.
    pub fn new() -> Arc<FeedManager> {
        Arc::new(FeedManager::default())
    }

    /// The Feed Manager hosted by `node`, created on first use.
    pub fn on(node: &NodeHandle) -> Arc<FeedManager> {
        node.services().get_or_insert_with(FeedManager::new)
    }

    /// Register (or fetch) the joint with symbolic id `id`. A producing
    /// operator that is rescheduled onto this node after a failure re-binds
    /// to the same joint and thereby to its surviving subscriptions.
    pub fn register_joint(&self, id: &str) -> Arc<FeedJoint> {
        let mut joints = self.joints.lock();
        if let Some(existing) = joints.get(id) {
            if !existing.is_retired() {
                return Arc::clone(existing);
            }
        }
        let fresh = FeedJoint::new(id);
        joints.insert(id.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// The §5.3.1 search API: find a co-located joint by id.
    pub fn search_joint(&self, id: &str) -> Option<Arc<FeedJoint>> {
        self.joints
            .lock()
            .get(id)
            .filter(|j| !j.is_retired())
            .cloned()
    }

    /// Retire and drop the joint with id `id`.
    pub fn retire_joint(&self, id: &str) {
        if let Some(j) = self.joints.lock().remove(id) {
            j.retire();
        }
    }

    /// Ids of all live joints on this node.
    pub fn joint_ids(&self) -> Vec<String> {
        self.joints.lock().keys().cloned().collect()
    }

    /// Park zombie state under `key` (appends to any existing state).
    pub fn save_zombie_state(&self, key: &str, frames: Vec<DataFrame>) {
        if frames.is_empty() {
            return;
        }
        self.zombies
            .lock()
            .entry(key.to_string())
            .or_default()
            .extend(frames);
    }

    /// Adopt (take) the zombie state under `key`.
    pub fn take_zombie_state(&self, key: &str) -> Vec<DataFrame> {
        self.zombies.lock().remove(key).unwrap_or_default()
    }

    /// Is there parked state under `key`?
    pub fn has_zombie_state(&self, key: &str) -> bool {
        self.zombies.lock().contains_key(key)
    }
}

impl std::fmt::Debug for FeedManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FeedManager({} joints, {} zombie entries)",
            self.joints.lock().len(),
            self.zombies.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_common::{Record, RecordId};
    use asterix_hyracks::cluster::Cluster;

    fn frame() -> DataFrame {
        DataFrame::from_records(vec![Record::tracked(RecordId(1), 0, "x")])
    }

    #[test]
    fn register_and_search() {
        let fm = FeedManager::new();
        assert!(fm.search_joint("TwitterFeed").is_none());
        let j = fm.register_joint("TwitterFeed");
        let found = fm.search_joint("TwitterFeed").unwrap();
        assert!(Arc::ptr_eq(&j, &found));
        assert_eq!(fm.joint_ids(), vec!["TwitterFeed".to_string()]);
    }

    #[test]
    fn register_is_idempotent_rebind() {
        let fm = FeedManager::new();
        let a = fm.register_joint("F");
        let b = fm.register_joint("F");
        assert!(Arc::ptr_eq(&a, &b), "same joint across rebinds");
    }

    #[test]
    fn retired_joint_is_replaced_on_register() {
        let fm = FeedManager::new();
        let a = fm.register_joint("F");
        a.retire();
        assert!(fm.search_joint("F").is_none(), "retired joints hidden");
        let b = fm.register_joint("F");
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!b.is_retired());
    }

    #[test]
    fn retire_joint_by_id() {
        let fm = FeedManager::new();
        let j = fm.register_joint("F");
        fm.retire_joint("F");
        assert!(j.is_retired());
        assert!(fm.search_joint("F").is_none());
    }

    #[test]
    fn zombie_state_roundtrip() {
        let fm = FeedManager::new();
        assert!(!fm.has_zombie_state("conn1:intake:0"));
        fm.save_zombie_state("conn1:intake:0", vec![frame()]);
        fm.save_zombie_state("conn1:intake:0", vec![frame(), frame()]);
        assert!(fm.has_zombie_state("conn1:intake:0"));
        let adopted = fm.take_zombie_state("conn1:intake:0");
        assert_eq!(adopted.len(), 3);
        assert!(fm.take_zombie_state("conn1:intake:0").is_empty());
    }

    #[test]
    fn empty_zombie_saves_are_ignored() {
        let fm = FeedManager::new();
        fm.save_zombie_state("k", vec![]);
        assert!(!fm.has_zombie_state("k"));
    }

    #[test]
    fn per_node_singleton_via_services() {
        let cluster = Cluster::start_default(2);
        let n0 = cluster.node(asterix_common::NodeId(0)).unwrap();
        let n1 = cluster.node(asterix_common::NodeId(1)).unwrap();
        let a = FeedManager::on(&n0);
        let b = FeedManager::on(&n0);
        let c = FeedManager::on(&n1);
        assert!(Arc::ptr_eq(&a, &b));
        a.register_joint("F");
        assert!(c.search_joint("F").is_none(), "joints are node-local");
        cluster.shutdown();
    }
}
