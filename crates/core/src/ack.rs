//! At-least-once semantics (§5.6).
//!
//! "To provide at least once semantics, each record arriving from the data
//! source is augmented with a tracking id at the intake stage. Subsequent
//! to persisting a record (log record has been written to the local disk),
//! the store operator instance constructs an ack message with the tracking
//! id. Over a fixed-width time-window, the ack messages for all records
//! that were sourced from a given feed adaptor instance are grouped and
//! encoded together as a single message ... A record that has been output
//! by the intake stage is held at its intake node until an ack message for
//! the record is received from the store stage. When an ack is received,
//! the record is dropped and memory is reclaimed. On a timeout, the records
//! without an ack are replayed."

use asterix_common::ids::IdGen;
use asterix_common::sync::Mutex;
use asterix_common::{Record, RecordId, SimClock, SimDuration, SimInstant};
use crossbeam_channel::{Receiver, Sender};
use std::collections::HashMap;

static TRACKING_IDS: IdGen = IdGen::new();

/// A group of acks for records sourced from one intake partition, encoded
/// as one message to reduce network bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckBatch {
    /// The intake partition (≙ feed adaptor instance) the records came from.
    pub source: u32,
    /// Acked tracking ids.
    pub ids: Vec<RecordId>,
}

/// Store-side ack grouping: buffers ids per source over a time window.
pub struct AckSender {
    txs: Vec<Sender<AckBatch>>,
    window: SimDuration,
    clock: SimClock,
    buffered: HashMap<u32, Vec<RecordId>>,
    window_start: SimInstant,
}

impl AckSender {
    /// Sender that flushes grouped acks every `window` to the per-partition
    /// channels in `txs` (index = intake partition).
    pub fn new(txs: Vec<Sender<AckBatch>>, window: SimDuration, clock: SimClock) -> AckSender {
        let window_start = clock.now();
        AckSender {
            txs,
            window,
            clock,
            buffered: HashMap::new(),
            window_start,
        }
    }

    /// Ack one persisted record.
    pub fn ack(&mut self, record: &Record) {
        if record.is_tracked() {
            self.buffered
                .entry(record.adaptor)
                .or_default()
                .push(record.id);
        }
        let now = self.clock.now();
        if now.since(self.window_start) >= self.window {
            self.flush();
            self.window_start = now;
        }
    }

    /// Send all buffered groups now.
    pub fn flush(&mut self) {
        for (source, ids) in self.buffered.drain() {
            if let Some(tx) = self.txs.get(source as usize) {
                let _ = tx.send(AckBatch { source, ids });
            }
        }
    }
}

impl Drop for AckSender {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for AckSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AckSender({} partitions)", self.txs.len())
    }
}

struct Pending {
    record: Record,
    deadline: SimInstant,
    attempts: u32,
}

/// Intake-side tracker: holds copies of in-flight records and replays the
/// unacked ones after a timeout. Replays back off exponentially (×2 per
/// attempt, capped at 32× the base timeout) so a long backlog drain does
/// not snowball into a replay storm.
pub struct AckTracker {
    partition: u32,
    rx: Receiver<AckBatch>,
    timeout: SimDuration,
    clock: SimClock,
    pending: Mutex<HashMap<RecordId, Pending>>,
    replays: Mutex<u64>,
}

impl AckTracker {
    /// Tracker for intake `partition`, consuming acks from `rx`.
    pub fn new(
        partition: u32,
        rx: Receiver<AckBatch>,
        timeout: SimDuration,
        clock: SimClock,
    ) -> AckTracker {
        AckTracker {
            partition,
            rx,
            timeout,
            clock,
            pending: Mutex::new(HashMap::new()),
            replays: Mutex::new(0),
        }
    }

    /// Assign a tracking id (if untracked), stamp the record with this
    /// partition as its source, and hold a copy until acked.
    pub fn track(&self, record: &Record) -> Record {
        let id = if record.is_tracked() {
            record.id
        } else {
            TRACKING_IDS.next()
        };
        let tracked = Record::tracked(id, self.partition, record.payload.clone());
        self.pending.lock().insert(
            id,
            Pending {
                record: tracked.clone(),
                deadline: self.clock.now().plus(self.timeout),
                attempts: 0,
            },
        );
        tracked
    }

    /// Drain the ack channel, dropping acked records.
    pub fn process_acks(&self) {
        let mut pending = self.pending.lock();
        while let Ok(batch) = self.rx.try_recv() {
            for id in batch.ids {
                pending.remove(&id);
            }
        }
    }

    /// Records past their ack deadline. Each is re-armed with an
    /// exponentially backed-off deadline and returned for re-emission.
    pub fn due_replays(&self) -> Vec<Record> {
        let now = self.clock.now();
        let mut pending = self.pending.lock();
        let mut due = Vec::new();
        for p in pending.values_mut() {
            if now >= p.deadline {
                p.attempts = (p.attempts + 1).min(5);
                let backoff = asterix_common::SimDuration(self.timeout.0 << p.attempts);
                p.deadline = now.plus(backoff);
                due.push(p.record.clone());
            }
        }
        if !due.is_empty() {
            *self.replays.lock() += due.len() as u64;
        }
        due
    }

    /// Take every record still awaiting an ack, clearing the tracker. Used
    /// when an intake instance dies hard: the unacked in-flight records are
    /// parked with the zombie state so the successor can re-emit them,
    /// closing the at-least-once window for records that were sitting in
    /// the hand-off queue when the node went down (§6.2.2).
    pub fn drain_pending(&self) -> Vec<Record> {
        let mut pending = self.pending.lock();
        pending.drain().map(|(_, p)| p.record).collect()
    }

    /// Records still awaiting acks.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Total records replayed so far.
    pub fn replay_count(&self) -> u64 {
        *self.replays.lock()
    }
}

impl std::fmt::Debug for AckTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AckTracker(partition={}, pending={})",
            self.partition,
            self.pending_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::with_scale(10.0)
    }

    fn rec(payload: &str) -> Record {
        Record::untracked(0, payload.to_string())
    }

    #[test]
    fn track_assigns_unique_ids_and_stamps_partition() {
        let (_tx, rx) = crossbeam_channel::unbounded();
        let t = AckTracker::new(3, rx, SimDuration::from_secs(1), clock());
        let a = t.track(&rec("a"));
        let b = t.track(&rec("b"));
        assert!(a.is_tracked());
        assert_ne!(a.id, b.id);
        assert_eq!(a.adaptor, 3);
        assert_eq!(t.pending_count(), 2);
    }

    #[test]
    fn acks_release_pending_records() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let t = AckTracker::new(0, rx, SimDuration::from_secs(1), clock());
        let a = t.track(&rec("a"));
        let b = t.track(&rec("b"));
        tx.send(AckBatch {
            source: 0,
            ids: vec![a.id],
        })
        .unwrap();
        t.process_acks();
        assert_eq!(t.pending_count(), 1);
        tx.send(AckBatch {
            source: 0,
            ids: vec![b.id],
        })
        .unwrap();
        t.process_acks();
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn unacked_records_replay_after_timeout() {
        let c = clock();
        let (_tx, rx) = crossbeam_channel::unbounded();
        let t = AckTracker::new(0, rx, SimDuration::from_millis(500), c.clone());
        let a = t.track(&rec("a"));
        assert!(t.due_replays().is_empty(), "not due yet");
        c.sleep(SimDuration::from_millis(600));
        let due = t.due_replays();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, a.id);
        assert_eq!(t.replay_count(), 1);
        // deadline re-armed with exponential backoff: not due after one more
        // base timeout...
        assert!(t.due_replays().is_empty());
        c.sleep(SimDuration::from_millis(600));
        assert!(t.due_replays().is_empty(), "backoff doubled the deadline");
        // ...but due again after the doubled timeout elapses
        c.sleep(SimDuration::from_millis(600));
        assert_eq!(t.due_replays().len(), 1);
        assert_eq!(t.replay_count(), 2);
    }

    #[test]
    fn drain_pending_takes_unacked_records() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let t = AckTracker::new(0, rx, SimDuration::from_secs(1), clock());
        let a = t.track(&rec("a"));
        let b = t.track(&rec("b"));
        tx.send(AckBatch {
            source: 0,
            ids: vec![a.id],
        })
        .unwrap();
        t.process_acks();
        let drained = t.drain_pending();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, b.id);
        assert_eq!(t.pending_count(), 0);
    }

    #[test]
    fn sender_groups_by_source_and_windows() {
        let c = clock();
        let (tx0, rx0) = crossbeam_channel::unbounded();
        let (tx1, rx1) = crossbeam_channel::unbounded();
        let mut s = AckSender::new(vec![tx0, tx1], SimDuration::from_millis(200), c.clone());
        s.ack(&Record::tracked(RecordId(1), 0, "x"));
        s.ack(&Record::tracked(RecordId(2), 1, "y"));
        s.ack(&Record::tracked(RecordId(3), 0, "z"));
        assert!(rx0.try_recv().is_err(), "window not elapsed");
        c.sleep(SimDuration::from_millis(250));
        s.ack(&Record::tracked(RecordId(4), 0, "w")); // triggers window flush
        let b0 = rx0.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(b0.source, 0);
        assert!(b0.ids.contains(&RecordId(1)) && b0.ids.contains(&RecordId(3)));
        let b1 = rx1.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(b1.ids, vec![RecordId(2)]);
    }

    #[test]
    fn sender_flushes_on_drop() {
        let (tx, rx) = crossbeam_channel::unbounded();
        {
            let mut s = AckSender::new(vec![tx], SimDuration::from_secs(100), clock());
            s.ack(&Record::tracked(RecordId(9), 0, "x"));
        }
        let b = rx.try_recv().unwrap();
        assert_eq!(b.ids, vec![RecordId(9)]);
    }

    #[test]
    fn untracked_records_are_not_acked() {
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut s = AckSender::new(vec![tx], SimDuration::from_millis(1), clock());
        s.ack(&rec("no id"));
        s.flush();
        assert!(rx.try_recv().is_err());
    }
}
