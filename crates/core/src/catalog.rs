//! Feeds metadata (§5.1).
//!
//! "AsterixDB stores Metadata natively as a collection of AsterixDB
//! datasets": the `Feeds` dataset (feed definitions), the
//! `DatasourceAdapter` dataset (adaptor factories, pre-populated with the
//! built-ins), the `Function` dataset (UDFs) and ingestion policies. The
//! [`FeedCatalog`] is that metadata plus the dataset handles the feeds
//! machinery needs to target.

use crate::adaptor::{AdaptorConfig, AdaptorRegistry};
use crate::plan::{IngestPlan, PlanError, PlanResult};
use crate::policy::IngestionPolicy;
use crate::udf::Udf;
use asterix_adm::TypeRegistry;
use asterix_common::sync::RwLock;
use asterix_common::{FeedId, IngestError, IngestResult};
use asterix_storage::Dataset;
use std::collections::HashMap;
use std::sync::Arc;

/// Is the feed sourced externally or derived from another feed?
#[derive(Debug, Clone, PartialEq)]
pub enum FeedKind {
    /// `create feed F using <adaptor>(...)`.
    Primary {
        /// Adaptor alias.
        adaptor: String,
        /// Adaptor configuration parameters.
        config: AdaptorConfig,
    },
    /// `create secondary feed F from feed P`.
    Secondary {
        /// Parent feed name.
        parent: String,
    },
}

/// A feed definition (one record of the `Feeds` metadata dataset).
#[derive(Debug, Clone)]
pub struct FeedDef {
    /// Feed name.
    pub name: String,
    /// Primary or secondary.
    pub kind: FeedKind,
    /// `apply function <udf>` — at most one per feed.
    pub udf: Option<String>,
}

#[derive(Default)]
struct CatalogState {
    feeds: HashMap<String, FeedDef>,
    feed_ids: HashMap<String, FeedId>,
    next_feed_id: u64,
    functions: HashMap<String, Udf>,
    policies: HashMap<String, IngestionPolicy>,
    datasets: HashMap<String, Arc<Dataset>>,
    plans: HashMap<String, IngestPlan>,
}

/// The feeds metadata catalog.
pub struct FeedCatalog {
    adaptors: AdaptorRegistry,
    types: Arc<TypeRegistry>,
    state: RwLock<CatalogState>,
}

impl FeedCatalog {
    /// Catalog pre-populated with built-in adaptors and policies, plus the
    /// given datatype registry.
    pub fn new(types: TypeRegistry) -> Arc<FeedCatalog> {
        let cat = FeedCatalog {
            adaptors: AdaptorRegistry::with_builtins(),
            types: Arc::new(types),
            state: RwLock::new(CatalogState::default()),
        };
        {
            let mut st = cat.state.write();
            for p in [
                IngestionPolicy::basic(),
                IngestionPolicy::spill(),
                IngestionPolicy::discard(),
                IngestionPolicy::throttle(),
                IngestionPolicy::elastic(),
                IngestionPolicy::fault_tolerant(),
            ] {
                st.policies.insert(p.name.clone(), p);
            }
        }
        Arc::new(cat)
    }

    /// The adaptor registry (DatasourceAdapter metadata).
    pub fn adaptors(&self) -> &AdaptorRegistry {
        &self.adaptors
    }

    /// The datatype registry.
    pub fn types(&self) -> &Arc<TypeRegistry> {
        &self.types
    }

    // -- feeds --------------------------------------------------------------

    /// `create feed` / `create secondary feed`. Validates references.
    pub fn create_feed(&self, def: FeedDef) -> IngestResult<()> {
        match &def.kind {
            FeedKind::Primary { adaptor, .. } => {
                self.adaptors.get(adaptor)?;
            }
            FeedKind::Secondary { parent } => {
                if !self.state.read().feeds.contains_key(parent) {
                    return Err(IngestError::Metadata(format!(
                        "parent feed '{parent}' does not exist"
                    )));
                }
            }
        }
        if let Some(udf) = &def.udf {
            if !self.state.read().functions.contains_key(udf) {
                return Err(IngestError::Metadata(format!(
                    "function '{udf}' does not exist"
                )));
            }
        }
        let mut st = self.state.write();
        if st.feeds.contains_key(&def.name) {
            return Err(IngestError::Metadata(format!(
                "feed '{}' already exists",
                def.name
            )));
        }
        // catalog-assigned numeric identity, starting at 1 so FeedId(0) can
        // keep meaning "unknown" in error paths
        st.next_feed_id += 1;
        let id = FeedId(st.next_feed_id);
        st.feed_ids.insert(def.name.clone(), id);
        st.feeds.insert(def.name.clone(), def);
        Ok(())
    }

    /// The catalog-assigned id of a feed.
    pub fn feed_id(&self, name: &str) -> IngestResult<FeedId> {
        self.state
            .read()
            .feed_ids
            .get(name)
            .copied()
            .ok_or_else(|| IngestError::Metadata(format!("unknown feed '{name}'")))
    }

    /// Look up a feed.
    pub fn feed(&self, name: &str) -> IngestResult<FeedDef> {
        self.state
            .read()
            .feeds
            .get(name)
            .cloned()
            .ok_or_else(|| IngestError::Metadata(format!("unknown feed '{name}'")))
    }

    /// `drop feed`.
    pub fn drop_feed(&self, name: &str) -> IngestResult<()> {
        // refuse while children reference it
        let st = self.state.read();
        for f in st.feeds.values() {
            if let FeedKind::Secondary { parent } = &f.kind {
                if parent == name {
                    return Err(IngestError::Metadata(format!(
                        "feed '{name}' has dependent feed '{}'",
                        f.name
                    )));
                }
            }
        }
        drop(st);
        self.state
            .write()
            .feeds
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| IngestError::Metadata(format!("unknown feed '{name}'")))
    }

    /// The ancestry chain root-first: the primary feed at the root, then
    /// each descendant down to (and including) `name`.
    pub fn lineage(&self, name: &str) -> IngestResult<Vec<FeedDef>> {
        let mut chain = vec![self.feed(name)?];
        let mut guard = 0;
        while let FeedKind::Secondary { parent } = &chain.last().unwrap().kind {
            chain.push(self.feed(parent)?);
            guard += 1;
            if guard > 64 {
                return Err(IngestError::Metadata(format!(
                    "feed '{name}' lineage is cyclic"
                )));
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// The symbolic joint id for a feed: `<root>` when the chain applies no
    /// functions, else `<root>:f1:...:fN` (§5.3.1).
    pub fn joint_id_for(&self, name: &str) -> IngestResult<String> {
        let lineage = self.lineage(name)?;
        let root = &lineage[0].name;
        let fns: Vec<&str> = lineage.iter().filter_map(|f| f.udf.as_deref()).collect();
        Ok(if fns.is_empty() {
            root.clone()
        } else {
            format!("{root}:{}", fns.join(":"))
        })
    }

    /// All registered feeds.
    pub fn feed_names(&self) -> Vec<String> {
        self.state.read().feeds.keys().cloned().collect()
    }

    // -- functions ----------------------------------------------------------

    /// `create function` / install an external library function.
    pub fn create_function(&self, udf: Udf) -> IngestResult<()> {
        let mut st = self.state.write();
        if st.functions.contains_key(&udf.name) {
            return Err(IngestError::Metadata(format!(
                "function '{}' already exists",
                udf.name
            )));
        }
        st.functions.insert(udf.name.clone(), udf);
        Ok(())
    }

    /// Look up a function.
    pub fn function(&self, name: &str) -> IngestResult<Udf> {
        self.state
            .read()
            .functions
            .get(name)
            .cloned()
            .ok_or_else(|| IngestError::Metadata(format!("unknown function '{name}'")))
    }

    // -- policies -----------------------------------------------------------

    /// `create ingestion policy <name> from policy <base> (params...)`.
    pub fn create_policy(
        &self,
        name: &str,
        base: &str,
        params: &std::collections::BTreeMap<String, String>,
    ) -> IngestResult<IngestionPolicy> {
        let base_policy = self.policy(base)?;
        let p = base_policy.extend(name, params)?;
        self.state
            .write()
            .policies
            .insert(name.to_string(), p.clone());
        Ok(p)
    }

    /// Look up a policy (built-in or custom).
    pub fn policy(&self, name: &str) -> IngestResult<IngestionPolicy> {
        if let Some(p) = self.state.read().policies.get(name) {
            return Ok(p.clone());
        }
        IngestionPolicy::builtin(name)
            .ok_or_else(|| IngestError::Metadata(format!("unknown policy '{name}'")))
    }

    // -- ingestion plans ----------------------------------------------------

    /// Register a validated ingestion plan (one record of the notional
    /// `IngestionPlans` metadata dataset). The plan's feed chain must
    /// already exist; `IngestPlanBuilder::register` does both.
    pub fn register_plan(&self, plan: IngestPlan) -> PlanResult<()> {
        plan.validate()?;
        let mut st = self.state.write();
        if st.plans.contains_key(&plan.name) {
            return Err(PlanError::Metadata(format!(
                "plan '{}' already exists",
                plan.name
            )));
        }
        st.plans.insert(plan.name.clone(), plan);
        Ok(())
    }

    /// Look up a registered ingestion plan.
    pub fn plan(&self, name: &str) -> PlanResult<IngestPlan> {
        self.state
            .read()
            .plans
            .get(name)
            .cloned()
            .ok_or_else(|| PlanError::Metadata(format!("unknown plan '{name}'")))
    }

    /// Registered plan names.
    pub fn plan_names(&self) -> Vec<String> {
        self.state.read().plans.keys().cloned().collect()
    }

    // -- datasets -----------------------------------------------------------

    /// Register a dataset as a feed target.
    pub fn register_dataset(&self, dataset: Arc<Dataset>) {
        self.state
            .write()
            .datasets
            .insert(dataset.config.name.clone(), dataset);
    }

    /// Look up a dataset.
    pub fn dataset(&self, name: &str) -> IngestResult<Arc<Dataset>> {
        self.state
            .read()
            .datasets
            .get(name)
            .cloned()
            .ok_or_else(|| IngestError::Metadata(format!("unknown dataset '{name}'")))
    }

    /// Registered dataset names.
    pub fn dataset_names(&self) -> Vec<String> {
        self.state.read().datasets.keys().cloned().collect()
    }
}

impl std::fmt::Debug for FeedCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.read();
        write!(
            f,
            "FeedCatalog({} feeds, {} functions, {} policies, {} datasets)",
            st.feeds.len(),
            st.functions.len(),
            st.policies.len(),
            st.datasets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asterix_adm::types::paper_registry;

    fn catalog() -> Arc<FeedCatalog> {
        FeedCatalog::new(paper_registry())
    }

    fn primary(name: &str, udf: Option<&str>) -> FeedDef {
        let mut b = crate::builder::FeedBuilder::new(name)
            .adaptor("TweetGenAdaptor")
            .param("datasource", "x:1");
        if let Some(u) = udf {
            b = b.udf(u);
        }
        b.build().unwrap()
    }

    fn secondary(name: &str, parent: &str, udf: Option<&str>) -> FeedDef {
        let mut b = crate::builder::FeedBuilder::new(name).parent(parent);
        if let Some(u) = udf {
            b = b.udf(u);
        }
        b.build().unwrap()
    }

    #[test]
    fn create_and_lookup_feed() {
        let c = catalog();
        c.create_feed(primary("TwitterFeed", None)).unwrap();
        assert_eq!(c.feed("TwitterFeed").unwrap().name, "TwitterFeed");
        assert!(c.feed("Nope").is_err());
        assert!(c.create_feed(primary("TwitterFeed", None)).is_err(), "dup");
    }

    #[test]
    fn feeds_get_distinct_nonzero_ids() {
        let c = catalog();
        c.create_feed(primary("A", None)).unwrap();
        c.create_feed(primary("B", None)).unwrap();
        let a = c.feed_id("A").unwrap();
        let b = c.feed_id("B").unwrap();
        assert_ne!(a, FeedId(0), "0 is reserved for 'unknown'");
        assert_ne!(a, b);
        assert!(c.feed_id("Nope").is_err());
    }

    #[test]
    fn unknown_adaptor_or_function_rejected() {
        let c = catalog();
        let mut bad = primary("F", None);
        bad.kind = FeedKind::Primary {
            adaptor: "CNNAdaptor".into(),
            config: AdaptorConfig::new(),
        };
        assert!(c.create_feed(bad).is_err());
        assert!(c.create_feed(primary("F", Some("missingFn"))).is_err());
    }

    #[test]
    fn secondary_requires_parent() {
        let c = catalog();
        assert!(c.create_feed(secondary("S", "P", None)).is_err());
        c.create_feed(primary("P", None)).unwrap();
        c.create_feed(secondary("S", "P", None)).unwrap();
    }

    #[test]
    fn lineage_and_joint_ids() {
        let c = catalog();
        c.create_function(Udf::add_hash_tags()).unwrap();
        c.create_function(Udf::sentiment_analysis()).unwrap();
        c.create_feed(primary("TwitterFeed", None)).unwrap();
        c.create_feed(secondary(
            "ProcessedTwitterFeed",
            "TwitterFeed",
            Some("addHashTags"),
        ))
        .unwrap();
        c.create_feed(secondary(
            "SentimentFeed",
            "ProcessedTwitterFeed",
            Some("tweetlib#sentimentAnalysis"),
        ))
        .unwrap();

        let lineage = c.lineage("SentimentFeed").unwrap();
        let names: Vec<&str> = lineage.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["TwitterFeed", "ProcessedTwitterFeed", "SentimentFeed"]
        );
        assert_eq!(c.joint_id_for("TwitterFeed").unwrap(), "TwitterFeed");
        assert_eq!(
            c.joint_id_for("ProcessedTwitterFeed").unwrap(),
            "TwitterFeed:addHashTags"
        );
        assert_eq!(
            c.joint_id_for("SentimentFeed").unwrap(),
            "TwitterFeed:addHashTags:tweetlib#sentimentAnalysis"
        );
    }

    #[test]
    fn drop_feed_refuses_with_children() {
        let c = catalog();
        c.create_feed(primary("P", None)).unwrap();
        c.create_feed(secondary("S", "P", None)).unwrap();
        assert!(c.drop_feed("P").is_err());
        c.drop_feed("S").unwrap();
        c.drop_feed("P").unwrap();
        assert!(c.drop_feed("P").is_err());
    }

    #[test]
    fn policies_builtin_and_custom() {
        let c = catalog();
        assert_eq!(c.policy("Basic").unwrap().name, "Basic");
        assert_eq!(c.policy("Discard").unwrap().name, "Discard");
        let mut params = std::collections::BTreeMap::new();
        params.insert("excess.records.throttle".into(), "true".into());
        let p = c.create_policy("MySpill", "Spill", &params).unwrap();
        assert!(p.excess_records_spill && p.excess_records_throttle);
        assert_eq!(c.policy("MySpill").unwrap().name, "MySpill");
        assert!(c.policy("Unknown").is_err());
        assert!(c.create_policy("X", "Unknown", &params).is_err());
    }

    #[test]
    fn every_builtin_policy_round_trips_through_the_catalog() {
        use crate::policy::IngestionPolicy;
        let c = catalog();
        let builtins = [
            IngestionPolicy::basic(),
            IngestionPolicy::spill(),
            IngestionPolicy::discard(),
            IngestionPolicy::throttle(),
            IngestionPolicy::elastic(),
            IngestionPolicy::fault_tolerant(),
        ];
        for base in builtins {
            // catalog lookup returns the builtin verbatim
            assert_eq!(c.policy(&base.name).unwrap(), base);
            // extend with a param override, register, and look it back up:
            // nothing but the overridden field and the name may change
            let custom_name = format!("{}_tuned", base.name);
            let mut params = std::collections::BTreeMap::new();
            params.insert("max.consecutive.soft.failures".into(), "7".into());
            let created = c.create_policy(&custom_name, &base.name, &params).unwrap();
            let looked_up = c.policy(&custom_name).unwrap();
            assert_eq!(created, looked_up);
            let mut expected = base.clone();
            expected.name = custom_name;
            expected.max_consecutive_soft_failures = 7;
            assert_eq!(looked_up, expected);
            // the base policy itself is untouched by the derivation
            assert_eq!(c.policy(&base.name).unwrap(), base);
        }
    }

    #[test]
    fn plans_register_validate_and_lookup() {
        use crate::plan::{IngestPlanBuilder, RoutePredicate, SinkSpec};
        let c = catalog();
        let plan = IngestPlanBuilder::new("FanOut")
            .adaptor("TweetGenAdaptor")
            .param("datasource", "x:1")
            .sink(SinkSpec::to("US").route(RoutePredicate::eq("country", "US")))
            .sink(SinkSpec::to("Rest"))
            .build()
            .unwrap();
        c.register_plan(plan.clone()).unwrap();
        assert_eq!(c.plan("FanOut").unwrap(), plan);
        assert!(c.register_plan(plan).is_err(), "dup");
        assert!(c.plan("Nope").is_err());
        assert_eq!(c.plan_names(), vec!["FanOut".to_string()]);
        // structurally invalid plans never enter the catalog
        let mut bad = c.plan("FanOut").unwrap();
        bad.name = "Bad".into();
        bad.sinks[1].dataset = "US".into();
        assert!(c.register_plan(bad).is_err());
    }

    #[test]
    fn functions_register_once() {
        let c = catalog();
        c.create_function(Udf::add_hash_tags()).unwrap();
        assert!(c.create_function(Udf::add_hash_tags()).is_err());
        assert_eq!(c.function("addHashTags").unwrap().name, "addHashTags");
    }

    #[test]
    fn datasets_register_and_lookup() {
        use asterix_storage::DatasetConfig;
        let c = catalog();
        let d = Dataset::create(DatasetConfig {
            name: "Tweets".into(),
            datatype: "Tweet".into(),
            primary_key: "id".into(),
            nodegroup: vec![asterix_common::NodeId(0)],
        })
        .unwrap();
        c.register_dataset(Arc::new(d));
        assert!(c.dataset("Tweets").is_ok());
        assert!(c.dataset("Nope").is_err());
        assert_eq!(c.dataset_names(), vec!["Tweets".to_string()]);
    }
}
