//! Property tests over the feed machinery's core invariants:
//!
//! * **Record conservation** — under any policy and congestion pattern,
//!   every offered record is accounted for: delivered + discarded +
//!   throttled (+ still deferred) = offered;
//! * **Guaranteed delivery** — a feed joint delivers every deposited frame
//!   to every subscriber that stays subscribed, in order, under arbitrary
//!   interleavings of subscribe/unsubscribe;
//! * **Policy algebra** — custom-policy derivation never loses or invents
//!   parameter state.

use asterix_common::sync::Mutex;
use asterix_common::{DataFrame, FeedId, Record, RecordId, SimClock, SimDuration};
use asterix_feeds::flow::FlowController;
use asterix_feeds::joint::{FeedJoint, JointRecv};
use asterix_feeds::metrics::FeedMetrics;
use asterix_feeds::policy::IngestionPolicy;
use asterix_hyracks::operator::FrameWriter;
use proptest::prelude::*;
use std::sync::Arc;

fn frame(start: u64, len: usize) -> DataFrame {
    DataFrame::from_records(
        (0..len as u64)
            .map(|i| Record::tracked(RecordId(start + i), 0, "payload"))
            .collect(),
    )
}

/// A sink whose acceptance is scripted: it consumes `budget` frames, then
/// blocks until the budget is raised.
#[derive(Clone)]
struct ScriptedSink {
    accepted: Arc<Mutex<Vec<DataFrame>>>,
    budget: Arc<Mutex<i64>>,
}

impl ScriptedSink {
    fn new() -> Self {
        ScriptedSink {
            accepted: Arc::new(Mutex::new(Vec::new())),
            budget: Arc::new(Mutex::new(0)),
        }
    }
    fn add_budget(&self, n: i64) {
        *self.budget.lock() += n;
    }
    fn records(&self) -> u64 {
        self.accepted.lock().iter().map(|f| f.len() as u64).sum()
    }
}

impl FrameWriter for ScriptedSink {
    fn open(&mut self) -> asterix_common::IngestResult<()> {
        Ok(())
    }
    fn next_frame(&mut self, f: DataFrame) -> asterix_common::IngestResult<()> {
        loop {
            {
                let mut b = self.budget.lock();
                if *b > 0 {
                    *b -= 1;
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        self.accepted.lock().push(f);
        Ok(())
    }
    fn close(&mut self) -> asterix_common::IngestResult<()> {
        Ok(())
    }
    fn fail(&mut self) {}
}

#[derive(Debug, Clone)]
enum Step {
    Offer(u8),  // offer a frame of 1..=32 records
    Budget(u8), // let the sink accept up to n more frames
    Drain,      // opportunistic drain of deferred work
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (1u8..32).prop_map(Step::Offer),
        2 => (1u8..8).prop_map(Step::Budget),
        1 => Just(Step::Drain),
    ]
}

fn policy_strategy() -> impl Strategy<Value = IngestionPolicy> {
    prop_oneof![
        Just(IngestionPolicy::basic()),
        Just(IngestionPolicy::spill()),
        Just(IngestionPolicy::discard()),
        Just(IngestionPolicy::elastic()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// offered = delivered + discarded (+ deferred recovered at finish).
    /// (Throttle is excluded here: its blocking pacing needs a live
    /// consumer; it has its own deterministic test below.)
    #[test]
    fn flow_controller_conserves_records(
        policy in policy_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..60),
    ) {
        let sink = ScriptedSink::new();
        let metrics = FeedMetrics::with_default_bucket(SimClock::fast());
        let mut fc = FlowController::new(
            policy,
            Arc::clone(&metrics),
            Box::new(sink.clone()),
            2,
            FeedId(1),
            "prop",
            None,
        );
        let mut offered = 0u64;
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Offer(n) => {
                    let f = frame(next_id, n as usize);
                    next_id += n as u64;
                    offered += n as u64;
                    match fc.offer(f) {
                        Ok(()) => {}
                        Err(asterix_common::IngestError::FeedTerminated { .. }) => {
                            // Basic with a blown budget: conservation still
                            // holds for everything before the termination
                            let deferred: u64 =
                                fc.take_deferred().iter().map(|f| f.len() as u64).sum();
                            // the terminating frame was not admitted
                            offered -= n as u64;
                            sink.add_budget(1000);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            let delivered = sink.records();
                            let discarded =
                                metrics.records_discarded.get();
                            // queued frames may still be in the hand-off
                            // queue; drop the controller to flush
                            drop(fc);
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            let delivered = sink.records().max(delivered);
                            prop_assert!(
                                delivered + discarded + deferred <= offered,
                                "no duplication: {delivered}+{discarded}+{deferred} vs {offered}"
                            );
                            return Ok(());
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                Step::Budget(n) => {
                    sink.add_budget(n as i64);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Step::Drain => {
                    let _ = fc.drain_deferred();
                }
            }
        }
        // open the gate fully and finish: everything deferred flows
        sink.add_budget(1_000_000);
        fc.finish().unwrap();
        let delivered = sink.records();
        let discarded = metrics.records_discarded.get();
        prop_assert_eq!(
            delivered + discarded,
            offered,
            "delivered {} + discarded {} != offered {}",
            delivered,
            discarded,
            offered
        );
    }

    /// Every subscriber of a joint receives exactly the frames deposited
    /// while it was subscribed, in deposit order.
    #[test]
    fn joint_guarantees_ordered_delivery(
        ops in prop::collection::vec(0u8..4, 1..80),
    ) {
        let joint = FeedJoint::new("prop");
        let clock = SimClock::realtime();
        let mut subs: Vec<(u64, asterix_feeds::joint::JointSubscription, Vec<u64>)> =
            Vec::new();
        let mut next_sub = 0u64;
        let mut next_frame_id = 0u64;
        for op in ops {
            match op {
                // subscribe
                0 => {
                    let key = format!("s{next_sub}");
                    subs.push((next_sub, joint.subscribe(key), Vec::new()));
                    next_sub += 1;
                }
                // unsubscribe the oldest
                1 => {
                    if !subs.is_empty() {
                        let (_, sub, expected) = subs.remove(0);
                        // before leaving, verify what it saw
                        let mut got = Vec::new();
                        while let JointRecv::Frame(f) =
                            sub.recv(&clock, SimDuration::from_millis(20))
                        {
                            got.push(f.records()[0].id.raw());
                        }
                        prop_assert_eq!(got, expected);
                        sub.unsubscribe();
                    }
                }
                // deposit a frame
                _ => {
                    let f = frame(next_frame_id, 1);
                    joint.deposit(f).unwrap();
                    for (_, _, expected) in subs.iter_mut() {
                        expected.push(next_frame_id);
                    }
                    next_frame_id += 1;
                }
            }
        }
        // verify the survivors
        for (_, sub, expected) in subs {
            let mut got = Vec::new();
            while let JointRecv::Frame(f) = sub.recv(&clock, SimDuration::from_millis(20)) {
                got.push(f.records()[0].id.raw());
            }
            prop_assert_eq!(got, expected);
        }
    }

    /// Policy extension is lossless: parameters not overridden keep the
    /// base's values; overridden ones take effect; round-tripping a
    /// parameter through set_param is idempotent.
    #[test]
    fn policy_extension_is_sound(
        spill in any::<bool>(),
        discard in any::<bool>(),
        throttle in any::<bool>(),
        elastic in any::<bool>(),
        budget_kb in 1usize..4096,
        fraction in 1u32..100,
    ) {
        let mut params = std::collections::BTreeMap::new();
        params.insert("excess.records.spill".into(), spill.to_string());
        params.insert("excess.records.discard".into(), discard.to_string());
        params.insert("excess.records.throttle".into(), throttle.to_string());
        params.insert("excess.records.elastic".into(), elastic.to_string());
        params.insert("memory.budget.bytes".into(), format!("{budget_kb}KB"));
        params.insert(
            "throttle.keep.fraction".into(),
            format!("{}", fraction as f64 / 100.0),
        );
        let p = IngestionPolicy::basic().extend("Custom", &params).unwrap();
        prop_assert_eq!(p.excess_records_spill, spill);
        prop_assert_eq!(p.excess_records_discard, discard);
        prop_assert_eq!(p.excess_records_throttle, throttle);
        prop_assert_eq!(p.excess_records_elastic, elastic);
        prop_assert_eq!(p.memory_budget_bytes, budget_kb * 1024);
        // untouched parameters keep their Basic defaults
        prop_assert!(p.recover_soft_failure);
        prop_assert!(p.recover_hard_failure);
        prop_assert!(!p.at_least_once);
        // deriving again with no overrides is the identity (modulo name)
        let q = p.extend("Copy", &std::collections::BTreeMap::new()).unwrap();
        prop_assert_eq!(q.primary_excess_strategy(), p.primary_excess_strategy());
        prop_assert_eq!(q.memory_budget_bytes, p.memory_budget_bytes);
    }
}

/// Throttle conservation, deterministic: delivered + throttled = offered.
#[test]
fn throttle_conserves_records() {
    let sink = ScriptedSink::new();
    sink.add_budget(1_000_000);
    let metrics = FeedMetrics::with_default_bucket(SimClock::fast());
    let mut fc = FlowController::new(
        IngestionPolicy::throttle(),
        Arc::clone(&metrics),
        Box::new(sink.clone()),
        1,
        FeedId(1),
        "throttle-prop",
        None,
    );
    let mut offered = 0u64;
    for i in 0..200u64 {
        let f = frame(i * 16, 16);
        offered += 16;
        fc.offer(f).unwrap();
    }
    fc.finish().unwrap();
    let delivered = sink.records();
    let throttled = metrics.records_throttled.get();
    assert_eq!(delivered + throttled, offered);
}
