//! End-to-end tests for multi-sink ingestion plans: one source fanned out
//! through a routing stage to several datasets, each sink with its own
//! ingestion policy. The routing oracle is [`IngestPlan::route_record`]
//! itself, re-applied to the generated records on the test side — the
//! pipeline must agree with the pure IR semantics exactly.

use asterix_adm::parse_value;
use asterix_adm::types::paper_registry;
use asterix_common::{NodeId, SimClock, SimDuration};
use asterix_feeds::adaptor::{bind_socket, unbind_socket};
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ConnectionState, ControllerConfig, FeedController};
use asterix_feeds::plan::{IngestPlanBuilder, RoutePredicate, SinkSpec};
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use asterix_storage::{Dataset, DatasetConfig};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

struct Rig {
    cluster: Cluster,
    catalog: Arc<FeedCatalog>,
    controller: Arc<FeedController>,
}

impl Rig {
    fn start(nodes: usize) -> Rig {
        let clock = SimClock::with_scale(10.0);
        let cluster = Cluster::start(
            nodes,
            clock.clone(),
            ClusterConfig {
                heartbeat_interval: SimDuration::from_secs(5),
                failure_threshold: SimDuration::from_secs(1_000_000),
            },
        );
        let catalog = FeedCatalog::new(paper_registry());
        let controller = FeedController::start(
            cluster.clone(),
            Arc::clone(&catalog),
            ControllerConfig::default(),
        );
        Rig {
            cluster,
            catalog,
            controller,
        }
    }

    fn dataset(&self, name: &str) -> Arc<Dataset> {
        let nodegroup: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
        let d = Arc::new(
            Dataset::create(DatasetConfig {
                name: name.into(),
                datatype: "Tweet".into(),
                primary_key: "id".into(),
                nodegroup,
            })
            .unwrap(),
        );
        self.catalog.register_dataset(Arc::clone(&d));
        d
    }

    fn stop(self) {
        self.controller.shutdown();
        self.cluster.shutdown();
    }
}

#[test]
fn plan_fans_out_to_three_sinks_matching_the_ir_oracle() {
    const RECORDS: u64 = 600;
    let rig = Rig::start(3);
    let us = rig.dataset("UsTweets");
    let popular = rig.dataset("PopularTweets");
    let rest = rig.dataset("RestTweets");

    let tx = bind_socket("fanout:9000", 2048).unwrap();
    let plan = IngestPlanBuilder::new("SplitFeed")
        .adaptor("socket_adaptor")
        .param("sockets", "fanout:9000")
        .sink(
            SinkSpec::to("UsTweets")
                .route(RoutePredicate::eq("country", "US"))
                .policy("Basic"),
        )
        .sink(
            SinkSpec::to("PopularTweets")
                .route(RoutePredicate::gt("user.followers_count", 50_000))
                .policy("Spill"),
        )
        .sink(SinkSpec::to("RestTweets").otherwise().policy("Basic"))
        .register(&rig.catalog)
        .unwrap();
    let ids = rig.controller.connect_plan(&plan).unwrap();
    assert_eq!(ids.len(), 3, "one connection per sink");
    // the plan is queryable from the catalog
    assert_eq!(rig.catalog.plan("SplitFeed").unwrap().sinks.len(), 3);

    let mut factory = tweetgen::TweetFactory::new(7, 42);
    let lines: Vec<String> = (0..RECORDS).map(|_| factory.next_json()).collect();

    // the IR itself is the oracle: partition the stream the same way the
    // routing operator must
    let mut expect = [0u64; 3];
    for line in &lines {
        let v = parse_value(line).unwrap();
        let targets = plan.route_record(&v, None);
        assert_eq!(targets.len(), 1, "FirstMatch + otherwise: exactly one sink");
        expect[targets[0]] += 1;
    }
    assert_eq!(expect.iter().sum::<u64>(), RECORDS);
    assert!(
        expect.iter().all(|&n| n > 0),
        "degenerate split {expect:?}: seed routes nothing to some sink"
    );

    for line in &lines {
        tx.send(line.clone()).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(60), || {
            us.len() as u64 == expect[0]
                && popular.len() as u64 == expect[1]
                && rest.len() as u64 == expect[2]
        }),
        "expected {expect:?}, saw [{}, {}, {}]",
        us.len(),
        popular.len(),
        rest.len()
    );

    // delivery is a partition: no duplicates anywhere, and the sinks'
    // contents are disjoint by primary key
    let mut seen = BTreeSet::new();
    for ds in [&us, &popular, &rest] {
        for rec in ds.scan_all() {
            let id = format!("{:?}", rec.field("id").unwrap());
            assert!(seen.insert(id), "duplicate record across sinks");
        }
    }
    assert_eq!(seen.len() as u64, RECORDS);

    // per-sink metrics families exported through the shared registry
    let snap = rig.controller.registry().snapshot();
    for (i, label) in [
        "SplitFeed:UsTweets",
        "SplitFeed:PopularTweets",
        "SplitFeed:RestTweets",
    ]
    .iter()
    .enumerate()
    {
        assert_eq!(
            snap.counter_for("plan.sink.records_routed", label),
            expect[i],
            "plan.sink.records_routed for {label}"
        );
    }
    assert_eq!(
        snap.counter_for("plan.route.no_match_total", "SplitFeed"),
        0
    );

    // per-sink connections are ordinary connections: disconnecting one sink
    // leaves the others flowing
    rig.controller
        .disconnect_feed("SplitFeed", "UsTweets")
        .unwrap();
    assert_eq!(
        rig.controller.connection_state(ids[0]),
        ConnectionState::Ended
    );
    assert_eq!(
        rig.controller.connection_state(ids[1]),
        ConnectionState::Active
    );

    // dropping the remaining sinks lets GC reclaim the route segment and
    // the producer chain behind it
    rig.controller
        .disconnect_feed("SplitFeed", "PopularTweets")
        .unwrap();
    rig.controller
        .disconnect_feed("SplitFeed", "RestTweets")
        .unwrap();
    assert!(
        rig.controller
            .joint_locations("plan:SplitFeed:UsTweets")
            .is_empty(),
        "sink joint not reclaimed"
    );
    assert!(
        rig.controller.joint_locations("SplitFeed").is_empty(),
        "trunk joint not reclaimed"
    );

    rig.stop();
    unbind_socket("fanout:9000");
}

#[test]
fn degenerate_plan_behaves_like_connect_feed() {
    const RECORDS: u64 = 200;
    let rig = Rig::start(2);
    let tweets = rig.dataset("Tweets");
    let tx = bind_socket("fanout-degenerate:9000", 1024).unwrap();
    let plan = IngestPlanBuilder::new("SoloFeed")
        .adaptor("socket_adaptor")
        .param("sockets", "fanout-degenerate:9000")
        .sink(SinkSpec::to("Tweets").policy("Basic"))
        .register(&rig.catalog)
        .unwrap();
    assert!(plan.is_degenerate());
    let ids = rig.controller.connect_plan(&plan).unwrap();
    assert_eq!(ids.len(), 1);

    let mut factory = tweetgen::TweetFactory::new(3, 9);
    for _ in 0..RECORDS {
        tx.send(factory.next_json()).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(30), || tweets.len() as u64 == RECORDS),
        "persisted {} of {RECORDS}",
        tweets.len()
    );
    // no routing stage exists: the degenerate plan compiled to the plain
    // single-connection pipeline
    assert!(rig
        .controller
        .joint_locations("plan:SoloFeed:Tweets")
        .is_empty());
    let m = rig.controller.connection_metrics(ids[0]).unwrap();
    assert_eq!(m.records_persisted.get(), RECORDS);
    rig.stop();
    unbind_socket("fanout-degenerate:9000");
}

#[test]
fn multicast_plan_replicates_matching_records() {
    const RECORDS: u64 = 300;
    let rig = Rig::start(2);
    let all = rig.dataset("AllTweets");
    let us = rig.dataset("UsOnly");

    let tx = bind_socket("fanout-multicast:9000", 1024).unwrap();
    let plan = IngestPlanBuilder::new("TeeFeed")
        .adaptor("socket_adaptor")
        .param("sockets", "fanout-multicast:9000")
        .multicast()
        .sink(SinkSpec::to("AllTweets").otherwise().policy("Basic"))
        .sink(
            SinkSpec::to("UsOnly")
                .route(RoutePredicate::eq("country", "US"))
                .policy("Basic"),
        )
        .register(&rig.catalog)
        .unwrap();
    rig.controller.connect_plan(&plan).unwrap();

    let mut factory = tweetgen::TweetFactory::new(5, 11);
    let lines: Vec<String> = (0..RECORDS).map(|_| factory.next_json()).collect();
    let expect_us = lines
        .iter()
        .filter(|l| {
            let v = parse_value(l).unwrap();
            plan.route_record(&v, None).contains(&1)
        })
        .count() as u64;
    assert!(expect_us > 0 && expect_us < RECORDS, "useless seed");

    for line in &lines {
        tx.send(line.clone()).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(30), || all.len() as u64 == RECORDS
            && us.len() as u64 == expect_us),
        "all={} (want {RECORDS}) us={} (want {expect_us})",
        all.len(),
        us.len()
    );
    rig.stop();
    unbind_socket("fanout-multicast:9000");
}
