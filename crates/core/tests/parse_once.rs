//! Regression test for the parse-once typed record pipeline.
//!
//! A record travelling adaptor → intake → assign (UDF) → partitioner →
//! store → secondary index must be parsed from text exactly once — at the
//! adaptor, which seeds the payload's shared parse cache. Before the
//! parse-once refactor this path parsed each record three or more times
//! (assign, key function and store each re-read the text).
//!
//! This file holds a single `#[test]` so its process owns the global
//! [`asterix_adm::parse_calls`] counter — other test binaries run in their
//! own processes and cannot perturb it.

use asterix_adm::types::paper_registry;
use asterix_adm::{parse_calls, AdmValue};
use asterix_common::{NodeId, SimClock, SimDuration};
use asterix_feeds::adaptor::{bind_socket, unbind_socket};
use asterix_feeds::builder::FeedBuilder;
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ControllerConfig, FeedController};
use asterix_feeds::udf::Udf;
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use asterix_storage::secondary::IndexKind;
use asterix_storage::{Dataset, DatasetConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RECORDS: u64 = 400;

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn intake_to_store_parses_each_record_exactly_once() {
    let clock = SimClock::with_scale(10.0);
    let cluster = Cluster::start(
        2,
        clock.clone(),
        ClusterConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            failure_threshold: SimDuration::from_secs(1_000_000),
        },
    );
    let catalog = FeedCatalog::new(paper_registry());
    let controller = FeedController::start(
        cluster.clone(),
        Arc::clone(&catalog),
        ControllerConfig::default(),
    );

    // dataset with a secondary index, so index maintenance is on the path
    let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create(DatasetConfig {
            name: "Tweets".into(),
            datatype: "Tweet".into(),
            primary_key: "id".into(),
            nodegroup,
        })
        .unwrap(),
    );
    dataset
        .create_index("byText", "message_text", IndexKind::BTree)
        .unwrap();
    catalog.register_dataset(Arc::clone(&dataset));
    catalog.create_function(Udf::add_hash_tags()).unwrap();

    // socket-fed primary feed with a UDF'd secondary feed on top: the full
    // collect → intake → assign → hash-partition → store pipeline
    let tx = bind_socket("parse-once:9000", 1024).unwrap();
    FeedBuilder::new("RawFeed")
        .adaptor("socket_adaptor")
        .param("sockets", "parse-once:9000")
        .register(&catalog)
        .unwrap();
    FeedBuilder::new("ProcessedFeed")
        .parent("RawFeed")
        .udf("addHashTags")
        .register(&catalog)
        .unwrap();
    let conn = controller
        .connect_feed("ProcessedFeed", "Tweets", "Basic")
        .unwrap();

    let mut factory = tweetgen::TweetFactory::new(3, 7);
    let lines: Vec<String> = (0..RECORDS).map(|_| factory.next_json()).collect();

    let before = parse_calls();
    for line in &lines {
        tx.send(line.clone()).unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(60), || dataset.len() as u64 == RECORDS),
        "expected {RECORDS} records persisted, saw {}",
        dataset.len()
    );
    let parsed = parse_calls() - before;

    // exactly one parse per record: the adaptor's. Assign, the partitioner
    // key function, the type check, the store and the secondary index all
    // reuse the shared cached value. (The pre-refactor pipeline cost 3+
    // parses per record on this path.)
    assert_eq!(
        parsed, RECORDS,
        "pipeline parsed {parsed} times for {RECORDS} records"
    );

    // the per-feed cache-miss counter agrees: no stage downstream of the
    // adaptor ever parsed
    let metrics = controller.connection_metrics(conn).unwrap();
    assert_eq!(metrics.parse_calls.get(), 0);

    // sanity: the records really went through the UDF and the store
    let sample = dataset.scan_all();
    assert!(sample
        .iter()
        .all(|r| !matches!(r.field("topics"), None | Some(AdmValue::Missing))));

    // scans never re-parse text either: sealing into (compacted) storage
    // images and reading back — full scans, projected column scans and
    // point field lookups — all decode binary images or reuse the cached
    // values, so the global text-parse counter must not move
    let at_seal = parse_calls();
    dataset.force_merge_all();
    let full = dataset.scan_all();
    let projected = dataset.scan_projected(&["message_text".into()]);
    assert_eq!(full.len(), projected.len());
    for (f, p) in full.iter().zip(&projected) {
        assert_eq!(f.field("message_text"), p.field("message_text"));
    }
    let key = full[0].field("id").unwrap();
    assert!(dataset.get_field(key, "message_text").is_some());
    assert_eq!(
        parse_calls() - at_seal,
        0,
        "seal + scans re-parsed record text"
    );

    controller.shutdown();
    cluster.shutdown();
    unbind_socket("parse-once:9000");
}
