//! Property tests over the ingestion-plan routing IR.
//!
//! The load-bearing invariant of first-match routing: when a plan carries a
//! catch-all `otherwise` arm, the arms **partition** the stream — every
//! record routes to exactly one sink (exhaustive, non-overlapping), the
//! chosen arm is the first whose predicate matches, and the multicast view
//! of the same arms is always a superset containing that choice. The
//! routing operator, the `exp_fanout` bench oracle and these tests all call
//! the same [`IngestPlan::route_record`], so whatever these properties pin
//! down is what the pipeline does.

use asterix_adm::AdmValue;
use asterix_common::SimInstant;
use asterix_feeds::adaptor::AdaptorConfig;
use asterix_feeds::plan::{IngestPlan, PlanSource, RoutePredicate, RoutingMode, SinkSpec};
use proptest::prelude::*;

fn country() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("US"), Just("DE"), Just("FR"), Just("BR")]
}

fn leaf() -> impl Strategy<Value = RoutePredicate> {
    prop_oneof![
        country().prop_map(|c| RoutePredicate::eq("country", c)),
        (0i64..100_000).prop_map(|n| RoutePredicate::gt("user.followers_count", n)),
        (0i64..100_000).prop_map(|n| RoutePredicate::lt("user.followers_count", n)),
        Just(RoutePredicate::exists("location")),
        // windowed arms exercise the gen_at-dependent branch
        (1u64..5_000, 0u64..5_000).prop_map(|(p, o)| RoutePredicate::window(p, o)),
    ]
}

fn pred() -> impl Strategy<Value = RoutePredicate> {
    prop_oneof![
        leaf(),
        prop::collection::vec(leaf(), 1..3).prop_map(RoutePredicate::all),
        prop::collection::vec(leaf(), 1..3).prop_map(RoutePredicate::any),
        leaf().prop_map(RoutePredicate::negate),
    ]
}

fn record() -> impl Strategy<Value = AdmValue> {
    (country(), 0i64..100_000, any::<bool>(), 0u64..10_000).prop_map(
        |(c, followers, has_location, id)| {
            let mut fields = vec![
                ("id", AdmValue::String(format!("r{id}"))),
                ("country", c.into()),
                (
                    "user",
                    AdmValue::record(vec![("followers_count", AdmValue::Int(followers))]),
                ),
            ];
            if has_location {
                fields.push(("location", AdmValue::Point(1.0, 2.0)));
            }
            AdmValue::record(fields)
        },
    )
}

/// N predicate arms plus a final `otherwise` arm.
fn plan(mode: RoutingMode, preds: Vec<RoutePredicate>) -> IngestPlan {
    let mut sinks: Vec<SinkSpec> = preds
        .into_iter()
        .enumerate()
        .map(|(i, p)| SinkSpec::to(format!("D{i}")).route(p))
        .collect();
    sinks.push(SinkSpec::to("Rest"));
    IngestPlan {
        name: "Prop".into(),
        source: PlanSource::Adaptor {
            alias: "socket_adaptor".into(),
            config: AdaptorConfig::new(),
        },
        stages: Vec::new(),
        mode,
        sinks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn first_match_with_otherwise_partitions_the_stream(
        preds in prop::collection::vec(pred(), 0..5),
        records in prop::collection::vec(
            (record(), any::<bool>(), 0u64..20_000), 1..40),
    ) {
        let fm = plan(RoutingMode::FirstMatch, preds.clone());
        fm.validate().unwrap();
        prop_assert!(fm.has_otherwise());
        let mc = plan(RoutingMode::Multicast, preds);

        for (rec, timed, at) in &records {
            let gen_at = timed.then_some(SimInstant(*at));
            let targets = fm.route_record(rec, gen_at);

            // exhaustive and non-overlapping: exactly one sink, always
            prop_assert_eq!(targets.len(), 1, "partition violated: {:?}", targets);
            let chosen = targets[0];

            // cross-validate against independent per-arm evaluation: no arm
            // before the chosen one matches, and the chosen one does (or is
            // the catch-all)
            for (i, sink) in fm.sinks.iter().enumerate().take(chosen) {
                let p = sink.predicate.as_ref().expect("otherwise is last");
                prop_assert!(
                    !p.matches(rec, gen_at),
                    "arm {i} matches but arm {chosen} was chosen"
                );
            }
            if let Some(p) = &fm.sinks[chosen].predicate {
                prop_assert!(p.matches(rec, gen_at), "chosen arm does not match");
            }

            // the multicast view of the same arms is a superset whose
            // minimum is the first-match choice; its catch-all always fires
            let all = mc.route_record(rec, gen_at);
            prop_assert!(all.contains(&(mc.sinks.len() - 1)));
            prop_assert_eq!(chosen, *all.iter().min().unwrap());
        }
    }

    /// Without `otherwise`, first-match routes to at most one sink and
    /// drops exactly the records no arm matches — never duplicates.
    #[test]
    fn first_match_without_otherwise_never_duplicates(
        preds in prop::collection::vec(pred(), 1..5),
        records in prop::collection::vec(record(), 1..40),
    ) {
        let mut p = plan(RoutingMode::FirstMatch, preds);
        p.sinks.pop(); // drop the otherwise arm
        p.validate().unwrap();
        prop_assert!(!p.has_otherwise());
        for rec in &records {
            let targets = p.route_record(rec, None);
            prop_assert!(targets.len() <= 1);
            let matches_any = p
                .sinks
                .iter()
                .any(|s| s.predicate.as_ref().expect("no otherwise").matches(rec, None));
            prop_assert_eq!(targets.is_empty(), !matches_any);
        }
    }
}
