//! End-to-end tests of the data-feed machinery: cascade networks, the
//! connect/disconnect lifecycle, soft/hard failure handling, at-least-once
//! delivery, policies under overload, and elastic restructuring.
//!
//! Functional tests run at a fast clock with failure detection effectively
//! disabled (a laptop's scheduling jitter would otherwise register as node
//! failures); the hard-failure tests run at a slower clock where heartbeat
//! timing is robust.

use asterix_adm::types::paper_registry;
use asterix_adm::AdmValue;
use asterix_common::{NodeId, SimClock, SimDuration};
use asterix_feeds::adaptor::{bind_socket, unbind_socket};
use asterix_feeds::builder::FeedBuilder;
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ConnectionState, ControllerConfig, FeedController};
use asterix_feeds::udf::Udf;
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use asterix_storage::{Dataset, DatasetConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tweetgen::{PatternDescriptor, TweetGen, TweetGenConfig};

struct TestRig {
    cluster: Cluster,
    catalog: Arc<FeedCatalog>,
    controller: Arc<FeedController>,
    clock: SimClock,
}

impl TestRig {
    /// Functional rig: fast clock, failure detection effectively off.
    fn start(nodes: usize) -> TestRig {
        Self::start_with(nodes, ControllerConfig::default())
    }

    fn start_with(nodes: usize, cfg: ControllerConfig) -> TestRig {
        let clock = SimClock::with_scale(10.0); // 10 real ms per sim-second
        let cluster = Cluster::start(
            nodes,
            clock.clone(),
            ClusterConfig {
                heartbeat_interval: SimDuration::from_secs(5),
                // enormous: only explicit kill_node flips nodes in these tests
                failure_threshold: SimDuration::from_secs(1_000_000),
            },
        );
        Self::finish_start(nodes, cfg, clock, cluster)
    }

    /// Failure rig: slower clock so heartbeat detection is robust against
    /// real scheduling jitter.
    fn start_faulty(nodes: usize, cfg: ControllerConfig) -> TestRig {
        let clock = SimClock::with_scale(100.0); // 100 real ms per sim-second
        let cluster = Cluster::start(
            nodes,
            clock.clone(),
            ClusterConfig {
                heartbeat_interval: SimDuration::from_millis(250), // 25 ms real
                failure_threshold: SimDuration::from_millis(1500), // 150 ms real
            },
        );
        Self::finish_start(nodes, cfg, clock, cluster)
    }

    fn finish_start(
        _nodes: usize,
        cfg: ControllerConfig,
        clock: SimClock,
        cluster: Cluster,
    ) -> TestRig {
        let catalog = FeedCatalog::new(paper_registry());
        let controller = FeedController::start(cluster.clone(), Arc::clone(&catalog), cfg);
        TestRig {
            cluster,
            catalog,
            controller,
            clock,
        }
    }

    fn dataset(&self, name: &str, datatype: &str) -> Arc<Dataset> {
        let nodegroup: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
        let d = Arc::new(
            Dataset::create(DatasetConfig {
                name: name.into(),
                datatype: datatype.into(),
                primary_key: "id".into(),
                nodegroup,
            })
            .unwrap(),
        );
        self.catalog.register_dataset(Arc::clone(&d));
        d
    }

    fn tweetgen(&self, addr: &str, instance: u32, rate: u32, secs: u64) -> TweetGen {
        TweetGen::bind(
            TweetGenConfig::new(addr, instance, PatternDescriptor::constant(rate, secs)),
            self.clock.clone(),
        )
        .unwrap()
    }

    fn primary_feed(&self, name: &str, datasource: &str) {
        FeedBuilder::new(name)
            .adaptor("TweetGenAdaptor")
            .param("datasource", datasource)
            .register(&self.catalog)
            .unwrap();
    }

    fn secondary_feed(&self, name: &str, parent: &str, udf: &str) {
        FeedBuilder::new(name)
            .parent(parent)
            .udf(udf)
            .register(&self.catalog)
            .unwrap();
    }

    fn stop(self) {
        self.controller.shutdown();
        self.cluster.shutdown();
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Wait until the generator's pattern has finished (count stable).
fn wait_pattern_done(gen: &TweetGen) -> u64 {
    let mut last = gen.generated();
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let now = gen.generated();
        if now == last && now > 0 {
            return now;
        }
        last = now;
    }
}

#[test]
fn primary_feed_ingests_into_dataset() {
    let rig = TestRig::start(3);
    let gen = rig.tweetgen("e2e-a:9000", 0, 300, 4); // 1200-tweet budget
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.primary_feed("TwitterFeed", "e2e-a:9000");
    let conn = rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    let generated = wait_pattern_done(&gen);
    assert!(generated >= 1000, "generated {generated}");
    assert!(
        wait_until(Duration::from_secs(20 * 3), || dataset.len() as u64
            >= generated),
        "persisted {} of {generated}",
        dataset.len()
    );
    // records are queryable, validated and well-formed
    let sample = dataset.scan_all().pop().unwrap();
    assert!(sample.field("id").is_some());
    assert!(sample.field("user").is_some());
    let m = rig.controller.connection_metrics(conn).unwrap();
    assert_eq!(m.records_persisted.get(), generated);
    assert_eq!(m.records_discarded.get(), 0);
    assert_eq!(m.soft_failures.get(), 0);
    // the store stage group-commits per frame, not per record
    let frames = m.frames_stored.get();
    assert!(frames >= 1, "no frames group-committed");
    assert!(
        frames < generated,
        "store ran record-at-a-time: {frames} frames for {generated} records"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn secondary_feed_applies_udf_and_shares_head() {
    let rig = TestRig::start(3);
    let gen = rig.tweetgen("e2e-b:9000", 0, 300, 4);
    let raw = rig.dataset("Tweets", "Tweet");
    let processed = rig.dataset("ProcessedTweets", "Tweet"); // open type admits topics
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-b:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");

    rig.controller
        .connect_feed("ProcessedTwitterFeed", "ProcessedTweets", "Basic")
        .unwrap();
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();

    let generated = wait_pattern_done(&gen) as usize;
    assert!(
        wait_until(Duration::from_secs(20 * 3), || processed.len() >= generated
            && raw.len() >= generated),
        "generated={generated} raw={} processed={}",
        raw.len(),
        processed.len()
    );
    // the UDF added the topics attribute on the processed path only
    let p = processed.scan_all().pop().unwrap();
    assert!(p.field("topics").is_some(), "processed tweet lacks topics");
    let r = raw.scan_all().pop().unwrap();
    assert!(r.field("topics").is_none(), "raw tweet should be raw");
    gen.stop();
    rig.stop();
}

#[test]
fn three_level_cascade_listing_5_9() {
    let rig = TestRig::start(4);
    let gen = rig.tweetgen("e2e-c:9000", 0, 300, 4);
    let sentiments = rig.dataset("TwitterSentiments", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.catalog
        .create_function(Udf::sentiment_analysis())
        .unwrap();
    rig.primary_feed("TwitterFeed", "e2e-c:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");
    rig.secondary_feed(
        "SentimentFeed",
        "ProcessedTwitterFeed",
        "tweetlib#sentimentAnalysis",
    );
    // connecting only the deepest feed builds the whole chain
    rig.controller
        .connect_feed("SentimentFeed", "TwitterSentiments", "Basic")
        .unwrap();
    let generated = wait_pattern_done(&gen) as usize;
    assert!(
        wait_until(Duration::from_secs(25 * 3), || sentiments.len()
            >= generated),
        "persisted {} of {generated}",
        sentiments.len()
    );
    let s = sentiments.scan_all().pop().unwrap();
    assert!(s.field("topics").is_some(), "first UDF applied");
    let sentiment = s.field("sentiment").and_then(AdmValue::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&sentiment), "second UDF applied");
    gen.stop();
    rig.stop();
}

#[test]
fn disconnect_is_graceful_and_isolated() {
    let rig = TestRig::start(3);
    // long-lived source: 400 twps for 10k sim-seconds (stopped explicitly)
    let gen = rig.tweetgen("e2e-d:9000", 0, 400, 10_000);
    let raw = rig.dataset("Tweets", "Tweet");
    let processed = rig.dataset("ProcessedTweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-d:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    rig.controller
        .connect_feed("ProcessedTwitterFeed", "ProcessedTweets", "Basic")
        .unwrap();
    assert!(wait_until(Duration::from_secs(10 * 3), || raw.len() > 500
        && processed.len() > 500));

    // disconnect the primary: the secondary keeps flowing (Fig 5.10)
    rig.controller
        .disconnect_feed("TwitterFeed", "Tweets")
        .unwrap();
    let raw_at_disconnect = raw.len();
    let processed_at_disconnect = processed.len();
    assert!(
        wait_until(Duration::from_secs(10 * 3), || processed.len()
            > processed_at_disconnect + 500),
        "secondary feed stalled after sibling disconnect"
    );
    // raw dataset stops growing (drain margin only)
    std::thread::sleep(Duration::from_millis(200));
    let raw_after = raw.len();
    assert!(
        raw_after <= raw_at_disconnect + 100,
        "raw kept growing: {raw_at_disconnect} -> {raw_after}"
    );
    // now disconnect the secondary too; everything is reclaimed
    rig.controller
        .disconnect_feed("ProcessedTwitterFeed", "ProcessedTweets")
        .unwrap();
    assert!(rig.controller.connections().is_empty());
    gen.stop();
    rig.stop();
}

#[test]
fn soft_failures_are_skipped_and_logged() {
    let rig = TestRig::start(2);
    let tx = bind_socket("e2e-soft:1", 1024).unwrap();
    let dataset = rig.dataset("Events", "Tweet");
    FeedBuilder::new("EventFeed")
        .adaptor("socket_adaptor")
        .param("sockets", "e2e-soft:1")
        .register(&rig.catalog)
        .unwrap();
    let conn = rig
        .controller
        .connect_feed("EventFeed", "Events", "Basic")
        .unwrap();
    let mut f = tweetgen::TweetFactory::new(0, 3);
    // interleave good tweets with records that fail Tweet validation
    for i in 0..60 {
        if i % 3 == 2 {
            tx.send("{\"id\":\"bad\"}".to_string()).unwrap(); // missing fields
        } else {
            tx.send(f.next_json()).unwrap();
        }
    }
    assert!(
        wait_until(Duration::from_secs(15 * 3), || dataset.len() >= 40),
        "persisted {}",
        dataset.len()
    );
    let m = rig.controller.connection_metrics(conn).unwrap();
    assert!(
        wait_until(Duration::from_secs(5 * 3), || m.soft_failures.get() >= 19),
        "soft failures: {}",
        m.soft_failures.get()
    );
    // log carries operator attribution and payloads
    let log = rig.controller.error_log();
    let entries = log.lock();
    assert!(!entries.is_empty());
    assert!(entries[0].operator.contains("IndexInsert"));
    assert!(entries[0].payload.as_deref().unwrap_or("").contains("bad"));
    drop(entries);
    // exactly the good records got in (dedup by upsert on the "bad" id
    // never happens — they all failed validation)
    assert_eq!(dataset.len(), 40);
    unbind_socket("e2e-soft:1");
    drop(tx);
    rig.stop();
}

#[test]
fn compute_node_failure_recovers_with_fault_isolation() {
    let rig = TestRig::start_faulty(
        4,
        ControllerConfig {
            compute_parallelism: Some(2),
            ..ControllerConfig::default()
        },
    );
    // at scale 100: 1 sim-s = 100 ms real; run "forever", stop explicitly
    let gen = rig.tweetgen("e2e-f:9000", 0, 200, 10_000);
    // keep the datasets off the compute nodes' critical path: nodegroup is
    // all nodes, so store partitions live everywhere; what we assert is
    // that flow resumes after recovery.
    let raw = rig.dataset("Tweets", "Tweet");
    let processed = rig.dataset("ProcessedTweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-f:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    rig.controller
        .connect_feed("ProcessedTwitterFeed", "ProcessedTweets", "Basic")
        .unwrap();
    assert!(wait_until(Duration::from_secs(15 * 3), || processed.len()
        > 300
        && raw.len() > 300));

    // kill a node hosting a compute instance of the processed pipeline;
    // both connections' store stages have a partition there, so they
    // suspend — then the node re-joins and everything resumes after
    // log-based recovery (§6.2.3)
    let compute_nodes = rig.controller.joint_locations("TwitterFeed:addHashTags");
    assert!(!compute_nodes.is_empty());
    let victim = compute_nodes[0];
    rig.cluster.kill_node(victim);
    // wait for detection (threshold 150 ms real) and protocol execution
    std::thread::sleep(Duration::from_millis(600));
    rig.cluster.revive_node(victim);
    let processed_before = processed.len();
    let raw_before = raw.len();
    assert!(
        wait_until(Duration::from_secs(30 * 3), || processed.len()
            > processed_before + 300),
        "processed pipeline did not resume: {} -> {}",
        processed_before,
        processed.len()
    );
    assert!(
        wait_until(Duration::from_secs(15 * 3), || raw.len() > raw_before + 300),
        "raw pipeline did not resume"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn store_node_failure_suspends_then_resumes_on_rejoin() {
    let rig = TestRig::start_faulty(3, ControllerConfig::default());
    let gen = rig.tweetgen("e2e-g:9000", 0, 200, 10_000);
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.primary_feed("TwitterFeed", "e2e-g:9000");
    let conn = rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "FaultTolerant")
        .unwrap();
    assert!(wait_until(Duration::from_secs(15 * 3), || dataset.len() > 300));

    // kill a node hosting a dataset partition but no intake
    let intake_nodes = rig.controller.joint_locations("TwitterFeed");
    let victim = dataset
        .config
        .nodegroup
        .iter()
        .copied()
        .find(|n| !intake_nodes.contains(n))
        .expect("a pure store node exists");
    rig.cluster.kill_node(victim);
    assert!(
        wait_until(Duration::from_secs(10 * 3), || {
            rig.controller.connection_state(conn) == ConnectionState::Suspended
        }),
        "connection should suspend on store-node loss"
    );
    // re-join: log-based recovery, pipeline rescheduled
    rig.cluster.revive_node(victim);
    assert!(
        wait_until(Duration::from_secs(10 * 3), || {
            rig.controller.connection_state(conn) == ConnectionState::Active
        }),
        "connection should resume on re-join"
    );
    let before = dataset.len();
    assert!(
        wait_until(Duration::from_secs(30 * 3), || dataset.len() > before + 300),
        "ingestion did not resume: {} -> {}",
        before,
        dataset.len()
    );
    gen.stop();
    rig.stop();
}

#[test]
fn kill_node_while_congested_recovers_without_loss() {
    // the hard case: a store node dies while the flow controller is holding
    // deferred work. Under FaultTolerant nothing may be lost — the zombie
    // frames and the unacked tracker records must survive the rebuild — and
    // the connection must walk Active -> Suspended -> Active.
    let rig = TestRig::start_faulty(
        3,
        ControllerConfig {
            flow_capacity: 2,
            ..ControllerConfig::default()
        },
    );
    let gen = rig.tweetgen("e2e-chaos:9000", 0, 400, 6); // 2400-tweet budget
                                                         // a slow store keeps the flow controller congested when the kill lands
    let nodegroup: Vec<NodeId> = rig.cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create_with(
            DatasetConfig {
                name: "Tweets".into(),
                datatype: "Tweet".into(),
                primary_key: "id".into(),
                nodegroup,
            },
            20_000,
        )
        .unwrap(),
    );
    rig.catalog.register_dataset(Arc::clone(&dataset));
    rig.primary_feed("TwitterFeed", "e2e-chaos:9000");
    let conn = rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "FaultTolerant")
        .unwrap();
    assert!(wait_until(Duration::from_secs(15 * 3), || dataset.len() > 100));

    // kill a node hosting a dataset partition but no intake, mid-stream
    let intake_nodes = rig.controller.joint_locations("TwitterFeed");
    let victim = dataset
        .config
        .nodegroup
        .iter()
        .copied()
        .find(|n| !intake_nodes.contains(n))
        .expect("a pure store node exists");
    rig.cluster.kill_node(victim);
    assert!(
        wait_until(Duration::from_secs(10 * 3), || {
            rig.controller.connection_state(conn) == ConnectionState::Suspended
        }),
        "connection should suspend on store-node loss"
    );
    rig.cluster.revive_node(victim);
    assert!(
        wait_until(Duration::from_secs(10 * 3), || {
            rig.controller.connection_state(conn) == ConnectionState::Active
        }),
        "connection should resume on re-join"
    );
    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(60 * 3), || dataset.len() as u64
            >= generated),
        "recovered only {} of {generated}",
        dataset.len()
    );
    // at-least-once: every generated id made it despite the congested kill
    let mut missing = 0u64;
    let present: std::collections::BTreeSet<String> = dataset
        .scan_all()
        .iter()
        .filter_map(|r| r.field("id").and_then(AdmValue::as_str).map(String::from))
        .collect();
    for i in 0..generated {
        if !present.contains(&format!("0-{i}")) {
            missing += 1;
        }
    }
    assert_eq!(missing, 0, "lost {missing} of {generated} records");
    let m = rig.controller.connection_metrics(conn).unwrap();
    assert!(
        m.hard_failures_recovered.get() >= 1,
        "recovery was not surfaced in metrics"
    );
    assert!(
        m.last_recovery_millis.get() > 0,
        "recovery latency gauge never set"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn discard_policy_sheds_load_under_overload() {
    let rig = TestRig::start_with(
        2,
        ControllerConfig {
            flow_capacity: 2,
            compute_parallelism: Some(1),
            compute_extra_spin: 200_000, // make compute the bottleneck
            ..ControllerConfig::default()
        },
    );
    let gen = rig.tweetgen("e2e-h:9000", 0, 2000, 10_000);
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-h:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");
    rig.controller
        .connect_feed("ProcessedTwitterFeed", "Tweets", "Discard")
        .unwrap();
    let m = rig
        .controller
        .compute_metrics("TwitterFeed:addHashTags")
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(20 * 3), || m.records_discarded.get()
            > 0),
        "no records discarded under overload"
    );
    assert!(
        wait_until(Duration::from_secs(10 * 3), || !dataset.is_empty()),
        "nothing persisted at all"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn elastic_policy_scales_compute_out() {
    let rig = TestRig::start_with(
        4,
        ControllerConfig {
            flow_capacity: 2,
            compute_parallelism: Some(1),
            compute_extra_spin: 100_000,
            ..ControllerConfig::default()
        },
    );
    let gen = rig.tweetgen("e2e-i:9000", 0, 1500, 10_000);
    let _dataset = rig.dataset("Tweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-i:9000");
    rig.secondary_feed("ProcessedTwitterFeed", "TwitterFeed", "addHashTags");
    rig.controller
        .connect_feed("ProcessedTwitterFeed", "Tweets", "Elastic")
        .unwrap();
    assert_eq!(
        rig.controller
            .compute_parallelism_of("TwitterFeed:addHashTags"),
        Some(1)
    );
    assert!(
        wait_until(Duration::from_secs(25 * 3), || {
            rig.controller
                .compute_parallelism_of("TwitterFeed:addHashTags")
                .map(|n| n > 1)
                .unwrap_or(false)
        }),
        "compute stage never scaled out"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn at_least_once_tracks_and_survives_duplicates() {
    let rig = TestRig::start_with(
        2,
        ControllerConfig {
            ack_timeout: SimDuration::from_millis(600),
            ack_window: SimDuration::from_millis(100),
            ..ControllerConfig::default()
        },
    );
    let gen = rig.tweetgen("e2e-j:9000", 0, 200, 4);
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.primary_feed("TwitterFeed", "e2e-j:9000");
    let conn = rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "FaultTolerant")
        .unwrap();
    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(15 * 3), || dataset.len() as u64
            >= generated),
        "persisted {} of {generated}",
        dataset.len()
    );
    let m = rig.controller.connection_metrics(conn).unwrap();
    // even if replays occurred (timeouts), upserts dedup: dataset count
    // equals distinct generated ids
    assert_eq!(dataset.len() as u64, generated);
    assert!(
        m.records_persisted.get() >= generated,
        "store-metric counts every (re)play"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn connect_twice_is_an_error_and_unknown_names_fail() {
    let rig = TestRig::start(2);
    let _gen = rig.tweetgen("e2e-k:9000", 0, 10, 10_000);
    rig.dataset("Tweets", "Tweet");
    rig.primary_feed("TwitterFeed", "e2e-k:9000");
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    assert!(rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .is_err());
    assert!(rig
        .controller
        .connect_feed("NoFeed", "Tweets", "Basic")
        .is_err());
    assert!(rig
        .controller
        .connect_feed("TwitterFeed", "NoDataset", "Basic")
        .is_err());
    assert!(rig
        .controller
        .connect_feed("TwitterFeed", "Tweets", "NoPolicy")
        .is_err());
    assert!(rig
        .controller
        .disconnect_feed("TwitterFeed", "NoDataset")
        .is_err());
    rig.controller
        .disconnect_feed("TwitterFeed", "Tweets")
        .unwrap();
    // reconnecting after disconnect works (Fig 5.10 discussion)
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    rig.stop();
}

#[test]
fn basic_policy_memory_budget_terminates_feed() {
    let mut params = std::collections::BTreeMap::new();
    params.insert("memory.budget.bytes".into(), "16KB".into());
    let rig = TestRig::start_with(
        1,
        ControllerConfig {
            flow_capacity: 1,
            compute_parallelism: Some(1),
            compute_extra_spin: 500_000,
            ..ControllerConfig::default()
        },
    );
    rig.catalog
        .create_policy("TinyBasic", "Basic", &params)
        .unwrap();
    let gen = rig.tweetgen("e2e-l:9000", 0, 3000, 10_000);
    let _dataset = rig.dataset("Tweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-l:9000");
    rig.secondary_feed("P", "TwitterFeed", "addHashTags");
    let conn = rig
        .controller
        .connect_feed("P", "Tweets", "TinyBasic")
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(30 * 3), || {
            rig.controller.connection_state(conn) == ConnectionState::Ended
        }),
        "feed should terminate when the Basic buffer budget blows"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn policy_comparison_discard_vs_throttle_pattern() {
    // run the same overload through Discard and Throttle and compare the
    // persisted-id patterns (Figs 7.9/7.10): Discard leaves contiguous
    // gaps; Throttle thins uniformly.
    fn run(policy: &str, addr: &str) -> Vec<bool> {
        let rig = TestRig::start_with(
            1,
            ControllerConfig {
                flow_capacity: 1,
                compute_parallelism: Some(1),
                compute_extra_spin: 60_000,
                ..ControllerConfig::default()
            },
        );
        let gen = rig.tweetgen(addr, 0, 1500, 5); // 7500-tweet budget
        let dataset = rig.dataset("Tweets", "Tweet");
        rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
        rig.primary_feed("TwitterFeed", addr);
        rig.secondary_feed("P", "TwitterFeed", "addHashTags");
        rig.controller.connect_feed("P", "Tweets", policy).unwrap();
        let total = wait_pattern_done(&gen) as usize;
        // wait until the pipeline has drained (count stable for a while)
        let mut last = dataset.len();
        loop {
            std::thread::sleep(Duration::from_millis(500));
            let now = dataset.len();
            if now == last {
                break;
            }
            last = now;
        }
        let mut present = vec![false; total];
        for rec in dataset.scan_all() {
            if let Some(id) = rec.field("id").and_then(AdmValue::as_str) {
                if let Some(seq) = id.strip_prefix("0-").and_then(|s| s.parse::<usize>().ok()) {
                    if seq < total {
                        present[seq] = true;
                    }
                }
            }
        }
        gen.stop();
        rig.stop();
        present
    }

    fn longest_gap(present: &[bool]) -> usize {
        let mut longest = 0;
        let mut current = 0;
        for &p in present {
            if p {
                longest = longest.max(current);
                current = 0;
            } else {
                current += 1;
            }
        }
        longest.max(current)
    }

    let discard = run("Discard", "e2e-m:9000");
    let throttle = run("Throttle", "e2e-n:9000");
    let d_kept = discard.iter().filter(|&&b| b).count();
    let t_kept = throttle.iter().filter(|&&b| b).count();
    assert!(d_kept > 0 && d_kept < discard.len(), "discard shed load");
    assert!(t_kept > 0 && t_kept < throttle.len(), "throttle shed load");
    // discard's gaps are long contiguous runs; throttle's are short
    let d_gap = longest_gap(&discard);
    let t_gap = longest_gap(&throttle);
    assert!(
        d_gap > t_gap,
        "discard gap {d_gap} should exceed throttle gap {t_gap}"
    );
}

#[test]
fn console_report_and_elastic_scale_in() {
    let rig = TestRig::start_with(
        4,
        ControllerConfig {
            compute_parallelism: Some(1),
            ..ControllerConfig::default()
        },
    );
    let gen = rig.tweetgen("e2e-console:9000", 0, 200, 10_000);
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-console:9000");
    rig.secondary_feed("P", "TwitterFeed", "addHashTags");
    rig.controller.connect_feed("P", "Tweets", "Basic").unwrap();
    assert!(wait_until(Duration::from_secs(10 * 3), || dataset.len() > 100));

    // the Appendix A console shows the physical layout and rates
    let report = rig.controller.console_report();
    assert!(report.contains("P -> Tweets"), "{report}");
    assert!(report.contains("intake:"), "{report}");
    assert!(report.contains("persisted:"), "{report}");

    // manual elastic scale-out then scale-in (§7.3.5 "scale out/in")
    let n = rig
        .controller
        .scale_compute("TwitterFeed:addHashTags", 2)
        .unwrap();
    assert_eq!(n, 3);
    let before = dataset.len();
    assert!(
        wait_until(Duration::from_secs(10 * 3), || dataset.len() > before + 200),
        "flow continues after scale-out"
    );
    let n = rig
        .controller
        .scale_compute("TwitterFeed:addHashTags", -2)
        .unwrap();
    assert_eq!(n, 1);
    let before = dataset.len();
    assert!(
        wait_until(Duration::from_secs(10 * 3), || dataset.len() > before + 200),
        "flow continues after scale-in"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn publish_subscribe_with_filter_feeds_and_dataset_union() {
    // §8.2: subscriptions are predicate feeds off one published stream; and
    // §4.4: "multiple feeds can simultaneously be connected to a dataset
    // such that the dataset represents the union of the connected feeds"
    let rig = TestRig::start(3);
    let gen = rig.tweetgen("e2e-pubsub:9000", 0, 300, 4);
    let us_tweets = rig.dataset("UsTweets", "Tweet");
    let union = rig.dataset("Union", "Tweet");
    rig.catalog
        .create_function(Udf::filter("onlyUS", |t| {
            t.field("country").and_then(AdmValue::as_str) == Some("US")
        }))
        .unwrap();
    rig.catalog
        .create_function(Udf::filter("onlyJP", |t| {
            t.field("country").and_then(AdmValue::as_str) == Some("JP")
        }))
        .unwrap();
    rig.primary_feed("TwitterFeed", "e2e-pubsub:9000");
    rig.secondary_feed("UsSub", "TwitterFeed", "onlyUS");
    rig.secondary_feed("JpSub", "TwitterFeed", "onlyJP");
    rig.controller
        .connect_feed("UsSub", "UsTweets", "Basic")
        .unwrap();
    // union: two subscriber feeds into one dataset
    rig.controller
        .connect_feed("JpSub", "Union", "Basic")
        .unwrap();
    rig.controller
        .connect_feed("UsSub", "Union", "Basic")
        .unwrap();
    let generated = wait_pattern_done(&gen) as usize;
    assert!(
        wait_until(Duration::from_secs(15 * 3), || {
            !us_tweets.is_empty() && union.len() > us_tweets.len()
        }),
        "subscriptions stalled"
    );
    std::thread::sleep(Duration::from_millis(300));
    // the subscription is exact: only US tweets
    for t in us_tweets.scan_all() {
        assert_eq!(t.field("country").and_then(AdmValue::as_str), Some("US"));
    }
    // the union dataset holds exactly US + JP
    for t in union.scan_all() {
        let c = t.field("country").and_then(AdmValue::as_str).unwrap();
        assert!(c == "US" || c == "JP", "unexpected country {c}");
    }
    assert!(union.len() < generated, "filters actually filtered");
    gen.stop();
    rig.stop();
}

#[test]
fn registry_snapshot_is_complete_and_finite() {
    // the acceptance bar for the observability layer: one snapshot from the
    // cluster registry exposes per-operator throughput and latency, feed
    // flow-control state, storage internals and end-to-end ingestion lag
    let rig = TestRig::start(3);
    let gen = rig.tweetgen("e2e-obs:9000", 0, 300, 4);
    let dataset = rig.dataset("Tweets", "Tweet");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    rig.primary_feed("TwitterFeed", "e2e-obs:9000");
    rig.secondary_feed("P", "TwitterFeed", "addHashTags");
    rig.controller.connect_feed("P", "Tweets", "Basic").unwrap();
    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(20 * 3), || dataset.len() as u64
            >= generated),
        "persisted {} of {generated}",
        dataset.len()
    );

    let snap = rig.controller.registry().snapshot_at(&rig.clock);
    assert!(!snap.is_empty(), "registry snapshot is empty");
    assert!(snap.all_finite(), "snapshot contains non-finite values");

    // per-operator throughput and frame latency (hyracks executor layer)
    assert!(snap.counter("operator.frames_in") > 0);
    assert!(snap.counter("operator.records_in") > 0);
    assert!(snap.counter("operator.records_out") > 0);
    let op_latency = snap
        .histogram("operator.frame_latency_us")
        .expect("operator latency histogram");
    assert!(op_latency.count > 0, "no operator latencies recorded");

    // per-connection feed counters, keyed by the connection scope label
    assert_eq!(
        snap.counter_for("feed.records_persisted", "P->Tweets"),
        generated
    );
    assert!(snap.counter_for("feed.records_in", "P->Tweets") >= generated);
    // flow-control state is registered even when the policy never trips it
    assert!(
        snap.has("feed.buffer_bytes"),
        "intake backlog gauge missing"
    );
    assert_eq!(snap.counter("feed.records_discarded"), 0);
    assert_eq!(snap.counter("feed.records_spilled"), 0);

    // storage internals, per dataset/partition
    assert!(snap.gauge("storage.wal_bytes").expect("wal bytes gauge") > 0);
    assert!(snap.gauge("storage.lsm_components").is_some());
    let batches = snap
        .histogram("storage.group_commit_batch_size")
        .expect("group-commit histogram");
    assert!(batches.count > 0, "no group commits recorded");
    assert!(
        batches.sum >= generated,
        "group commits cover fewer records ({}) than generated ({generated})",
        batches.sum
    );

    // storage-layout observability: the compaction gauges are registered up
    // front; forcing a seal makes them go live in the next snapshot
    assert!(snap.has("storage.bytes_per_record"));
    assert!(snap.has("compaction.schema_inferred_components"));
    assert!(snap.has("compaction.fallback_components"));
    dataset.force_merge_all();
    let sealed_snap = rig.controller.registry().snapshot_at(&rig.clock);
    assert!(
        sealed_snap.gauge("storage.bytes_per_record").unwrap_or(0) > 0,
        "sealed components report no bytes/record"
    );
    assert!(
        sealed_snap
            .gauge("compaction.schema_inferred_components")
            .unwrap_or(0)
            > 0,
        "the uniform tweet workload must seal compacted, not fall back"
    );
    let sealed_prom = sealed_snap.to_prometheus();
    assert!(
        sealed_prom.contains("asterix_storage_bytes_per_record"),
        "{sealed_prom}"
    );
    assert!(
        sealed_prom.contains("asterix_compaction_schema_inferred_components"),
        "{sealed_prom}"
    );
    assert!(
        sealed_prom.contains("asterix_compaction_fallback_components"),
        "{sealed_prom}"
    );

    // end-to-end ingestion lag: generation stamp -> durable store
    let lag = snap
        .histogram("feed.ingest_lag_millis")
        .expect("ingestion lag histogram");
    assert_eq!(lag.count, generated, "every persisted record closes a lag");
    assert!(lag.mean().is_finite());

    // execution-runtime metrics: the pipeline ran as cooperative tasks on
    // the work-stealing scheduler, not on per-operator threads
    assert!(snap.counter("scheduler.tasks_spawned") > 0);
    assert!(snap.counter("scheduler.polls") > 0);
    assert!(snap.gauge("scheduler.workers").unwrap_or(0) > 0);
    assert!(snap.has("scheduler.steals"), "steal counter missing");
    assert!(snap.has("scheduler.yields"), "yield counter missing");
    assert!(
        snap.has("scheduler.queue.global_depth"),
        "injector depth gauge missing"
    );

    // both export formats render non-trivially
    let json = snap.to_json();
    assert!(json.contains("feed.ingest_lag_millis"), "{json}");
    let prom = snap.to_prometheus();
    assert!(prom.contains("asterix_feed_records_persisted"), "{prom}");
    assert!(prom.contains("asterix_scheduler_tasks_spawned"), "{prom}");

    // the trace hub saw the connect span
    let trace = rig.cluster.trace().render();
    assert!(trace.contains("feed.connect"), "{trace}");

    gen.stop();
    rig.stop();
}
