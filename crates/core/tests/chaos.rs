//! Chaos soak tests: deterministic fault injection against the full feed
//! stack (Fig 6.5 and §6.2). Every fault schedule comes from a single
//! `FaultPlan` seed, so any failing run can be replayed bit-for-bit by
//! re-running with the same seed.
//!
//! What is asserted here:
//! * the at-least-once invariant — with `at.least.once.enabled`, every
//!   generated record id appears in the dataset even when a store node is
//!   hard-killed mid-ingestion and later rejoins;
//! * replayability — two runs with the same seed produce identical fault
//!   schedules and identical post-recovery record-id sets;
//! * Basic/Spill lose nothing across a hard failure that is a runtime
//!   exception (§6.2.3 operator panic): deferred work is parked as zombie
//!   frames and re-adopted by the respawned store job;
//! * Discard's drop pattern stays contiguous under chaos (Fig 7.9) while
//!   Throttle's stays uniform (Fig 7.10);
//! * a torn WAL tail is recovered all-or-nothing.
//!
//! `CHAOS_SOAK_ITERS` (default 3, CI sets 20) controls soak depth.

use asterix_adm::types::paper_registry;
use asterix_adm::AdmValue;
use asterix_common::{
    FaultEvent, FaultKind, FaultPlan, FaultPlanConfig, NodeId, SimClock, SimDuration,
};
use asterix_feeds::adaptor::{ChaosAdaptorFactory, TweetGenAdaptorFactory};
use asterix_feeds::builder::FeedBuilder;
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ConnectionState, ControllerConfig, FeedController};
use asterix_feeds::udf::Udf;
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use asterix_hyracks::transport::TransportKind;
use asterix_storage::{Dataset, DatasetConfig, DatasetPartition, PartitionConfig};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tweetgen::{PatternDescriptor, TweetGen, TweetGenConfig};

fn soak_iters() -> u64 {
    std::env::var("CHAOS_SOAK_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Wait until the generator's pattern has finished (count stable).
fn wait_pattern_done(gen: &TweetGen) -> u64 {
    let mut last = gen.generated();
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let now = gen.generated();
        if now == last && now > 0 {
            return now;
        }
        last = now;
    }
}

/// Wait until the dataset has stopped growing (pipeline drained).
fn wait_drained(dataset: &Dataset) -> usize {
    let mut last = dataset.len();
    loop {
        std::thread::sleep(Duration::from_millis(500));
        let now = dataset.len();
        if now == last {
            return now;
        }
        last = now;
    }
}

fn dataset_ids(dataset: &Dataset) -> BTreeSet<String> {
    dataset
        .scan_all()
        .iter()
        .filter_map(|r| r.field("id").and_then(AdmValue::as_str).map(String::from))
        .collect()
}

fn expected_ids(instance: u32, generated: u64) -> BTreeSet<String> {
    (0..generated).map(|i| format!("{instance}-{i}")).collect()
}

/// One full chaos run: a 4-node cluster, a FaultTolerant connection, and a
/// seeded plan that kills one unprotected store node mid-ingestion and
/// revives it while the source is still flowing. Node 0 is protected — it
/// hosts the collect job (and therefore the store intake), and losing the
/// node that talks to the external source is unrecoverable without source
/// replay, which the paper does not claim.
struct SoakOutcome {
    schedule: String,
    generated: u64,
    ids: BTreeSet<String>,
    hard_recoveries: u64,
    last_recovery_millis: u64,
}

fn soak_once(seed: u64, addr: &str) -> SoakOutcome {
    soak_once_with(seed, addr, TransportKind::InProcess)
}

/// Same soak, but the pipeline's edges ride the chosen wire (`Tcp` routes
/// every inter-operator frame through a length-prefixed loopback socket).
fn soak_once_with(seed: u64, addr: &str, transport: TransportKind) -> SoakOutcome {
    let clock = SimClock::with_scale(100.0); // 100 real ms per sim-second
    let cluster = Cluster::start(
        4,
        clock.clone(),
        ClusterConfig {
            heartbeat_interval: SimDuration::from_millis(250),
            failure_threshold: SimDuration::from_millis(1500),
        },
    );
    // 2000-record budget: the kill lands in records [1, 1000), the revive
    // 1000 records later — i.e. ~5 sim-seconds after the kill, comfortably
    // past the 1.5 sim-second failure-detection threshold.
    let plan = Arc::new(FaultPlan::generate(
        seed,
        &FaultPlanConfig {
            nodes: 4,
            protected_nodes: 1,
            horizon_records: 2_000,
            node_kills: 1,
            rejoin_delay_records: 1_000,
            ..FaultPlanConfig::default()
        },
    ));
    let schedule = plan.describe();
    cluster.arm_fault_plan(Arc::clone(&plan));

    let catalog = FeedCatalog::new(paper_registry());
    catalog
        .adaptors()
        .register(Arc::new(ChaosAdaptorFactory::new(
            Arc::new(TweetGenAdaptorFactory),
            Arc::clone(&plan),
        )));
    let controller = FeedController::start(
        cluster.clone(),
        Arc::clone(&catalog),
        ControllerConfig {
            fault_plan: Some(Arc::clone(&plan)),
            transport,
            ..ControllerConfig::default()
        },
    );

    let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create(DatasetConfig {
            name: "Tweets".into(),
            datatype: "Tweet".into(),
            primary_key: "id".into(),
            nodegroup,
        })
        .unwrap(),
    );
    catalog.register_dataset(Arc::clone(&dataset));

    let gen = TweetGen::bind(
        TweetGenConfig::new(addr, 0, PatternDescriptor::constant(200, 10)),
        clock.clone(),
    )
    .unwrap();
    FeedBuilder::new("TwitterFeed")
        .adaptor("chaos:TweetGenAdaptor")
        .param("datasource", addr)
        .register(&catalog)
        .unwrap();
    let conn = controller
        .connect_feed("TwitterFeed", "Tweets", "FaultTolerant")
        .unwrap();

    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(60), || dataset.len() as u64
            >= generated),
        "seed {seed:#x}: recovered to {} of {generated} records; schedule:\n{schedule}",
        dataset.len()
    );
    assert_eq!(
        plan.unfired_count(),
        0,
        "seed {seed:#x}: schedule did not fully fire:\n{schedule}"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            controller.connection_state(conn) == ConnectionState::Active
        }),
        "seed {seed:#x}: connection never returned to Active"
    );
    let m = controller.connection_metrics(conn).unwrap();
    let out = SoakOutcome {
        schedule,
        generated,
        ids: dataset_ids(&dataset),
        hard_recoveries: m.hard_failures_recovered.get(),
        last_recovery_millis: m.last_recovery_millis.get(),
    };
    gen.stop();
    controller.shutdown();
    cluster.shutdown();
    out
}

#[test]
fn at_least_once_soak_survives_node_kill_mid_ingestion() {
    for i in 0..soak_iters() {
        let seed = 0xA57E_21C5_0000_0000 | i;
        let out = soak_once(seed, &format!("chaos-soak-{i}:9000"));
        assert_eq!(
            out.ids,
            expected_ids(0, out.generated),
            "seed {seed:#x}: record-id set diverged; schedule:\n{}",
            out.schedule
        );
        assert!(
            out.hard_recoveries >= 1,
            "seed {seed:#x}: no hard failure was recorded as recovered"
        );
        assert!(
            out.last_recovery_millis > 0,
            "seed {seed:#x}: recovery latency gauge never set"
        );
    }
}

#[test]
fn same_seed_replays_schedule_and_record_ids() {
    let seed = 0xFEED_FACE_CAFE_0001;
    let a = soak_once(seed, "chaos-replay-a:9000");
    let b = soak_once(seed, "chaos-replay-b:9000");
    assert_eq!(a.schedule, b.schedule, "same seed must replay the schedule");
    assert_eq!(a.generated, b.generated);
    assert_eq!(
        a.ids, b.ids,
        "same seed must converge to the same record-id set"
    );
    // and a different seed diverges in schedule
    let other = FaultPlan::generate(seed ^ 1, &FaultPlanConfig::default());
    assert_ne!(a.schedule, other.describe());
}

#[test]
fn tcp_transport_replays_to_the_same_record_ids() {
    // the wire must be invisible to recovery: a chaos run whose frames all
    // cross loopback TCP sockets converges to the same post-recovery
    // record-id set as the in-process run of the same seed
    let seed = 0xFEED_FACE_CAFE_0002;
    let local = soak_once_with(seed, "chaos-wire-a:9000", TransportKind::InProcess);
    let wired = soak_once_with(seed, "chaos-wire-b:9000", TransportKind::Tcp);
    assert_eq!(
        local.schedule, wired.schedule,
        "same seed must replay the schedule regardless of transport"
    );
    assert_eq!(local.generated, wired.generated);
    assert_eq!(
        local.ids, wired.ids,
        "record-id sets must match across transports"
    );
    assert!(wired.hard_recoveries >= 1);
}

// ---------------------------------------------------------------------------
// operator panics: Basic / Spill lose nothing across a runtime-exception
// hard failure (§6.2.3) — zombie frames are parked and re-adopted
// ---------------------------------------------------------------------------

struct PanicOutcome {
    generated: u64,
    ids: BTreeSet<String>,
    hard_recoveries: u64,
    zombies_adopted: u64,
    spilled: u64,
}

/// Run a congested single-panic chaos round under `policy`. The store is
/// slowed with an insert spin so the flow controller has deferred work in
/// flight when the panic fires; the panic is scheduled late in the 4500
/// record budget because the trigger counts *collect-side* emissions, which
/// run far ahead of the congested store stage.
fn panic_run(policy: &str, addr: &str) -> PanicOutcome {
    let clock = SimClock::with_scale(10.0);
    let cluster = Cluster::start(
        2,
        clock.clone(),
        ClusterConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            failure_threshold: SimDuration::from_secs(1_000_000),
        },
    );
    let plan = Arc::new(FaultPlan::from_events(
        0xBAD_0B5,
        vec![FaultEvent {
            at_record: 4_000,
            kind: FaultKind::OperatorPanic,
        }],
    ));
    let catalog = FeedCatalog::new(paper_registry());
    catalog
        .adaptors()
        .register(Arc::new(ChaosAdaptorFactory::new(
            Arc::new(TweetGenAdaptorFactory),
            Arc::clone(&plan),
        )));
    let controller = FeedController::start(
        cluster.clone(),
        Arc::clone(&catalog),
        ControllerConfig {
            flow_capacity: 2,
            fault_plan: Some(Arc::clone(&plan)),
            ..ControllerConfig::default()
        },
    );
    let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create_with(
            DatasetConfig {
                name: "Tweets".into(),
                datatype: "Tweet".into(),
                primary_key: "id".into(),
                nodegroup,
            },
            60_000, // slow store: keep the flow controller congested
        )
        .unwrap(),
    );
    catalog.register_dataset(Arc::clone(&dataset));
    let gen = TweetGen::bind(
        TweetGenConfig::new(addr, 0, PatternDescriptor::constant(1500, 3)),
        clock.clone(),
    )
    .unwrap();
    FeedBuilder::new("TwitterFeed")
        .adaptor("chaos:TweetGenAdaptor")
        .param("datasource", addr)
        .register(&catalog)
        .unwrap();
    let conn = controller
        .connect_feed("TwitterFeed", "Tweets", policy)
        .unwrap();
    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(90), || dataset.len() as u64
            >= generated),
        "{policy}: drained to {} of {generated}",
        dataset.len()
    );
    assert_eq!(
        controller.connection_state(conn),
        ConnectionState::Active,
        "{policy}: connection should survive the respawn"
    );
    let m = controller.connection_metrics(conn).unwrap();
    let out = PanicOutcome {
        generated,
        ids: dataset_ids(&dataset),
        hard_recoveries: m.hard_failures_recovered.get(),
        zombies_adopted: m.zombie_frames_adopted.get(),
        spilled: m.records_spilled.get(),
    };
    gen.stop();
    controller.shutdown();
    cluster.shutdown();
    out
}

#[test]
fn basic_policy_loses_nothing_across_operator_panic() {
    let out = panic_run("Basic", "chaos-panic-basic:9000");
    assert_eq!(
        out.ids,
        expected_ids(0, out.generated),
        "Basic lost records"
    );
    assert!(out.hard_recoveries >= 1, "store job was never respawned");
}

#[test]
fn spill_policy_loses_nothing_across_operator_panic_and_adopts_zombies() {
    let out = panic_run("Spill", "chaos-panic-spill:9000");
    assert_eq!(
        out.ids,
        expected_ids(0, out.generated),
        "Spill lost records"
    );
    assert!(out.hard_recoveries >= 1, "store job was never respawned");
    assert!(out.spilled > 0, "congestion never reached the spill path");
    assert!(
        out.zombies_adopted >= 1,
        "deferred work was not re-adopted after the panic"
    );
}

// ---------------------------------------------------------------------------
// adaptor disconnect: deterministic, graceful, lands at the exact record
// ---------------------------------------------------------------------------

#[test]
fn adaptor_disconnect_is_graceful_and_lands_at_exact_record() {
    let clock = SimClock::with_scale(10.0);
    let cluster = Cluster::start(
        3,
        clock.clone(),
        ClusterConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            failure_threshold: SimDuration::from_secs(1_000_000),
        },
    );
    let plan = Arc::new(FaultPlan::from_events(
        7,
        vec![FaultEvent {
            at_record: 120,
            kind: FaultKind::AdaptorDisconnect,
        }],
    ));
    let catalog = FeedCatalog::new(paper_registry());
    catalog
        .adaptors()
        .register(Arc::new(ChaosAdaptorFactory::new(
            Arc::new(TweetGenAdaptorFactory),
            Arc::clone(&plan),
        )));
    let controller = FeedController::start(
        cluster.clone(),
        Arc::clone(&catalog),
        ControllerConfig::default(),
    );
    let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create(DatasetConfig {
            name: "Tweets".into(),
            datatype: "Tweet".into(),
            primary_key: "id".into(),
            nodegroup,
        })
        .unwrap(),
    );
    catalog.register_dataset(Arc::clone(&dataset));
    let gen = TweetGen::bind(
        TweetGenConfig::new("chaos-disc:9000", 0, PatternDescriptor::constant(300, 4)),
        clock.clone(),
    )
    .unwrap();
    FeedBuilder::new("TwitterFeed")
        .adaptor("chaos:TweetGenAdaptor")
        .param("datasource", "chaos-disc:9000")
        .register(&catalog)
        .unwrap();
    let conn = controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    wait_pattern_done(&gen);
    let drained = wait_drained(&dataset);
    // the source was severed after exactly 120 emitted records, and the
    // hang-up is graceful: everything emitted persists, nothing more
    assert_eq!(drained, 120, "disconnect did not land at the exact record");
    assert_eq!(plan.records_seen(), 120);
    assert_eq!(dataset_ids(&dataset), expected_ids(0, 120));
    assert_eq!(
        controller.connection_state(conn),
        ConnectionState::Active,
        "a dry source is not a failure (feeds are conceptually unbounded)"
    );
    gen.stop();
    controller.shutdown();
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// Discard vs Throttle drop patterns under identical chaos (Figs 7.9/7.10)
// ---------------------------------------------------------------------------

#[test]
fn discard_gaps_contiguous_vs_throttle_under_identical_chaos() {
    // run the same overload + scheduled source hang-up through Discard and
    // Throttle; both see exactly the same 3000 records, so the persisted-id
    // patterns are directly comparable
    fn run(policy: &str, addr: &str) -> Vec<bool> {
        const CUTOFF: u64 = 3_000;
        let clock = SimClock::with_scale(10.0);
        let cluster = Cluster::start(
            1,
            clock.clone(),
            ClusterConfig {
                heartbeat_interval: SimDuration::from_secs(5),
                failure_threshold: SimDuration::from_secs(1_000_000),
            },
        );
        let plan = Arc::new(FaultPlan::from_events(
            9,
            vec![FaultEvent {
                at_record: CUTOFF,
                kind: FaultKind::AdaptorDisconnect,
            }],
        ));
        let catalog = FeedCatalog::new(paper_registry());
        catalog
            .adaptors()
            .register(Arc::new(ChaosAdaptorFactory::new(
                Arc::new(TweetGenAdaptorFactory),
                Arc::clone(&plan),
            )));
        let controller = FeedController::start(
            cluster.clone(),
            Arc::clone(&catalog),
            ControllerConfig {
                flow_capacity: 1,
                compute_parallelism: Some(1),
                compute_extra_spin: 60_000,
                ..ControllerConfig::default()
            },
        );
        let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
        let dataset = Arc::new(
            Dataset::create(DatasetConfig {
                name: "Tweets".into(),
                datatype: "Tweet".into(),
                primary_key: "id".into(),
                nodegroup,
            })
            .unwrap(),
        );
        catalog.register_dataset(Arc::clone(&dataset));
        catalog.create_function(Udf::add_hash_tags()).unwrap();
        let gen = TweetGen::bind(
            TweetGenConfig::new(addr, 0, PatternDescriptor::constant(1500, 5)),
            clock.clone(),
        )
        .unwrap();
        FeedBuilder::new("TwitterFeed")
            .adaptor("chaos:TweetGenAdaptor")
            .param("datasource", addr)
            .register(&catalog)
            .unwrap();
        FeedBuilder::new("P")
            .parent("TwitterFeed")
            .udf("addHashTags")
            .register(&catalog)
            .unwrap();
        controller.connect_feed("P", "Tweets", policy).unwrap();
        wait_pattern_done(&gen);
        wait_drained(&dataset);
        let mut present = vec![false; CUTOFF as usize];
        for id in dataset_ids(&dataset) {
            if let Some(seq) = id.strip_prefix("0-").and_then(|s| s.parse::<usize>().ok()) {
                if seq < present.len() {
                    present[seq] = true;
                }
            }
        }
        gen.stop();
        controller.shutdown();
        cluster.shutdown();
        present
    }

    fn longest_gap(present: &[bool]) -> usize {
        let mut longest = 0;
        let mut current = 0;
        for &p in present {
            if p {
                longest = longest.max(current);
                current = 0;
            } else {
                current += 1;
            }
        }
        longest.max(current)
    }

    let discard = run("Discard", "chaos-discard:9000");
    let throttle = run("Throttle", "chaos-throttle:9000");
    let d_kept = discard.iter().filter(|&&b| b).count();
    let t_kept = throttle.iter().filter(|&&b| b).count();
    assert!(d_kept > 0 && d_kept < discard.len(), "discard shed load");
    assert!(t_kept > 0 && t_kept < throttle.len(), "throttle shed load");
    let d_gap = longest_gap(&discard);
    let t_gap = longest_gap(&throttle);
    assert!(
        d_gap > t_gap,
        "discard gap {d_gap} should exceed throttle gap {t_gap}"
    );
}

// ---------------------------------------------------------------------------
// elastic scale-in under chaos: a node dies mid-repartition and the
// settle-and-migrate protocol plus at-least-once replay still converge to
// the exact generated record-id set
// ---------------------------------------------------------------------------

/// One scale-in chaos round: a 4-node FaultTolerant connection with a
/// compute stage scales out to three partitions under flow, then scales
/// back in right before a scheduled kill of an unprotected node, so the
/// kill lands while the removed partitions' state is being settled and
/// migrated. The revived node rejoins before the pattern ends. Whatever
/// interleaving the seed produces, the dataset must converge to every
/// generated id (at-least-once, no gaps).
fn scale_in_soak_once(seed: u64, addr: &str, kill_at: u64) -> SoakOutcome {
    let clock = SimClock::with_scale(100.0); // 100 real ms per sim-second
    let cluster = Cluster::start(
        4,
        clock.clone(),
        ClusterConfig {
            heartbeat_interval: SimDuration::from_millis(250),
            failure_threshold: SimDuration::from_millis(1500),
        },
    );
    // node 0 is protected (it hosts the collect job); the victim is the
    // last node, which carries compute/store partitions after scale-out
    let victim = NodeId(3);
    let plan = Arc::new(FaultPlan::from_events(
        seed,
        vec![
            FaultEvent {
                at_record: kill_at,
                kind: FaultKind::KillNode(victim),
            },
            FaultEvent {
                at_record: kill_at + 600,
                kind: FaultKind::ReviveNode(victim),
            },
        ],
    ));
    let schedule = plan.describe();
    cluster.arm_fault_plan(Arc::clone(&plan));

    let catalog = FeedCatalog::new(paper_registry());
    catalog
        .adaptors()
        .register(Arc::new(ChaosAdaptorFactory::new(
            Arc::new(TweetGenAdaptorFactory),
            Arc::clone(&plan),
        )));
    let controller = FeedController::start(
        cluster.clone(),
        Arc::clone(&catalog),
        ControllerConfig {
            compute_parallelism: Some(1),
            fault_plan: Some(Arc::clone(&plan)),
            ..ControllerConfig::default()
        },
    );
    let nodegroup: Vec<NodeId> = cluster.alive_nodes().iter().map(|n| n.id()).collect();
    let dataset = Arc::new(
        Dataset::create(DatasetConfig {
            name: "Tweets".into(),
            datatype: "Tweet".into(),
            primary_key: "id".into(),
            nodegroup,
        })
        .unwrap(),
    );
    catalog.register_dataset(Arc::clone(&dataset));
    catalog.create_function(Udf::add_hash_tags()).unwrap();
    let gen = TweetGen::bind(
        TweetGenConfig::new(addr, 0, PatternDescriptor::constant(200, 10)),
        clock.clone(),
    )
    .unwrap();
    FeedBuilder::new("TwitterFeed")
        .adaptor("chaos:TweetGenAdaptor")
        .param("datasource", addr)
        .register(&catalog)
        .unwrap();
    FeedBuilder::new("ProcessedTwitterFeed")
        .parent("TwitterFeed")
        .udf("addHashTags")
        .register(&catalog)
        .unwrap();
    let conn = controller
        .connect_feed("ProcessedTwitterFeed", "Tweets", "FaultTolerant")
        .unwrap();
    let joint = "TwitterFeed:addHashTags";

    // scale out early, while the stream is flowing
    assert!(
        wait_until(Duration::from_secs(30), || dataset.len() > 50),
        "seed {seed:#x}: pipeline never started flowing"
    );
    assert_eq!(controller.scale_compute(joint, 2).unwrap(), 3);
    // hold the scale-in until just before the kill becomes due, so the
    // repartitioning and the node death overlap
    assert!(
        wait_until(Duration::from_secs(30), || {
            plan.records_seen() + 150 >= kill_at
        }),
        "seed {seed:#x}: stream stalled before the kill point"
    );
    assert_eq!(controller.scale_compute(joint, -2).unwrap(), 1);

    let generated = wait_pattern_done(&gen);
    assert!(
        wait_until(Duration::from_secs(60), || dataset.len() as u64
            >= generated),
        "seed {seed:#x}: recovered to {} of {generated} records; schedule:\n{schedule}",
        dataset.len()
    );
    assert_eq!(
        plan.unfired_count(),
        0,
        "seed {seed:#x}: schedule did not fully fire:\n{schedule}"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            controller.connection_state(conn) == ConnectionState::Active
        }),
        "seed {seed:#x}: connection never returned to Active"
    );
    assert_eq!(
        controller.compute_parallelism_of(joint),
        Some(1),
        "seed {seed:#x}: scale-in did not stick across the kill"
    );
    let m = controller.connection_metrics(conn).unwrap();
    let out = SoakOutcome {
        schedule,
        generated,
        ids: dataset_ids(&dataset),
        hard_recoveries: m.hard_failures_recovered.get(),
        last_recovery_millis: m.last_recovery_millis.get(),
    };
    gen.stop();
    controller.shutdown();
    cluster.shutdown();
    out
}

#[test]
fn scale_in_soak_survives_node_kill_mid_repartition() {
    for i in 0..soak_iters() {
        let seed = 0x5CA1_E000_0000_0000 | i;
        // slide the kill across the scale-in window so successive
        // iterations exercise different interleavings of the settle-and-
        // migrate protocol and the node death
        let kill_at = 1_000 + i * 150;
        let out = scale_in_soak_once(seed, &format!("chaos-scalein-{i}:9000"), kill_at);
        assert_eq!(
            out.ids,
            expected_ids(0, out.generated),
            "seed {seed:#x}: record-id set diverged; schedule:\n{}",
            out.schedule
        );
        assert!(
            out.hard_recoveries >= 1,
            "seed {seed:#x}: no hard failure was recorded as recovered"
        );
        assert!(out.last_recovery_millis > 0);
    }
}

// ---------------------------------------------------------------------------
// torn WAL tail: recovery is all-or-nothing
// ---------------------------------------------------------------------------

#[test]
fn torn_wal_tail_recovers_all_or_nothing() {
    let part = DatasetPartition::new(PartitionConfig::keyed_on("id"));
    for i in 0..40 {
        part.insert(&AdmValue::record(vec![
            ("id", format!("r{i:02}").as_str().into()),
            ("message_text", "payload".into()),
        ]))
        .unwrap();
    }
    // the tear becomes due at record 10 of a notional stream; before the
    // counter reaches it, applying the plan is a no-op
    let plan = FaultPlan::from_events(
        11,
        vec![FaultEvent {
            at_record: 10,
            kind: FaultKind::TearWalTail { bytes: 8 },
        }],
    );
    assert_eq!(part.apply_fault_plan(&plan), 0, "not due yet");
    plan.tick_records(10);
    assert_eq!(part.apply_fault_plan(&plan), 1, "tear applies once");
    assert_eq!(part.apply_fault_plan(&plan), 0, "and only once");
    part.recover().unwrap();
    // the torn trailing block is dropped whole; every survivor is intact
    assert_eq!(part.len(), 39, "exactly the torn record is gone");
    for i in 0..39 {
        let got = part.get(&format!("r{i:02}").as_str().into()).unwrap();
        assert_eq!(
            got.field("message_text").unwrap(),
            &AdmValue::string("payload"),
            "record r{i:02} survived corrupted"
        );
    }
}

/// After a crash (torn WAL tail) and log-based recovery, sealing the
/// recovered memtable must still produce a valid schema-inferred compacted
/// component: the record-id set scanned out of the sealed image matches the
/// recovered survivors exactly, and the vectorized field-scan path over the
/// compacted columns agrees with full-record reads.
#[test]
fn recovery_after_torn_tail_seals_into_valid_compacted_component() {
    let part = DatasetPartition::new(PartitionConfig::keyed_on("id"));
    for i in 0..60 {
        part.insert(&AdmValue::record(vec![
            ("id", format!("r{i:02}").as_str().into()),
            ("message_text", format!("payload {i}").as_str().into()),
            ("score", AdmValue::Int(i)),
        ]))
        .unwrap();
    }
    // crash mid-append, then restart recovery from the log
    part.corrupt_wal_tail(5);
    part.recover().unwrap();
    let survivors: std::collections::BTreeSet<String> = part
        .scan_all()
        .into_iter()
        .map(|(k, _)| k.as_str().unwrap().to_string())
        .collect();
    assert!(
        !survivors.is_empty() && survivors.len() < 60,
        "the tear must drop some tail but not everything"
    );
    // seal + merge the recovered memtable into one component
    part.force_merge();
    assert_eq!(part.component_count(), 1);
    assert!(
        part.schema_inferred_components() >= 1,
        "the uniform recovered records must compact, not fall back"
    );
    assert!(part.storage_bytes() > 0);
    let sealed: std::collections::BTreeSet<String> = part
        .scan_all()
        .into_iter()
        .map(|(k, _)| k.as_str().unwrap().to_string())
        .collect();
    assert_eq!(sealed, survivors, "sealing changed the record-id set");
    // the compacted columns answer field scans identically to full reads
    for (key, field_val) in part.scan_field("message_text") {
        let full = part.get(&key).unwrap();
        assert_eq!(full.field("message_text"), field_val.as_ref());
        assert_eq!(part.get_field(&key, "score"), full.field("score").cloned());
    }
}
