//! Controller teardown must be deterministic: `FeedController::shutdown`
//! closes the elastic channel and joins both `cfm-*` monitor threads, so no
//! named controller thread survives the call. Kept in its own test binary —
//! the assertion scans the whole process's thread list, which would race
//! against sibling tests spinning up their own controllers.

use asterix_adm::types::paper_registry;
use asterix_common::{SimClock, SimDuration};
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ControllerConfig, FeedController};
use asterix_feeds::governor::GovernorConfig;
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use std::time::{Duration, Instant};

/// Names of this process's live threads starting with `cfm-` (Linux comm
/// names are truncated to 15 bytes, so match on the prefix only).
fn cfm_threads() -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(dir) = std::fs::read_dir("/proc/self/task") {
        for task in dir.flatten() {
            if let Ok(name) = std::fs::read_to_string(task.path().join("comm")) {
                let name = name.trim().to_string();
                if name.starts_with("cfm-") {
                    out.push(name);
                }
            }
        }
    }
    out
}

#[test]
#[cfg(target_os = "linux")]
fn shutdown_leaves_no_cfm_thread_behind() {
    let clock = SimClock::with_scale(10.0);
    let cluster = Cluster::start(
        2,
        clock,
        ClusterConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            failure_threshold: SimDuration::from_secs(1_000_000),
        },
    );
    let catalog = FeedCatalog::new(paper_registry());
    let controller = FeedController::start(
        cluster.clone(),
        catalog,
        ControllerConfig {
            governor: GovernorConfig {
                enabled: true,
                ..GovernorConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    // both monitors are up before shutdown
    let deadline = Instant::now() + Duration::from_secs(5);
    while cfm_threads().len() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(cfm_threads().len(), 2, "monitors did not start");
    controller.shutdown();
    // shutdown joins: the threads are gone the moment it returns
    assert!(
        cfm_threads().is_empty(),
        "leaked controller threads: {:?}",
        cfm_threads()
    );
    cluster.shutdown();
}
