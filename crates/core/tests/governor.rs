//! Closed-loop scaling governor tests: scale-out under load, scale-in when
//! calm, dropped-request accounting, and live intake re-width with the
//! settle-and-migrate protocol.

use asterix_adm::types::paper_registry;
use asterix_common::{NodeId, SimClock, SimDuration};
use asterix_feeds::builder::FeedBuilder;
use asterix_feeds::catalog::FeedCatalog;
use asterix_feeds::controller::{ControllerConfig, FeedController};
use asterix_feeds::governor::GovernorConfig;
use asterix_feeds::udf::Udf;
use asterix_hyracks::cluster::{Cluster, ClusterConfig};
use asterix_storage::{Dataset, DatasetConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tweetgen::{PatternDescriptor, TweetGen, TweetGenConfig};

struct TestRig {
    cluster: Cluster,
    catalog: Arc<FeedCatalog>,
    controller: Arc<FeedController>,
    clock: SimClock,
}

impl TestRig {
    fn start_with(nodes: usize, cfg: ControllerConfig) -> TestRig {
        let clock = SimClock::with_scale(10.0); // 10 real ms per sim-second
        let cluster = Cluster::start(
            nodes,
            clock.clone(),
            ClusterConfig {
                heartbeat_interval: SimDuration::from_secs(5),
                // enormous: only explicit kill_node flips nodes in these tests
                failure_threshold: SimDuration::from_secs(1_000_000),
            },
        );
        let catalog = FeedCatalog::new(paper_registry());
        let controller = FeedController::start(cluster.clone(), Arc::clone(&catalog), cfg);
        TestRig {
            cluster,
            catalog,
            controller,
            clock,
        }
    }

    fn dataset(&self, name: &str) -> Arc<Dataset> {
        let nodegroup: Vec<NodeId> = self.cluster.alive_nodes().iter().map(|n| n.id()).collect();
        let d = Arc::new(
            Dataset::create(DatasetConfig {
                name: name.into(),
                datatype: "Tweet".into(),
                primary_key: "id".into(),
                nodegroup,
            })
            .unwrap(),
        );
        self.catalog.register_dataset(Arc::clone(&d));
        d
    }

    fn tweetgen(&self, addr: &str, instance: u32, rate: u32, secs: u64) -> TweetGen {
        TweetGen::bind(
            TweetGenConfig::new(addr, instance, PatternDescriptor::constant(rate, secs)),
            self.clock.clone(),
        )
        .unwrap()
    }

    fn stop(self) {
        self.controller.shutdown();
        self.cluster.shutdown();
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn governor_scales_out_under_load_and_back_in_when_calm() {
    let rig = TestRig::start_with(
        4,
        ControllerConfig {
            flow_capacity: 2,
            compute_parallelism: Some(1),
            compute_extra_spin: 100_000,
            governor: GovernorConfig {
                enabled: true,
                interval: SimDuration::from_millis(500),
                cooldown: SimDuration::from_secs(2),
                max_compute: 3,
                ..GovernorConfig::default()
            },
            ..ControllerConfig::default()
        },
    );
    // a finite burst: hot while the pattern runs, calm once it drains
    let gen = rig.tweetgen("gov-ramp:9000", 0, 1500, 6);
    let dataset = rig.dataset("Tweets");
    rig.catalog.create_function(Udf::add_hash_tags()).unwrap();
    FeedBuilder::new("TwitterFeed")
        .adaptor("TweetGenAdaptor")
        .param("datasource", "gov-ramp:9000")
        .register(&rig.catalog)
        .unwrap();
    FeedBuilder::new("ProcessedTwitterFeed")
        .parent("TwitterFeed")
        .udf("addHashTags")
        .register(&rig.catalog)
        .unwrap();
    rig.controller
        .connect_feed("ProcessedTwitterFeed", "Tweets", "Elastic")
        .unwrap();
    let joint = "TwitterFeed:addHashTags";
    assert_eq!(rig.controller.compute_parallelism_of(joint), Some(1));

    // phase 1: load drives the governor to add compute partitions
    assert!(
        wait_until(Duration::from_secs(25 * 3), || {
            rig.controller
                .compute_parallelism_of(joint)
                .map(|n| n > 1)
                .unwrap_or(false)
        }),
        "governor never scaled the compute stage out"
    );
    let peak = rig.controller.compute_parallelism_of(joint).unwrap();
    assert!(peak > 1);

    // phase 2: the pattern ends, the backlog drains, and the governor
    // sheds the extra partitions again
    assert!(
        wait_until(Duration::from_secs(60 * 3), || {
            rig.controller.compute_parallelism_of(joint) == Some(1)
        }),
        "governor never scaled back in (still at {:?})",
        rig.controller.compute_parallelism_of(joint)
    );
    // the pipeline still flows after the scale-in repartitioning
    let before = dataset.len();
    let _ = wait_until(Duration::from_secs(10 * 3), || dataset.len() > before);

    // decisions are visible as elastic.* metrics in every exporter
    let snap = rig.controller.registry().snapshot();
    let key = "ProcessedTwitterFeed->Tweets";
    assert!(
        snap.counter_for("elastic.scale_out_total", key) >= 1,
        "scale-out not counted"
    );
    assert!(
        snap.counter_for("elastic.scale_in_total", key) >= 1,
        "scale-in not counted"
    );
    assert!(snap.counter_for("elastic.governor_ticks", key) >= 5);
    let prom = snap.to_prometheus();
    assert!(
        prom.contains("asterix_elastic_compute_partitions"),
        "prometheus export misses governor gauges"
    );
    let json = snap.to_json();
    assert!(
        json.contains("elastic.governor_ticks"),
        "json export misses governor counters"
    );
    gen.stop();
    rig.stop();
}

#[test]
fn unknown_elastic_request_is_counted_and_logged() {
    let rig = TestRig::start_with(2, ControllerConfig::default());
    assert!(rig.controller.request_elastic("nope->Nowhere"));
    assert!(rig.controller.request_elastic("compute:NoSuchJoint"));
    assert!(
        wait_until(Duration::from_secs(5), || {
            let snap = rig.controller.registry().snapshot();
            snap.counter_for("elastic.requests_dropped", "nope->Nowhere") == 1
                && snap.counter_for("elastic.requests_dropped", "compute:NoSuchJoint") == 1
        }),
        "dropped elastic requests were not counted"
    );
    let log = rig.controller.error_log();
    let entries = log.lock().clone();
    assert!(
        entries
            .iter()
            .any(|e| e.operator == "cfm-elastic-monitor" && e.message.contains("nope->Nowhere")),
        "dropped request not in the soft-failure log: {entries:?}"
    );
    rig.stop();
}

#[test]
fn scale_intake_changes_width_and_keeps_flow() {
    let rig = TestRig::start_with(
        3,
        ControllerConfig {
            compute_parallelism: Some(1),
            ..ControllerConfig::default()
        },
    );
    // two datasources ⇒ two collect instances, initially on two nodes
    let gen_a = rig.tweetgen("gov-w-a:9000", 0, 150, 10_000);
    let gen_b = rig.tweetgen("gov-w-b:9000", 1, 150, 10_000);
    let dataset = rig.dataset("Tweets");
    FeedBuilder::new("TwitterFeed")
        .adaptor("TweetGenAdaptor")
        .param("datasource", "gov-w-a:9000, gov-w-b:9000")
        .register(&rig.catalog)
        .unwrap();
    rig.controller
        .connect_feed("TwitterFeed", "Tweets", "Basic")
        .unwrap();
    assert_eq!(rig.controller.intake_width_of("TwitterFeed"), Some(2));
    assert!(wait_until(Duration::from_secs(10 * 3), || dataset.len() > 50));

    // scale the intake in: both instances land on one node, no data lost
    // in the live repartitioning
    assert_eq!(rig.controller.scale_intake("TwitterFeed", -1).unwrap(), 1);
    assert_eq!(rig.controller.intake_width_of("TwitterFeed"), Some(1));
    assert_eq!(rig.controller.joint_locations("TwitterFeed").len(), 2);
    let before = dataset.len();
    assert!(
        wait_until(Duration::from_secs(10 * 3), || dataset.len() > before + 100),
        "flow stalled after intake scale-in"
    );

    // and back out to two nodes
    assert_eq!(rig.controller.scale_intake("TwitterFeed", 1).unwrap(), 2);
    assert_eq!(rig.controller.intake_width_of("TwitterFeed"), Some(2));
    let before = dataset.len();
    assert!(
        wait_until(Duration::from_secs(10 * 3), || dataset.len() > before + 100),
        "flow stalled after intake scale-out"
    );
    // width is capped by the instance count
    assert_eq!(rig.controller.scale_intake("TwitterFeed", 5).unwrap(), 2);
    gen_a.stop();
    gen_b.stop();
    rig.stop();
}
