#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Umbrella crate: re-exports every crate of the AsterixDB data-feed reproduction.
//!
//! See DESIGN.md for the system inventory and EXPERIMENTS.md for the
//! paper-vs-measured record.

pub use asterix_adm as adm;
pub use asterix_aql as aql;
pub use asterix_common as common;
pub use asterix_feeds as feeds;
pub use asterix_hyracks as hyracks;
pub use asterix_storage as storage;
pub use stormsim;
pub use tweetgen;
